"""Quickstart: does cleaning missing values change fairness on adult?

Runs the paper's Fig-3 evaluation process for a single dataset and
error type, then prints the impact of each imputation technique on
accuracy, predictive parity and equal opportunity.

Usage::

    python examples/quickstart.py
"""

from repro import ExperimentRunner, ImpactAnalysis, StudyConfig
from repro.benchmark import ResultStore
from repro.reporting import render_impact_matrix


def main() -> None:
    # a small but statistically meaningful configuration: 10 train/test
    # splits of 2,500 sampled records each, logistic regression only
    config = StudyConfig(
        n_sample=2_500, test_fraction=0.4, n_repetitions=10, models=("log_reg",)
    )
    store = ResultStore()
    runner = ExperimentRunner(config, store)

    print("running the adult / missing-values configurations ...")
    added = runner.run_dataset_error("adult", "missing_values")
    print(f"trained and evaluated {2 * added} models ({added} run records)\n")

    analysis = ImpactAnalysis(store)
    for metric in ("PP", "EO"):
        matrix = analysis.matrix("missing_values", metric, intersectional=False)
        print(
            render_impact_matrix(
                matrix,
                f"Impact of cleaning missing values on adult "
                f"(single-attribute groups, {metric})",
            )
        )
        print()

    # per-configuration detail: which technique helps, which hurts?
    print("per-technique detail (predictive parity, sex):")
    for impact in analysis.configuration_impacts(
        "missing_values", "PP", intersectional=False
    ):
        if impact.group_key != "sex":
            continue
        print(
            f"  {impact.repair:<22} fairness={impact.fairness_impact.value:<14}"
            f" accuracy={impact.accuracy_impact.value:<14}"
            f" |PP| {impact.mean_dirty_fairness:.3f} -> "
            f"{impact.mean_clean_fairness:.3f}"
        )


if __name__ == "__main__":
    main()
