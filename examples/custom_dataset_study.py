"""Bring your own dataset: declarative definitions + fairness-aware selection.

Shows the two extension points a downstream user needs:

1. Register a *custom* dataset with a declarative
   :class:`DatasetDefinition` (the paper's Listing 1) — here a small
   synthetic hiring dataset read from CSV — and run the full
   evaluation process on it.
2. Use the :class:`FairnessAwareSelector` (the paper's §VII vision)
   to pick, per fairness metric, a cleaning technique that does not
   worsen fairness.

Usage::

    python examples/custom_dataset_study.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ExperimentRunner, FairnessAwareSelector, ImpactAnalysis, StudyConfig
from repro.benchmark import ResultStore
from repro.datasets import DatasetDefinition
from repro.datasets import synthetic as syn
from repro.fairness.groups import Comparison, GroupPredicate
from repro.tabular import Table, read_csv, write_csv


def make_hiring_table(n_rows: int, seed: int) -> Table:
    """A small hiring dataset with organically missing references."""
    rng = np.random.default_rng(seed)
    sex = syn.categorical(rng, n_rows, ["male", "female"], [0.55, 0.45])
    is_male = np.array([value == "male" for value in sex])
    experience = np.clip(rng.gamma(2.0, 4.0, size=n_rows), 0, 40).round()
    education = syn.categorical(
        rng, n_rows, ["hs", "bachelor", "master"], [0.3, 0.5, 0.2]
    )
    edu_score = np.array(
        [{"hs": 0.0, "bachelor": 1.0, "master": 2.0}[value] for value in education]
    )
    interview_score = syn.clipped_normal(rng, n_rows, 6.0, 2.0, 0, 10)
    latent = (
        -6.0 + 0.25 * experience + 1.2 * edu_score + 0.45 * interview_score
    )
    hired = (rng.random(n_rows) < syn.sigmoid(latent)).astype(np.float64)
    # reference checks go missing more often for female applicants
    reference_score = syn.clipped_normal(rng, n_rows, 7.0, 1.5, 0, 10)
    missing_probability = syn.group_dependent_probability(0.05, 3.0, ~is_male)
    reference_score = syn.inject_missing_numeric(
        rng, reference_score, missing_probability
    )
    return Table.from_columns(
        {
            "experience_years": experience,
            "education": education,
            "interview_score": interview_score,
            "reference_score": reference_score,
            "sex": sex,
            "hired": hired,
        }
    )


def main() -> None:
    # 1. persist the dataset as CSV and define a loader over it — the
    #    usual shape for real-world data
    csv_path = Path(tempfile.mkdtemp()) / "hiring.csv"
    table = make_hiring_table(3_000, seed=0)
    write_csv(table, csv_path)
    print(f"wrote {table.n_rows} applications to {csv_path}")

    def load_from_csv(n_rows: int, seed: int) -> Table:
        loaded = read_csv(csv_path, table.schema)
        rng = np.random.default_rng(seed)
        return loaded.sample_rows(min(n_rows, loaded.n_rows), rng)

    # the declarative definition — this is all the framework needs to
    # compute fairness metrics automatically (paper Listing 1)
    hiring = DatasetDefinition(
        name="hiring",
        source_domain="employment",
        generator=load_from_csv,
        default_n_rows=3_000,
        label="hired",
        error_types=("missing_values",),
        drop_variables=("sex",),
        privileged_groups=(GroupPredicate("sex", Comparison.EQ, "male"),),
    )

    # 2. run the study directly against the custom definition
    table_full = hiring.generate(n_rows=3_000, seed=0)
    print(f"missing reference scores: {table_full.missing_counts()['reference_score']}")

    config = StudyConfig(
        n_sample=1_500,
        n_repetitions=6,
        models=("log_reg",),
        dataset_sizes={"hiring": 3_000},
    )
    store = ResultStore()
    runner = ExperimentRunner(config, store)
    print("running hiring / missing-values configurations ...")
    added = runner.run_definition(hiring, "missing_values")
    print(f"added {added} run records\n")

    # 3. fairness-aware selection: which imputation should we ship?
    analysis = ImpactAnalysis(store)
    impacts = []
    for metric in ("PP", "EO"):
        impacts.extend(
            analysis.configuration_impacts(
                "missing_values", metric, intersectional=False
            )
        )
    selector = FairnessAwareSelector(impacts)
    for metric in ("PP", "EO"):
        recommendation = selector.recommend("hiring", "sex", metric, "missing_values")
        assert recommendation is not None
        print(
            f"recommended imputation for {metric}: {recommendation.repair} "
            f"(fairness {recommendation.fairness_impact.value}, "
            f"accuracy {recommendation.accuracy_impact.value}, "
            f"safe={recommendation.safe})"
        )


if __name__ == "__main__":
    main()
