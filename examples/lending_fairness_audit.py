"""Lending scenario: audit data-quality disparities before cleaning.

A bank's data engineering team is about to deploy automated cleaning
on its loan-application pipeline. Before doing so, they run the
paper's RQ1 analysis on their two financial datasets (credit and
german): do the error detectors flag applicants from privileged and
disadvantaged groups at significantly different rates?

Usage::

    python examples/lending_fairness_audit.py
"""

from repro import DisparityAnalysis, load_dataset
from repro.reporting import render_disparity_figure


def main() -> None:
    analysis = DisparityAnalysis(alpha=0.05, random_state=0)

    for dataset_name, n_rows in (("credit", 8_000), ("german", 1_000)):
        definition, table = load_dataset(dataset_name, n_rows=n_rows, seed=0)
        print(f"=== {dataset_name} ({table.n_rows} applicants) ===\n")

        findings = analysis.single_attribute(definition, table)
        print(
            render_disparity_figure(
                findings,
                f"Fraction of applicants flagged per detector "
                f"(* = significant disparity, G² test at p=.05)",
            )
        )
        print()

        significant = [finding for finding in findings if finding.significant]
        burdening = [
            finding for finding in significant if finding.burdens_disadvantaged
        ]
        print(
            f"  {len(significant)} of {len(findings)} detector/group pairs show a "
            f"significant disparity; {len(burdening)} of those burden the "
            f"disadvantaged group.\n"
        )

    # the german dataset has two sensitive attributes -> inspect the
    # intersectional picture too (young women vs older men)
    definition, table = load_dataset("german", n_rows=1_000, seed=0)
    print(
        render_disparity_figure(
            analysis.intersectional(definition, table),
            "german, intersectional groups (male & over 25 vs female & under 25)",
        )
    )

    # drill into predicted label errors: are false positives (wrongly
    # favourable labels) concentrated in one group?
    breakdown = analysis.label_error_breakdown(
        definition, table, definition.group_specs[1]
    )
    print("\npredicted label-error breakdown on german (by sex):")
    print(
        f"  privileged:    {100 * breakdown['privileged_fp_share']:.1f}% FP / "
        f"{100 * breakdown['privileged_fn_share']:.1f}% FN"
    )
    print(
        f"  disadvantaged: {100 * breakdown['disadvantaged_fp_share']:.1f}% FP / "
        f"{100 * breakdown['disadvantaged_fn_share']:.1f}% FN"
    )


if __name__ == "__main__":
    main()
