"""Fairness-aware cleaning via data valuation (the paper's §VII vision).

The paper closes by proposing that fairness-aware cleaning should
start from "the identification of input tuples with negative impact on
fairness", citing kNN-Shapley data valuation. This example runs that
procedure on the adult dataset:

1. value every training tuple with exact kNN-Shapley under three
   utilities (overall accuracy, privileged-group accuracy,
   disadvantaged-group accuracy),
2. flag the tuples that push the model toward the privileged group,
3. drop them and measure the effect on equal opportunity.

Usage::

    python examples/fairness_shapley_cleaning.py
"""

import numpy as np

from repro import load_dataset
from repro.cleaning import MissingValueRepair
from repro.fairness import group_confusion_matrices
from repro.fairness.metrics import equal_opportunity
from repro.ml import KNearestNeighborsClassifier, TabularFeaturizer
from repro.tabular import train_test_split_table
from repro.valuation import FairnessShapleyValuator


def main() -> None:
    definition, table = load_dataset("adult", n_rows=4_000, seed=0)
    rng = np.random.default_rng(0)
    train, test = train_test_split_table(table, 0.4, rng)

    # impute so the featurizer sees complete rows
    repair = MissingValueRepair().fit(train)
    train = repair.transform(train)
    test = repair.transform(test)

    featurizer = TabularFeaturizer(
        feature_columns=definition.feature_columns(train)
    ).fit(train)
    X_train = featurizer.transform(train)
    X_test = featurizer.transform(test)
    y_train = train.column(definition.label).astype(int)
    y_test = test.column(definition.label).astype(int)

    sex = definition.group_specs[0]
    privileged_test = sex.privileged_mask(test)
    disadvantaged_test = sex.disadvantaged_mask(test)

    def evaluate(X, y, label, announce=True):
        model = KNearestNeighborsClassifier(n_neighbors=5).fit(X, y)
        predictions = model.predict(X_test)
        group = group_confusion_matrices(test, y_test, predictions, sex)
        disparity = group.metric_value(equal_opportunity)
        accuracy = float(np.mean(predictions == y_test))
        if announce:
            print(
                f"  {label:<28} accuracy={accuracy:.3f}  "
                f"EO disparity={disparity:+.3f}"
            )
        return disparity

    current = evaluate(X_train, y_train, "", announce=False)
    print("computing exact kNN-Shapley values for "
          f"{len(y_train)} training tuples ...")
    valuator = FairnessShapleyValuator(k=5, recall_only=True)
    result = valuator.value(
        X_train, y_train, X_test, y_test, privileged_test, disadvantaged_test
    )
    harmful = result.widening_gap(current, quantile=0.95)
    print(f"flagged {harmful.sum()} tuples whose contribution to group "
          "recall most widens the current gap")

    print("\nretraining after dropping the flagged tuples:")
    before = evaluate(X_train, y_train, "all training tuples")
    after = evaluate(
        X_train[~harmful], y_train[~harmful], "fairness-valued cleaning"
    )
    direction = "shrank" if abs(after) < abs(before) else "grew"
    print(f"\n|EO| {direction}: {abs(before):.3f} -> {abs(after):.3f}")


if __name__ == "__main__":
    main()
