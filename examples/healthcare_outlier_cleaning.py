"""Healthcare scenario: should we auto-clean blood-pressure outliers?

The heart dataset is famous for blood-pressure data-entry errors
(values like -120 or 16020). The obvious engineering response is to
auto-repair them — but the paper warns that outlier cleaning is the
intervention most likely to hurt accuracy while quietly shifting
fairness. This example runs the full dirty-vs-repaired comparison for
all three outlier detectors and repairs on heart and reports the
impact per configuration.

Usage::

    python examples/healthcare_outlier_cleaning.py
"""

from repro import ExperimentRunner, ImpactAnalysis, StudyConfig, load_dataset
from repro.benchmark import ResultStore
from repro.cleaning import IqrOutlierDetector, SdOutlierDetector
from repro.reporting import render_impact_matrix


def inspect_detectors() -> None:
    """Show how differently the detectors behave on the raw data."""
    definition, table = load_dataset("heart", n_rows=5_000, seed=0)
    features = table.drop_columns([definition.label])
    print("outliers flagged in 5,000 patient records:")
    for detector in (SdOutlierDetector(), IqrOutlierDetector()):
        result = detector.detect(features)
        print(
            f"  {detector.name:<14} {result.n_flagged:>5} tuples "
            f"({100 * result.flagged_fraction():.1f}%)"
        )
    ap_hi = table.column("ap_hi")
    print(
        f"  (systolic pressure ranges from {ap_hi.min():.0f} to "
        f"{ap_hi.max():.0f} — clear entry errors)\n"
    )


def main() -> None:
    inspect_detectors()

    config = StudyConfig(n_sample=800, n_repetitions=6, models=("log_reg",))
    store = ResultStore()
    runner = ExperimentRunner(config, store)
    print("running the heart / outliers configurations ...")
    added = runner.run_dataset_error("heart", "outliers")
    print(f"evaluated {added} cleaning configurations x 6 splits\n")

    analysis = ImpactAnalysis(store)
    matrix = analysis.matrix("outliers", "EO", intersectional=False)
    print(
        render_impact_matrix(
            matrix,
            "Impact of auto-cleaning outliers on heart "
            "(single-attribute groups, equal opportunity)",
        )
    )

    print("\nper-configuration detail (equal opportunity, sex):")
    for impact in analysis.configuration_impacts(
        "outliers", "EO", intersectional=False
    ):
        if impact.group_key != "sex":
            continue
        print(
            f"  {impact.detection:<13} + {impact.repair:<21} "
            f"fairness={impact.fairness_impact.value:<14}"
            f" accuracy={impact.accuracy_impact.value:<14}"
            f" acc {impact.mean_dirty_accuracy:.3f} -> "
            f"{impact.mean_clean_accuracy:.3f}"
        )


if __name__ == "__main__":
    main()
