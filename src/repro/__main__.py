"""Command-line interface for the reproduction study.

Subcommands::

    python -m repro datasets                      # Table I
    python -m repro rq1 [--dataset NAME] [--intersectional]
    python -m repro study --error-type TYPE --store PATH [options]
    python -m repro tables --store PATH           # Tables II-XIII + XIV
    python -m repro store-migrate STORE           # legacy -> sharded layout
    python -m repro obs-report STORE [--json]     # run-health summary
    python -m repro monitor STORE                 # tail an in-flight run
    python -m repro obs-export STORE              # Perfetto-viewable trace
    python -m repro obs-diff STORE_A STORE_B      # cross-run regression diff
    python -m repro obs-audit STORE [--baseline REF]   # fairness audit/gate
    python -m repro obs-baseline {record,pin,list,export} STORE  # run ledger
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    DATASET_NAMES,
    DeepDive,
    DisparityAnalysis,
    ExperimentRunner,
    ImpactAnalysis,
    StudyConfig,
    dataset_definition,
    load_dataset,
)
from repro.benchmark import ResultStore
from repro.reporting import (
    render_case_counts,
    render_dataset_table,
    render_disparity_figure,
    render_impact_matrix,
    render_model_table,
)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return number


def _non_negative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return number


def _positive_float(value: str) -> float:
    number = float(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return number


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        definition = dataset_definition(name)
        rows.append(
            {
                "name": definition.name,
                "source": definition.source_domain,
                "n_tuples": definition.default_n_rows,
                "sensitive_attributes": definition.sensitive_attributes,
            }
        )
    print(render_dataset_table(rows, "TABLE I: DATASETS"))
    return 0


def _cmd_rq1(args: argparse.Namespace) -> int:
    names = [args.dataset] if args.dataset else list(DATASET_NAMES)
    analysis = DisparityAnalysis(random_state=args.seed)
    findings = []
    for name in names:
        definition, table = load_dataset(name, n_rows=args.n_rows, seed=args.seed)
        if args.intersectional:
            findings.extend(analysis.intersectional(definition, table))
        else:
            findings.extend(analysis.single_attribute(definition, table))
    kind = "INTERSECTIONAL" if args.intersectional else "SINGLE-ATTRIBUTE"
    print(
        render_disparity_figure(
            findings, f"RQ1 {kind} DISPARITY ANALYSIS (* = significant, G² p=.05)"
        )
    )
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    config_kwargs = dict(
        n_sample=args.n_sample,
        test_fraction=args.test_fraction,
        n_repetitions=args.repetitions,
        n_tuning_seeds=args.tuning_seeds,
        workers=args.workers,
        incremental=args.incremental,
    )
    if args.models:
        config_kwargs["models"] = tuple(args.models)
    config = StudyConfig(**config_kwargs)
    store = ResultStore(args.store)
    names = [args.dataset] if args.dataset else list(DATASET_NAMES)
    error_types = (
        [args.error_type]
        if args.error_type
        else ["missing_values", "outliers", "mislabels"]
    )
    # memory profiling records into the trace sidecars, so it implies
    # tracing rather than erroring on the missing flag
    trace = args.trace or args.profile_memory
    fault_flags = (
        args.max_retries is not None
        or args.cell_timeout is not None
        or args.fsync_journal
        or trace
    )
    if config.workers > 1 or fault_flags or args.backend != "process":
        from repro.benchmark import ExecutorOptions, run_parallel_study

        options = ExecutorOptions(
            backend=args.backend,
            transport=args.transport,
            max_retries=2 if args.max_retries is None else args.max_retries,
            cell_timeout=args.cell_timeout,
            fsync_journal=args.fsync_journal,
            trace=trace,
            profile_memory=args.profile_memory,
            ledger=args.ledger,
        )
        total = run_parallel_study(
            config,
            store,
            datasets=names,
            error_types=error_types,
            options=options,
            progress=lambda line: print(line, flush=True),
        )
        print(f"added {total} records ({len(store)} in store)")
        return 0
    runner = ExperimentRunner(config, store)
    total = 0
    for error_type in error_types:
        for name in names:
            added = runner.run_dataset_error(name, error_type)
            total += added
            print(f"{name}/{error_type}: +{added}", flush=True)
            if added:
                store.save()
    if args.ledger and store.path is not None:
        from repro.obs import record_run

        entry = record_run(store, config=config)
        print(f"ledgered run {entry['run_id']}")
    print(f"added {total} records ({len(store)} in store)")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if len(store) == 0:
        print(f"store {args.store} is empty; run `python -m repro study` first")
        return 1
    analysis = ImpactAnalysis(store)
    numbering = {
        ("missing_values", "PP", False): "II",
        ("missing_values", "EO", False): "III",
        ("missing_values", "PP", True): "IV",
        ("missing_values", "EO", True): "V",
        ("outliers", "PP", False): "VI",
        ("outliers", "EO", False): "VII",
        ("outliers", "PP", True): "VIII",
        ("outliers", "EO", True): "IX",
        ("mislabels", "PP", False): "X",
        ("mislabels", "EO", False): "XI",
        ("mislabels", "PP", True): "XII",
        ("mislabels", "EO", True): "XIII",
    }
    for (error_type, metric, intersectional), number in numbering.items():
        matrix = analysis.matrix(error_type, metric, intersectional=intersectional)
        if matrix.total == 0:
            continue
        group = "INTERSECTIONAL" if intersectional else "SINGLE-ATTRIBUTE"
        print(
            render_impact_matrix(
                matrix,
                f"TABLE {number}: {error_type} / {group} / {metric}",
            )
        )
        print()
    impacts = []
    for error_type in ("missing_values", "outliers", "mislabels"):
        for metric in ("PP", "EO"):
            impacts.extend(
                analysis.configuration_impacts(error_type, metric, intersectional=False)
            )
    if impacts:
        deepdive = DeepDive(impacts)
        print(render_model_table(deepdive.model_summaries(), "TABLE XIV: MODELS"))
        print()
        print(render_case_counts(deepdive.case_counts(), "CASE ANALYSIS"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting import build_study_report

    store = ResultStore(args.store)
    if len(store) == 0:
        print(f"store {args.store} is empty; run `python -m repro study` first")
        return 1
    report = build_study_report(store, title=args.title)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    from pathlib import Path

    path = Path(args.store)
    if not path.exists():
        print(f"no store at {path}")
        return 1
    store = ResultStore(path)
    if not store.is_legacy and not store.journal_paths():
        print(f"{path} is already a sharded store; nothing to migrate")
        return 0
    n_records = len(store)
    was_legacy = store.is_legacy
    if args.verify:
        violations = store.verify()
        if violations:
            for violation in violations:
                print(f"  {violation}")
            print(f"{path}: {len(violations)} violation(s); not migrating")
            return 1
    store.save()
    what = "legacy store" if was_legacy else "journal shards"
    n_shards = len(list(store.store_dir.glob("*.jsonl.gz")))
    print(
        f"migrated {what} at {path} to the sharded layout "
        f"({n_records} records, {n_shards} shard(s))"
    )
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_health_report

    store = ResultStore(args.store)
    trace_paths = store.trace_paths()
    if not trace_paths:
        print(
            f"no trace data next to {args.store}; run "
            "`python -m repro study --trace` first"
        )
        return 1
    health = store.health()
    if args.json:
        print(json.dumps(health.to_json(), indent=2, sort_keys=True))
    else:
        print(render_health_report(health, top=args.top))
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.obs import monitor_run, scan_run
    from repro.obs.progress import trace_files

    if not trace_files(args.store):
        print(
            f"no trace data next to {args.store}; launch the run with "
            "`python -m repro study --trace` to monitor it"
        )
        return 1
    if args.json:
        snapshot = scan_run(args.store, stall_after=args.stall_after)
        print(json.dumps(snapshot.to_json(), indent=2, sort_keys=True))
        return 0
    snapshot = monitor_run(
        args.store,
        interval=args.interval,
        stall_after=args.stall_after,
        once=args.once,
    )
    return 0 if snapshot.complete or args.once else 1


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import export_trace
    from repro.obs.progress import trace_files

    paths = trace_files(args.store)
    if not paths:
        print(
            f"no trace data next to {args.store}; run "
            "`python -m repro study --trace` first"
        )
        return 1
    output = (
        args.output
        if args.output
        else str(Path(args.store).with_suffix("")) + ".trace.chrome.json"
    )
    n_events = export_trace(paths, output, format=args.format)
    print(
        f"wrote {n_events} trace events to {output} "
        "(open in ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs import diff_stores, render_diff
    from repro.obs.progress import trace_files

    paths_a = trace_files(args.store_a)
    paths_b = trace_files(args.store_b)
    for label, paths in (("A", paths_a), ("B", paths_b)):
        if not paths:
            store = args.store_a if label == "A" else args.store_b
            print(f"no trace data next to run {label} ({store})")
            return 1
    diff = diff_stores(
        paths_a,
        paths_b,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    if args.json:
        print(json.dumps(diff.to_json(), indent=2, sort_keys=True))
    else:
        print(render_diff(diff, all_entries=args.all))
    return 1 if args.fail_on_regression and diff.flagged else 0


def _cmd_obs_audit(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        DEFAULT_RULES,
        build_audit,
        diff_audits,
        evaluate_rules,
        load_rules,
        render_audit,
        render_audit_diff,
        resolve_baseline,
    )

    if args.fail_on_fairness_regression and not args.baseline:
        print("--fail-on-fairness-regression requires --baseline")
        return 2
    store = ResultStore(args.store)
    if len(store) == 0:
        print(f"store {args.store} is empty; run `python -m repro study` first")
        return 1
    audit = build_audit(store)
    rules = load_rules(args.rules) if args.rules else DEFAULT_RULES
    alerts = evaluate_rules(rules, audit)
    diff = None
    if args.baseline:
        baseline = resolve_baseline(args.store, args.baseline)
        if baseline is None:
            print(
                f"cannot resolve baseline {args.baseline!r}; pin one with "
                "`python -m repro obs-baseline pin` or pass an exported "
                "baseline file"
            )
            return 1
        diff = diff_audits(
            baseline,
            audit,
            threshold=args.threshold,
            min_gap=args.min_gap,
            alpha=args.alpha,
        )
    if args.markdown:
        from repro.reporting import render_fairness_audit

        document = render_fairness_audit(
            audit, diff=diff, alerts=alerts, title=f"Fairness audit: {args.store}"
        )
        with open(args.markdown, "w") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.markdown}")
    if args.json:
        payload: dict = {
            "audit": audit.to_json(),
            "alerts": [alert.to_json() for alert in alerts],
        }
        if diff is not None:
            payload["diff"] = diff.to_json()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_audit(audit, alerts, top=args.top))
        if diff is not None:
            print()
            print(render_audit_diff(diff, all_findings=args.all))
    if args.fail_on_fairness_regression and diff is not None and diff.regressions:
        return 3
    return 0


def _cmd_obs_baseline(args: argparse.Namespace) -> int:
    from repro.obs import (
        export_baseline,
        ledger_path,
        pin_baseline,
        pins,
        record_run,
        runs,
    )

    if args.action == "record":
        store = ResultStore(args.store)
        if len(store) == 0:
            print(
                f"store {args.store} is empty; run `python -m repro study` first"
            )
            return 1
        entry = record_run(store)
        print(
            f"ledgered run {entry['run_id']} "
            f"({entry['n_records']} records) in {ledger_path(args.store)}"
        )
        return 0
    if args.action == "pin":
        if not args.name:
            print("pin requires --name")
            return 2
        try:
            entry = pin_baseline(args.store, args.name, run_id=args.run)
        except LookupError as error:
            print(str(error))
            return 1
        print(f"pinned {args.name!r} -> run {entry['run_id']}")
        return 0
    if args.action == "export":
        if not args.output:
            print("export requires --output")
            return 2
        try:
            entry = export_baseline(args.store, args.output, run_id=args.run)
        except LookupError as error:
            print(str(error))
            return 1
        print(f"exported run {entry['run_id']} to {args.output}")
        return 0
    # list
    path = ledger_path(args.store)
    known = runs(path)
    if not known:
        print(f"no runs recorded in {path}")
        return 1
    pinned = pins(path)
    names = {run_id: [] for run_id in pinned.values()}
    for name, run_id in pinned.items():
        names.setdefault(run_id, []).append(name)
    for entry in known:
        labels = names.get(entry["run_id"], [])
        suffix = f"  [{', '.join(sorted(labels))}]" if labels else ""
        fingerprint = entry.get("fingerprint") or "-"
        print(
            f"{entry['run_id']}  records={entry['n_records']} "
            f"fingerprint={fingerprint}{suffix}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ICDE 2023 cleaning-vs-fairness reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print Table I").set_defaults(func=_cmd_datasets)

    rq1 = sub.add_parser("rq1", help="run the RQ1 disparity analysis")
    rq1.add_argument("--dataset", choices=DATASET_NAMES)
    rq1.add_argument("--n-rows", type=int, default=5_000)
    rq1.add_argument("--seed", type=int, default=0)
    rq1.add_argument("--intersectional", action="store_true")
    rq1.set_defaults(func=_cmd_rq1)

    study = sub.add_parser("study", help="run RQ2 experiment configurations")
    study.add_argument("--store", required=True, help="JSON result-store path")
    study.add_argument("--dataset", choices=DATASET_NAMES)
    study.add_argument(
        "--error-type", choices=("missing_values", "outliers", "mislabels")
    )
    study.add_argument("--n-sample", type=int, default=2_000)
    study.add_argument("--test-fraction", type=float, default=0.3)
    study.add_argument("--repetitions", type=int, default=10)
    study.add_argument("--tuning-seeds", type=int, default=1)
    study.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes; >1 shards pending runs across a pool "
        "(results are byte-identical to a serial run)",
    )
    study.add_argument(
        "--backend",
        choices=("process", "thread", "serial"),
        default="process",
        help="where work units execute: a multiprocessing pool (default), "
        "a thread pool (zero transport cost; worthwhile for GIL-releasing "
        "numpy workloads), or a serial in-process loop — the result store "
        "is byte-identical across all three",
    )
    study.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="how datasets reach process-pool workers: zero-copy "
        "shared-memory segments, pickled tables, or auto-detect "
        "(default; shm where available)",
    )
    study.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=None,
        help="re-queue attempts per failing work unit before it is "
        "poisoned into the failures.jsonl sidecar (default 2)",
    )
    study.add_argument(
        "--cell-timeout",
        type=_positive_float,
        default=None,
        help="seconds one (model, tuning-seed) cell may run before the "
        "watchdog fails it for retry (default: no timeout)",
    )
    study.add_argument(
        "--fsync-journal",
        action="store_true",
        help="fsync every journal append (durable against power loss)",
    )
    study.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse computation across a repetition's cleaned versions "
        "(delta-patched featurisation, shared kNN/booster structures, "
        "warm logistic starts); results are byte-identical either way — "
        "--no-incremental forces every cell to a cold refit",
    )
    study.add_argument(
        "--trace",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="write structured trace/metric events to a {store}.trace.jsonl "
        "sidecar (results stay byte-identical; view with `obs-report`, "
        "tail live with `monitor`, export with `obs-export`)",
    )
    study.add_argument(
        "--profile-memory",
        action="store_true",
        help="sample tracemalloc deltas + RSS at unit/cell/featurize span "
        "boundaries (implies --trace; slower — tracemalloc instruments "
        "every allocation; results stay byte-identical)",
    )
    study.add_argument(
        "--models",
        nargs="+",
        choices=("log_reg", "knn", "xgboost"),
        default=None,
        help="restrict the study to these models (default: all three)",
    )
    study.add_argument(
        "--ledger",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="append this run's fairness audit to the {store}.ledger.jsonl "
        "run ledger after saving (sidecar only — store bytes are "
        "unchanged; audit against it with `obs-audit`)",
    )
    study.set_defaults(func=_cmd_study)

    tables = sub.add_parser("tables", help="render Tables II-XIV from a store")
    tables.add_argument("--store", required=True)
    tables.set_defaults(func=_cmd_tables)

    report = sub.add_parser("report", help="write a full markdown study report")
    report.add_argument("--store", required=True)
    report.add_argument("--output", help="output path (stdout when omitted)")
    report.add_argument("--title", default="Study report")
    report.set_defaults(func=_cmd_report)

    migrate = sub.add_parser(
        "store-migrate",
        help="migrate a legacy monolithic result store (and any journal "
        "shards) to the sharded layout",
    )
    migrate.add_argument("store", help="path of the store's JSON file")
    migrate.add_argument(
        "--verify",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="audit the store before migrating and refuse on violations "
        "(default on)",
    )
    migrate.set_defaults(func=_cmd_store_migrate)

    obs_report = sub.add_parser(
        "obs-report", help="render a run-health summary from trace sidecars"
    )
    obs_report.add_argument("store", help="result-store path of a traced run")
    obs_report.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        help="number of slowest cells to list (default 10)",
    )
    obs_report.add_argument(
        "--json",
        action="store_true",
        help="print the RunHealth summary as JSON instead of plain text",
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    monitor = sub.add_parser(
        "monitor",
        help="tail an in-flight traced run read-only: progress, ETA, "
        "per-configuration throughput, stalled-worker detection",
    )
    monitor.add_argument("store", help="result-store path the run was launched with")
    monitor.add_argument(
        "--interval",
        type=_positive_float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    monitor.add_argument(
        "--stall-after",
        type=_positive_float,
        default=60.0,
        help="heartbeat age in seconds after which a worker is reported "
        "stalled (default 60)",
    )
    monitor.add_argument(
        "--once",
        action="store_true",
        help="print a single snapshot and exit instead of polling",
    )
    monitor.add_argument(
        "--json",
        action="store_true",
        help="print one snapshot as JSON and exit (implies --once)",
    )
    monitor.set_defaults(func=_cmd_monitor)

    obs_export = sub.add_parser(
        "obs-export",
        help="convert trace sidecars to Chrome Trace Event Format "
        "(viewable in Perfetto / chrome://tracing / speedscope)",
    )
    obs_export.add_argument("store", help="result-store path of a traced run")
    obs_export.add_argument(
        "--format",
        choices=("chrome",),
        default="chrome",
        help="export format (default chrome)",
    )
    obs_export.add_argument(
        "--output",
        help="output path (default {store}.trace.chrome.json)",
    )
    obs_export.set_defaults(func=_cmd_obs_export)

    obs_diff = sub.add_parser(
        "obs-diff",
        help="compare two traced runs: span-duration distributions, metric "
        "counters and cache/reuse hit rates, with noise-aware thresholds",
    )
    obs_diff.add_argument("store_a", help="baseline run's store path")
    obs_diff.add_argument("store_b", help="candidate run's store path")
    obs_diff.add_argument(
        "--threshold",
        type=_positive_float,
        default=0.10,
        help="relative change required to flag a quantity (default 0.10)",
    )
    obs_diff.add_argument(
        "--min-seconds",
        type=_positive_float,
        default=0.005,
        help="absolute span-duration change floor in seconds under which "
        "differences count as noise (default 0.005)",
    )
    obs_diff.add_argument(
        "--all",
        action="store_true",
        help="print every compared quantity, not only flagged ones",
    )
    obs_diff.add_argument(
        "--json",
        action="store_true",
        help="print the diff as JSON instead of plain text",
    )
    obs_diff.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any quantity is flagged (CI gate)",
    )
    obs_diff.set_defaults(func=_cmd_obs_diff)

    obs_audit = sub.add_parser(
        "obs-audit",
        help="audit per-group fairness outcomes of a run, optionally "
        "against a pinned/exported baseline, with a CI regression gate",
    )
    obs_audit.add_argument("store", help="result-store path of the run")
    obs_audit.add_argument(
        "--baseline",
        help="baseline to diff against: an exported baseline file, "
        "'latest', a pin name, or a run-id prefix from this store's "
        "ledger",
    )
    obs_audit.add_argument(
        "--threshold",
        type=_positive_float,
        default=0.10,
        help="relative gap change required to flag a coordinate "
        "(default 0.10)",
    )
    obs_audit.add_argument(
        "--min-gap",
        type=_positive_float,
        default=0.02,
        help="absolute gap-change floor in disparity points under which "
        "differences count as noise (default 0.02)",
    )
    obs_audit.add_argument(
        "--alpha",
        type=_positive_float,
        default=0.05,
        help="significance level of the G² evidence gate (default 0.05)",
    )
    obs_audit.add_argument(
        "--rules",
        help="JSON alert-rule file (default: the built-in rules)",
    )
    obs_audit.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        help="number of worst widenings to list (default 10)",
    )
    obs_audit.add_argument(
        "--all",
        action="store_true",
        help="print every compared coordinate, not only flagged ones",
    )
    obs_audit.add_argument(
        "--json",
        action="store_true",
        help="print the audit (and diff) as JSON instead of plain text",
    )
    obs_audit.add_argument(
        "--markdown",
        help="also write a markdown audit report to this path",
    )
    obs_audit.add_argument(
        "--fail-on-fairness-regression",
        action="store_true",
        help="exit 3 when any coordinate regresses vs the baseline "
        "(CI gate; requires --baseline)",
    )
    obs_audit.set_defaults(func=_cmd_obs_audit)

    obs_baseline = sub.add_parser(
        "obs-baseline",
        help="manage the append-only run ledger: record a run's audit, "
        "pin named baselines, list runs, export a committed fixture",
    )
    obs_baseline.add_argument(
        "action", choices=("record", "pin", "list", "export")
    )
    obs_baseline.add_argument("store", help="result-store path of the run")
    obs_baseline.add_argument(
        "--name", help="pin name (required by the pin action)"
    )
    obs_baseline.add_argument(
        "--run",
        help="run-id prefix to pin/export (default: the latest run)",
    )
    obs_baseline.add_argument(
        "--output",
        help="output path of the exported baseline (required by export)",
    )
    obs_baseline.set_defaults(func=_cmd_obs_baseline)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
