"""The Table data structure.

A Table stores columns as numpy arrays: numeric columns as float64
(NaN = missing) and categorical columns as object arrays of ``str``
(None = missing). Tables are immutable by convention — all operations
return new tables; mutation helpers always copy.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.tabular.schema import ColumnKind, ColumnSpec, Schema


def _as_numeric_array(values: Any) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"numeric column must be 1-d, got shape {arr.shape}")
    return arr


def _as_categorical_array(values: Any) -> np.ndarray:
    arr = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None:
            arr[i] = None
        elif isinstance(value, float) and np.isnan(value):
            arr[i] = None
        else:
            arr[i] = str(value)
    return arr


class Table:
    """An immutable-by-convention columnar table.

    Build tables either from a schema plus column mapping, or with
    :meth:`from_columns` which infers the schema from numpy dtypes.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema {list(schema.names)}"
            )
        lengths = {len(columns[name]) for name in schema.names}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns, lengths: {sorted(lengths)}")
        self._schema = schema
        self._columns: dict[str, np.ndarray] = {}
        for spec in schema.columns:
            values = columns[spec.name]
            if spec.kind is ColumnKind.NUMERIC:
                self._columns[spec.name] = _as_numeric_array(values)
            else:
                self._columns[spec.name] = _as_categorical_array(values)
        self._n_rows = lengths.pop() if lengths else 0

    # -- construction --------------------------------------------------

    @staticmethod
    def from_columns(columns: Mapping[str, Any]) -> "Table":
        """Build a table, inferring column kinds.

        Columns with a numeric numpy dtype (or lists of numbers) become
        numeric; everything else becomes categorical.
        """
        specs = []
        converted: dict[str, np.ndarray] = {}
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.dtype.kind in "fiub":
                specs.append(ColumnSpec.numeric(name))
                converted[name] = arr.astype(np.float64)
            else:
                specs.append(ColumnSpec.categorical(name))
                converted[name] = _as_categorical_array(list(values))
        return Table(Schema(tuple(specs)), converted)

    @staticmethod
    def from_trusted_columns(
        schema: Schema, columns: Mapping[str, np.ndarray]
    ) -> "Table":
        """Build a table adopting the given arrays without copying.

        A zero-copy constructor for transports that already hold
        columns in canonical form (numeric: 1-d float64; categorical:
        1-d object arrays of str/None). The arrays are adopted as-is —
        including read-only views over shared memory — so the caller
        must hand over ownership and never mutate them afterwards.
        Only cheap shape/dtype invariants are checked; per-value
        conversion (the cost this constructor exists to avoid) is the
        caller's responsibility.
        """
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema {list(schema.names)}"
            )
        lengths = set()
        for spec in schema.columns:
            arr = columns[spec.name]
            expected = (
                np.float64 if spec.kind is ColumnKind.NUMERIC else np.object_
            )
            if not isinstance(arr, np.ndarray) or arr.ndim != 1 or arr.dtype != expected:
                raise ValueError(
                    f"column {spec.name!r} must be a 1-d {np.dtype(expected)} "
                    "array for trusted adoption"
                )
            lengths.add(arr.shape[0])
        if len(lengths) > 1:
            raise ValueError(f"ragged columns, lengths: {sorted(lengths)}")
        table = Table.__new__(Table)
        table._schema = schema
        table._columns = {spec.name: columns[spec.name] for spec in schema.columns}
        table._n_rows = lengths.pop() if lengths else 0
        return table

    @staticmethod
    def empty(schema: Schema) -> "Table":
        """Build a zero-row table with the given schema."""
        columns = {
            spec.name: (
                np.empty(0, dtype=np.float64)
                if spec.kind is ColumnKind.NUMERIC
                else np.empty(0, dtype=object)
            )
            for spec in schema.columns
        }
        return Table(schema, columns)

    # -- basic accessors -----------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._schema)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return self._schema.names

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """Return a copy of the named column's values."""
        return self._column_view(name).copy()

    def _column_view(self, name: str) -> np.ndarray:
        """Internal zero-copy access; callers must not mutate the result."""
        if name not in self._schema:
            raise KeyError(
                f"no column {name!r}; available: {', '.join(self.column_names)}"
            )
        return self._columns[name]

    def kind_of(self, name: str) -> ColumnKind:
        """Return the kind of the named column."""
        return self._schema.kind_of(name)

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dict (numeric NaN / categorical None preserved)."""
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row {index} out of range for {self._n_rows} rows")
        return {name: self._columns[name][index] for name in self.column_names}

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        """Iterate over rows as dicts."""
        for i in range(self._n_rows):
            yield self.row(i)

    # -- missingness ---------------------------------------------------

    def is_missing(self, name: str) -> np.ndarray:
        """Boolean mask of missing values in the named column."""
        values = self._column_view(name)
        if self.kind_of(name) is ColumnKind.NUMERIC:
            return np.isnan(values)
        return np.array([value is None for value in values], dtype=bool)

    def missing_mask(self) -> np.ndarray:
        """Boolean row mask: True where the row has any missing value."""
        mask = np.zeros(self._n_rows, dtype=bool)
        for name in self.column_names:
            mask |= self.is_missing(name)
        return mask

    def missing_counts(self) -> dict[str, int]:
        """Number of missing values per column."""
        return {name: int(self.is_missing(name).sum()) for name in self.column_names}

    # -- selection & transformation -------------------------------------

    def select_columns(self, names: Sequence[str]) -> "Table":
        """Return a table with only the given columns, in the given order."""
        schema = self._schema.select(tuple(names))
        return Table(schema, {name: self._columns[name].copy() for name in names})

    def drop_columns(self, names: Sequence[str]) -> "Table":
        """Return a table without the given columns."""
        schema = self._schema.without(tuple(names))
        return Table(
            schema, {name: self._columns[name].copy() for name in schema.names}
        )

    def mask_rows(self, mask: np.ndarray) -> "Table":
        """Return a table with only the rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self._n_rows,):
            raise ValueError(
                f"mask must be a boolean array of length {self._n_rows}, "
                f"got dtype {mask.dtype} shape {mask.shape}"
            )
        return Table(
            self._schema,
            {name: self._columns[name][mask] for name in self.column_names},
        )

    def take_rows(self, indices: np.ndarray) -> "Table":
        """Return a table with the rows at ``indices`` (ordered, may repeat)."""
        indices = np.asarray(indices, dtype=np.intp)
        return Table(
            self._schema,
            {name: self._columns[name][indices] for name in self.column_names},
        )

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.take_rows(np.arange(min(n, self._n_rows)))

    def with_column(self, name: str, values: Any, kind: ColumnKind) -> "Table":
        """Return a table with the named column replaced or appended."""
        if name in self._schema:
            specs = tuple(
                ColumnSpec(name, kind) if spec.name == name else spec
                for spec in self._schema.columns
            )
        else:
            specs = self._schema.columns + (ColumnSpec(name, kind),)
        columns = {col: self._columns[col].copy() for col in self.column_names}
        columns[name] = values
        return Table(Schema(specs), columns)

    def with_numeric_column(self, name: str, values: Any) -> "Table":
        """Replace or append a numeric column."""
        return self.with_column(name, values, ColumnKind.NUMERIC)

    def with_categorical_column(self, name: str, values: Any) -> "Table":
        """Replace or append a categorical column."""
        return self.with_column(name, values, ColumnKind.CATEGORICAL)

    def copy(self) -> "Table":
        """Deep-copy the table."""
        return Table(
            self._schema,
            {name: self._columns[name].copy() for name in self.column_names},
        )

    # -- sampling ------------------------------------------------------

    def sample_rows(
        self, n: int, rng: np.random.Generator, replace: bool = False
    ) -> "Table":
        """Sample ``n`` rows using the supplied generator."""
        if not replace and n > self._n_rows:
            raise ValueError(
                f"cannot sample {n} rows without replacement from {self._n_rows}"
            )
        indices = rng.choice(self._n_rows, size=n, replace=replace)
        return self.take_rows(indices)

    def shuffled(self, rng: np.random.Generator) -> "Table":
        """Return a row-shuffled copy."""
        return self.take_rows(rng.permutation(self._n_rows))

    # -- categorical helpers --------------------------------------------

    def distinct(self, name: str) -> list[str]:
        """Sorted distinct non-missing values of a categorical column."""
        values = self._column_view(name)
        if self.kind_of(name) is ColumnKind.NUMERIC:
            finite = values[~np.isnan(values)]
            return sorted({str(value) for value in finite})
        return sorted({value for value in values if value is not None})

    def value_counts(self, name: str) -> dict[str, int]:
        """Counts of non-missing values of a categorical column."""
        counts: dict[str, int] = {}
        for value in self._column_view(name):
            if value is None:
                continue
            counts[value] = counts.get(value, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    # -- dunder / display ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        for name in self.column_names:
            ours, theirs = self._columns[name], other._columns[name]
            if self.kind_of(name) is ColumnKind.NUMERIC:
                if not np.array_equal(ours, theirs, equal_nan=True):
                    return False
            else:
                if not all(a == b for a, b in zip(ours, theirs)):
                    return False
        return True

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{spec.name}:{spec.kind.value[:3]}" for spec in self._schema.columns
        )
        return f"Table({self._n_rows} rows; {kinds})"
