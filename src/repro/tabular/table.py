"""The Table data structure.

A Table stores columns as numpy arrays: numeric columns as float64
(NaN = missing) and categorical columns dictionary-encoded as
:class:`~repro.tabular.encoding.CategoricalColumn` — an ``int32``
codes array over an interned string pool (``-1`` = missing). Tables
are immutable by convention — all operations return new tables;
mutation helpers always copy.

Row selection, missingness, equality and statistics all operate on
the codes; Python string objects are materialised only at the
explicit boundaries: :meth:`Table.column`, :meth:`Table.row` /
:meth:`Table.iter_rows`, and CSV IO.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.tabular.encoding import CategoricalColumn, encode_values
from repro.tabular.schema import ColumnKind, ColumnSpec, Schema


def _as_numeric_array(values: Any) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"numeric column must be 1-d, got shape {arr.shape}")
    return arr


def _as_categorical_column(values: Any) -> CategoricalColumn:
    """Canonicalise arbitrary values into an encoded column.

    Already-encoded columns are adopted with a fresh codes buffer
    (tables own their codes; pools are immutable and shared freely).
    """
    if isinstance(values, CategoricalColumn):
        return values.copy()
    return encode_values(values)


class Table:
    """An immutable-by-convention columnar table.

    Build tables either from a schema plus column mapping, or with
    :meth:`from_columns` which infers the schema from numpy dtypes.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Any]):
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema {list(schema.names)}"
            )
        lengths = {len(columns[name]) for name in schema.names}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns, lengths: {sorted(lengths)}")
        self._schema = schema
        self._columns: dict[str, np.ndarray | CategoricalColumn] = {}
        for spec in schema.columns:
            values = columns[spec.name]
            if spec.kind is ColumnKind.NUMERIC:
                self._columns[spec.name] = _as_numeric_array(values)
            else:
                self._columns[spec.name] = _as_categorical_column(values)
        self._n_rows = lengths.pop() if lengths else 0

    # -- construction --------------------------------------------------

    @staticmethod
    def _from_parts(
        schema: Schema,
        columns: dict[str, np.ndarray | CategoricalColumn],
        n_rows: int,
    ) -> "Table":
        """Adopt already-canonical columns without copy or validation.

        Internal fast path for row/column selection: the caller
        guarantees dtypes, lengths and schema agreement.
        """
        table = Table.__new__(Table)
        table._schema = schema
        table._columns = columns
        table._n_rows = n_rows
        return table

    @staticmethod
    def from_columns(columns: Mapping[str, Any]) -> "Table":
        """Build a table, inferring column kinds.

        Columns with a numeric numpy dtype (or lists of numbers)
        become numeric; :class:`CategoricalColumn` values and
        everything else become categorical.
        """
        specs = []
        converted: dict[str, np.ndarray | CategoricalColumn] = {}
        for name, values in columns.items():
            if isinstance(values, CategoricalColumn):
                specs.append(ColumnSpec.categorical(name))
                converted[name] = values.copy()
                continue
            arr = np.asarray(values)
            if arr.dtype.kind in "fiub":
                specs.append(ColumnSpec.numeric(name))
                converted[name] = arr.astype(np.float64)
            else:
                specs.append(ColumnSpec.categorical(name))
                converted[name] = encode_values(values)
        return Table(Schema(tuple(specs)), converted)

    @staticmethod
    def from_trusted_columns(
        schema: Schema, columns: Mapping[str, np.ndarray | CategoricalColumn]
    ) -> "Table":
        """Build a table adopting the given arrays without copying.

        A zero-copy constructor for transports that already hold
        columns in canonical form (numeric: 1-d float64;
        categorical: :class:`CategoricalColumn` whose int32 codes may
        be read-only views over shared memory). The arrays are adopted
        as-is, so the caller must hand over ownership and never mutate
        them afterwards. Only cheap shape/dtype invariants are
        checked; per-value conversion (the cost this constructor
        exists to avoid) is the caller's responsibility.
        """
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema {list(schema.names)}"
            )
        lengths = set()
        for spec in schema.columns:
            arr = columns[spec.name]
            if spec.kind is ColumnKind.NUMERIC:
                if (
                    not isinstance(arr, np.ndarray)
                    or arr.ndim != 1
                    or arr.dtype != np.float64
                ):
                    raise ValueError(
                        f"column {spec.name!r} must be a 1-d float64 "
                        "array for trusted adoption"
                    )
            else:
                if not isinstance(arr, CategoricalColumn):
                    raise ValueError(
                        f"column {spec.name!r} must be a CategoricalColumn "
                        "for trusted adoption"
                    )
            lengths.add(len(arr))
        if len(lengths) > 1:
            raise ValueError(f"ragged columns, lengths: {sorted(lengths)}")
        return Table._from_parts(
            schema,
            {spec.name: columns[spec.name] for spec in schema.columns},
            lengths.pop() if lengths else 0,
        )

    @staticmethod
    def empty(schema: Schema) -> "Table":
        """Build a zero-row table with the given schema."""
        columns: dict[str, np.ndarray | CategoricalColumn] = {
            spec.name: (
                np.empty(0, dtype=np.float64)
                if spec.kind is ColumnKind.NUMERIC
                else CategoricalColumn(np.empty(0, dtype=np.int32), ())
            )
            for spec in schema.columns
        }
        return Table._from_parts(schema, columns, 0)

    # -- basic accessors -----------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._schema)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return self._schema.names

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """Return the named column's values, materialised.

        Numeric columns come back as a float64 copy; categorical
        columns decode into a fresh object array of ``str | None``.
        This is the string-materialisation boundary — hot paths should
        use :meth:`categorical` / :meth:`codes` instead.
        """
        stored = self._stored(name)
        if isinstance(stored, CategoricalColumn):
            return stored.decode()
        return stored.copy()

    def _stored(self, name: str) -> np.ndarray | CategoricalColumn:
        """Internal zero-copy access; callers must not mutate the result."""
        if name not in self._schema:
            raise KeyError(
                f"no column {name!r}; available: {', '.join(self.column_names)}"
            )
        return self._columns[name]

    def _column_view(self, name: str) -> np.ndarray:
        """Zero-copy view of a numeric column's float64 array."""
        stored = self._stored(name)
        if isinstance(stored, CategoricalColumn):
            raise TypeError(
                f"column {name!r} is categorical; use categorical()/codes()"
            )
        return stored

    def categorical(self, name: str) -> CategoricalColumn:
        """The named categorical column's encoded form (zero-copy)."""
        stored = self._stored(name)
        if not isinstance(stored, CategoricalColumn):
            raise TypeError(f"column {name!r} is numeric, not categorical")
        return stored

    def codes(self, name: str) -> np.ndarray:
        """Copy of the named categorical column's int32 codes."""
        return self.categorical(name).codes.copy()

    def pool(self, name: str) -> tuple[str, ...]:
        """The named categorical column's string pool."""
        return self.categorical(name).pool

    def kind_of(self, name: str) -> ColumnKind:
        """Return the kind of the named column."""
        return self._schema.kind_of(name)

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dict (numeric NaN / categorical None preserved)."""
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row {index} out of range for {self._n_rows} rows")
        row: dict[str, Any] = {}
        for name in self.column_names:
            stored = self._columns[name]
            if isinstance(stored, CategoricalColumn):
                code = int(stored.codes[index])
                row[name] = stored.pool[code] if code >= 0 else None
            else:
                row[name] = stored[index]
        return row

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        """Iterate over rows as dicts."""
        for i in range(self._n_rows):
            yield self.row(i)

    # -- missingness ---------------------------------------------------

    def is_missing(self, name: str) -> np.ndarray:
        """Boolean mask of missing values in the named column."""
        stored = self._stored(name)
        if isinstance(stored, CategoricalColumn):
            return stored.missing_mask()
        return np.isnan(stored)

    def missing_mask(self) -> np.ndarray:
        """Boolean row mask: True where the row has any missing value."""
        mask = np.zeros(self._n_rows, dtype=bool)
        for name in self.column_names:
            mask |= self.is_missing(name)
        return mask

    def missing_counts(self) -> dict[str, int]:
        """Number of missing values per column."""
        return {name: int(self.is_missing(name).sum()) for name in self.column_names}

    # -- selection & transformation -------------------------------------

    def select_columns(self, names: Sequence[str]) -> "Table":
        """Return a table with only the given columns, in the given order."""
        schema = self._schema.select(tuple(names))
        return Table._from_parts(
            schema,
            {name: self._copied(name) for name in schema.names},
            self._n_rows,
        )

    def drop_columns(self, names: Sequence[str]) -> "Table":
        """Return a table without the given columns."""
        schema = self._schema.without(tuple(names))
        return Table._from_parts(
            schema,
            {name: self._copied(name) for name in schema.names},
            self._n_rows,
        )

    def _copied(self, name: str) -> np.ndarray | CategoricalColumn:
        return self._columns[name].copy()

    def mask_rows(self, mask: np.ndarray) -> "Table":
        """Return a table with only the rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self._n_rows,):
            raise ValueError(
                f"mask must be a boolean array of length {self._n_rows}, "
                f"got dtype {mask.dtype} shape {mask.shape}"
            )
        columns: dict[str, np.ndarray | CategoricalColumn] = {}
        for name in self.column_names:
            stored = self._columns[name]
            columns[name] = (
                stored.mask(mask)
                if isinstance(stored, CategoricalColumn)
                else stored[mask]
            )
        return Table._from_parts(self._schema, columns, int(mask.sum()))

    def take_rows(self, indices: np.ndarray) -> "Table":
        """Return a table with the rows at ``indices`` (ordered, may repeat)."""
        indices = np.asarray(indices, dtype=np.intp)
        columns: dict[str, np.ndarray | CategoricalColumn] = {}
        for name in self.column_names:
            stored = self._columns[name]
            columns[name] = (
                stored.take(indices)
                if isinstance(stored, CategoricalColumn)
                else stored[indices]
            )
        return Table._from_parts(self._schema, columns, indices.shape[0])

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.take_rows(np.arange(min(n, self._n_rows)))

    def with_column(self, name: str, values: Any, kind: ColumnKind) -> "Table":
        """Return a table with the named column replaced or appended."""
        if name in self._schema:
            specs = tuple(
                ColumnSpec(name, kind) if spec.name == name else spec
                for spec in self._schema.columns
            )
        else:
            specs = self._schema.columns + (ColumnSpec(name, kind),)
        columns = {col: self._columns[col].copy() for col in self.column_names}
        columns[name] = values
        return Table(Schema(specs), columns)

    def with_numeric_column(self, name: str, values: Any) -> "Table":
        """Replace or append a numeric column."""
        return self.with_column(name, values, ColumnKind.NUMERIC)

    def with_categorical_column(self, name: str, values: Any) -> "Table":
        """Replace or append a categorical column."""
        return self.with_column(name, values, ColumnKind.CATEGORICAL)

    def copy(self) -> "Table":
        """Deep-copy the table."""
        return Table._from_parts(
            self._schema,
            {name: self._copied(name) for name in self.column_names},
            self._n_rows,
        )

    # -- sampling ------------------------------------------------------

    def sample_rows(
        self, n: int, rng: np.random.Generator, replace: bool = False
    ) -> "Table":
        """Sample ``n`` rows using the supplied generator."""
        if not replace and n > self._n_rows:
            raise ValueError(
                f"cannot sample {n} rows without replacement from {self._n_rows}"
            )
        indices = rng.choice(self._n_rows, size=n, replace=replace)
        return self.take_rows(indices)

    def shuffled(self, rng: np.random.Generator) -> "Table":
        """Return a row-shuffled copy."""
        return self.take_rows(rng.permutation(self._n_rows))

    # -- categorical helpers --------------------------------------------

    def distinct(self, name: str) -> list[str]:
        """Sorted distinct non-missing values of a categorical column."""
        stored = self._stored(name)
        if isinstance(stored, CategoricalColumn):
            return stored.present_values()
        finite = stored[~np.isnan(stored)]
        return sorted({str(value) for value in finite})

    def value_counts(self, name: str) -> dict[str, int]:
        """Counts of non-missing values of a categorical column."""
        column = self.categorical(name)
        counts = column.counts()
        present = [
            (column.pool[int(i)], int(counts[i]))
            for i in np.nonzero(counts)[0]
        ]
        return dict(sorted(present, key=lambda kv: (-kv[1], kv[0])))

    # -- dunder / display ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        for name in self.column_names:
            ours, theirs = self._columns[name], other._columns[name]
            if isinstance(ours, CategoricalColumn):
                assert isinstance(theirs, CategoricalColumn)
                if not ours.values_equal(theirs):
                    return False
            else:
                if not np.array_equal(ours, theirs, equal_nan=True):
                    return False
        return True

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{spec.name}:{spec.kind.value[:3]}" for spec in self._schema.columns
        )
        return f"Table({self._n_rows} rows; {kinds})"
