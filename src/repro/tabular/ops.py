"""Cross-table operations: concatenation and splitting."""

from __future__ import annotations

import numpy as np

from repro.tabular.encoding import CategoricalColumn, concat_categorical
from repro.tabular.schema import ColumnKind
from repro.tabular.table import Table


def concat_rows(tables: list[Table]) -> Table:
    """Concatenate tables with identical schemas row-wise.

    Numeric columns concatenate directly; categorical columns
    concatenate on their codes over the union pool — no string
    materialisation.
    """
    if not tables:
        raise ValueError("need at least one table to concatenate")
    schema = tables[0].schema
    for table in tables[1:]:
        if table.schema != schema:
            raise ValueError("cannot concatenate tables with differing schemas")
    columns: dict[str, np.ndarray | CategoricalColumn] = {}
    for name in schema.names:
        if schema.kind_of(name) is ColumnKind.NUMERIC:
            columns[name] = np.concatenate(
                [table._column_view(name) for table in tables]
            )
        else:
            columns[name] = concat_categorical(
                [table.categorical(name) for table in tables]
            )
    return Table.from_trusted_columns(schema, columns)


def train_test_split_table(
    table: Table,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[Table, Table]:
    """Split a table into train/test partitions by random row assignment.

    Returns ``(train, test)`` where the test partition holds
    ``round(n_rows * test_fraction)`` rows.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n_test = int(round(table.n_rows * test_fraction))
    if n_test == 0 or n_test == table.n_rows:
        raise ValueError(
            f"test_fraction {test_fraction} leaves an empty partition "
            f"for {table.n_rows} rows"
        )
    permutation = rng.permutation(table.n_rows)
    test_indices = permutation[:n_test]
    train_indices = permutation[n_test:]
    return table.take_rows(train_indices), table.take_rows(test_indices)
