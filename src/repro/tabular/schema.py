"""Schema descriptions for tables.

A schema is an ordered collection of column specs. Each column is either
numeric (stored as float64, with NaN marking missing values) or
categorical (dictionary-encoded: int32 codes over an interned string
pool, with code -1 marking missing values; see
:mod:`repro.tabular.encoding`). This mirrors the NULL/NaN semantics the
paper's error detectors rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ColumnKind(enum.Enum):
    """The physical/logical kind of a column."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class ColumnSpec:
    """Description of a single column.

    Attributes:
        name: Column name, unique within a schema.
        kind: Whether values are numeric or categorical.
    """

    name: str
    kind: ColumnKind

    @staticmethod
    def numeric(name: str) -> "ColumnSpec":
        """Shorthand for a numeric column spec."""
        return ColumnSpec(name, ColumnKind.NUMERIC)

    @staticmethod
    def categorical(name: str) -> "ColumnSpec":
        """Shorthand for a categorical column spec."""
        return ColumnSpec(name, ColumnKind.CATEGORICAL)


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of column specs."""

    columns: tuple[ColumnSpec, ...]
    _by_name: dict[str, ColumnSpec] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_name: dict[str, ColumnSpec] = {}
        for spec in self.columns:
            if spec.name in by_name:
                raise ValueError(f"duplicate column name {spec.name!r}")
            by_name[spec.name] = spec
        object.__setattr__(self, "_by_name", by_name)

    @staticmethod
    def of(*specs: ColumnSpec) -> "Schema":
        """Build a schema from column specs."""
        return Schema(tuple(specs))

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return tuple(spec.name for spec in self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.columns)

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {', '.join(self.names)}"
            ) from None

    def kind_of(self, name: str) -> ColumnKind:
        """Return the kind of the named column."""
        return self[name].kind

    def numeric_names(self) -> tuple[str, ...]:
        """Names of all numeric columns, in order."""
        return tuple(
            spec.name for spec in self.columns if spec.kind is ColumnKind.NUMERIC
        )

    def categorical_names(self) -> tuple[str, ...]:
        """Names of all categorical columns, in order."""
        return tuple(
            spec.name for spec in self.columns if spec.kind is ColumnKind.CATEGORICAL
        )

    def without(self, names: tuple[str, ...] | list[str]) -> "Schema":
        """Return a schema with the given columns removed."""
        drop = set(names)
        missing = drop - set(self.names)
        if missing:
            raise KeyError(f"cannot drop unknown columns: {sorted(missing)}")
        return Schema(tuple(spec for spec in self.columns if spec.name not in drop))

    def select(self, names: tuple[str, ...] | list[str]) -> "Schema":
        """Return a schema with only the given columns, in the given order."""
        return Schema(tuple(self[name] for name in names))
