"""Dictionary encoding for categorical columns.

A :class:`CategoricalColumn` is the native in-memory representation of
a categorical column: an ``int32`` *codes* array indexing into an
immutable, interned string *pool*, with ``-1`` marking missing values.
Every dataset-sized operation — missingness masks, row selection,
equality, value counts, mode statistics, one-hot encoding, shared-
memory transport — works directly on the codes; Python string objects
are materialised only at explicit boundaries (:meth:`decode`,
``Table.column``, CSV IO).

Invariants
----------

- ``codes`` is a 1-d ``int32`` array; every entry is ``-1`` (missing)
  or a valid index into ``pool``.
- ``pool`` is a tuple of unique, `sys.intern`-ed ``str`` values. It
  may be a *superset* of the values present in ``codes`` (row
  filtering never re-pools), and its order is arbitrary —
  :func:`encode_values` produces a sorted pool, but repairs may append
  fill values, so no consumer may rely on pool order. Everything
  order-sensitive (``distinct``, one-hot categories, mode tie-breaks)
  sorts by the pool *strings*, which makes all derived bytes
  independent of pool layout.
- Columns are immutable by convention: operations return new columns;
  ``codes`` buffers may be read-only views (e.g. over shared memory).

:func:`encode_values` is the one place arbitrary Python values enter
the encoded world (``None``/NaN become missing, everything else goes
through ``str``), preserving the semantics of the historical
object-array representation bit for bit.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "CategoricalColumn",
    "encode_values",
    "aligned_codes",
    "union_pool",
    "concat_categorical",
]

_CODE_DTYPE = np.int32

#: Missing-value code.
MISSING = -1


class CategoricalColumn:
    """An ``int32``-coded categorical column over an interned pool.

    Attributes:
        codes: 1-d ``int32`` array; ``-1`` = missing, otherwise an
            index into ``pool``. Treated as immutable.
        pool: Tuple of unique interned strings the codes index into.
    """

    __slots__ = ("codes", "pool")

    def __init__(
        self,
        codes: np.ndarray,
        pool: tuple[str, ...],
        *,
        copy: bool = False,
        validate: bool = True,
    ) -> None:
        codes = np.asarray(codes)
        if codes.dtype != _CODE_DTYPE:
            codes = codes.astype(_CODE_DTYPE)
        elif copy:
            codes = codes.copy()
        if codes.ndim != 1:
            raise ValueError(f"codes must be 1-d, got shape {codes.shape}")
        if validate or not isinstance(pool, tuple):
            # trusted tuples (validate=False) are adopted as-is so
            # derived columns (take/mask/fill/...) share one pool object
            pool = tuple(sys.intern(str(value)) for value in pool)
        if validate:
            if len(set(pool)) != len(pool):
                raise ValueError("pool contains duplicate values")
            if codes.size:
                low = int(codes.min())
                high = int(codes.max())
                if low < MISSING or high >= len(pool):
                    raise ValueError(
                        f"codes out of range [-1, {len(pool)}): "
                        f"min {low}, max {high}"
                    )
        self.codes = codes
        self.pool = pool

    # -- basics --------------------------------------------------------

    def __len__(self) -> int:
        return self.codes.shape[0]

    def __repr__(self) -> str:
        return (
            f"CategoricalColumn({len(self)} rows, pool of {len(self.pool)})"
        )

    def missing_mask(self) -> np.ndarray:
        """Boolean mask, True where the value is missing."""
        return self.codes < 0

    def decode(self) -> np.ndarray:
        """Materialise the column as an object array of ``str | None``.

        This is the string-materialisation boundary: one fancy-index
        over an object lookup table (``-1`` indexes the trailing
        ``None`` sentinel), the only place codes become Python strings.
        """
        lookup = np.empty(len(self.pool) + 1, dtype=object)
        lookup[:-1] = self.pool
        lookup[-1] = None
        return lookup[self.codes]

    # -- vectorised predicates ----------------------------------------

    def code_of(self, value: str) -> int:
        """Pool index of ``value``, or ``-2`` when not in the pool.

        ``-2`` (not ``-1``) so that a not-in-pool probe never matches
        missing entries.
        """
        try:
            return self.pool.index(value)
        except ValueError:
            return -2

    def eq(self, value: str) -> np.ndarray:
        """Mask of rows equal to ``value`` (missing rows are False)."""
        return self.codes == self.code_of(value)

    def isin(self, values: Iterable[str]) -> np.ndarray:
        """Mask of rows whose value is in ``values`` (missing → False)."""
        wanted = [code for code in (self.code_of(v) for v in values) if code >= 0]
        if not wanted:
            return np.zeros(len(self), dtype=bool)
        return np.isin(self.codes, wanted)

    # -- statistics ----------------------------------------------------

    def counts(self) -> np.ndarray:
        """Occurrences of each pool entry (missing not counted)."""
        present = self.codes[self.codes >= 0]
        return np.bincount(present, minlength=len(self.pool))

    def present_values(self) -> list[str]:
        """Sorted distinct values that actually occur in the column."""
        return sorted(self.pool[int(i)] for i in np.nonzero(self.counts())[0])

    def mode(self) -> str | None:
        """Most frequent present value, lexicographically-smallest on
        ties; ``None`` when every entry is missing."""
        counts = self.counts()
        top = counts.max(initial=0)
        if top == 0:
            return None
        return min(self.pool[int(i)] for i in np.nonzero(counts == top)[0])

    # -- selection / mutation-by-copy ----------------------------------

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        """Rows at ``indices`` (ordered, may repeat); pool is shared."""
        return CategoricalColumn(
            self.codes[np.asarray(indices, dtype=np.intp)],
            self.pool,
            validate=False,
        )

    def mask(self, mask: np.ndarray) -> "CategoricalColumn":
        """Rows where ``mask`` is True; pool is shared."""
        return CategoricalColumn(self.codes[mask], self.pool, validate=False)

    def copy(self) -> "CategoricalColumn":
        """A column with a fresh codes buffer (pool tuples are shared)."""
        return CategoricalColumn(
            self.codes.copy(), self.pool, validate=False
        )

    def fill_missing(self, value: str) -> "CategoricalColumn":
        """Replace missing entries with ``value``, interning it into
        the pool if absent (appended, preserving existing codes)."""
        code = self.code_of(value)
        pool = self.pool
        if code < 0:
            code = len(pool)
            pool = pool + (sys.intern(str(value)),)
        return CategoricalColumn(
            np.where(self.codes < 0, _CODE_DTYPE(code), self.codes),
            pool,
            validate=False,
        )

    def set_missing(self, mask: np.ndarray) -> "CategoricalColumn":
        """Mark the rows where ``mask`` is True as missing."""
        return CategoricalColumn(
            np.where(np.asarray(mask, dtype=bool), _CODE_DTYPE(MISSING), self.codes),
            self.pool,
            validate=False,
        )

    def recode(self, pool: tuple[str, ...]) -> "CategoricalColumn":
        """Re-express the column over ``pool`` (a superset of the
        present values); raises KeyError when a present value is absent
        from the target pool."""
        if pool == self.pool:
            return self
        index = {value: i for i, value in enumerate(pool)}
        mapping = np.empty(len(self.pool) + 1, dtype=_CODE_DTYPE)
        counts = self.counts()
        for i, value in enumerate(self.pool):
            position = index.get(value)
            if position is None:
                if counts[i]:
                    raise KeyError(
                        f"value {value!r} present in column but absent "
                        "from the target pool"
                    )
                position = MISSING  # unused slot; never indexed by a code
            mapping[i] = position
        mapping[-1] = MISSING  # missing stays missing
        return CategoricalColumn(mapping[self.codes], pool, validate=False)

    # -- equality ------------------------------------------------------

    def values_equal(self, other: "CategoricalColumn") -> bool:
        """True when both columns decode to the same value sequence."""
        ours, theirs = aligned_codes(self, other)
        return bool(np.array_equal(ours, theirs))


def encode_values(values: Any) -> CategoricalColumn:
    """Dictionary-encode arbitrary values into a sorted-pool column.

    Semantics match the historical object-array normalisation exactly:
    ``None`` and float NaN become missing; every other value becomes
    ``str(value)``. The pool is the sorted set of present values, so
    encoding the same value sequence always yields the same
    (pool, codes) pair — including under duplicates and non-ASCII
    strings, which sort by code point like any Python ``str``.
    """
    if isinstance(values, CategoricalColumn):
        return values
    arr = np.asarray(values, dtype=object) if not isinstance(values, np.ndarray) else values
    if arr.dtype != object:
        arr = arr.astype(object)
    if arr.ndim != 1:
        raise ValueError(f"categorical column must be 1-d, got shape {arr.shape}")
    n = arr.shape[0]
    normalized = np.empty(n, dtype=object)
    missing = np.zeros(n, dtype=bool)
    for i, value in enumerate(arr):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            missing[i] = True
        elif type(value) is str:
            normalized[i] = value
        else:
            normalized[i] = str(value)
    present = normalized[~missing]
    codes = np.full(n, MISSING, dtype=_CODE_DTYPE)
    if present.size:
        pool_arr, inverse = np.unique(present, return_inverse=True)
        codes[~missing] = inverse.astype(_CODE_DTYPE)
        pool = tuple(sys.intern(str(v)) for v in pool_arr)
    else:
        pool = ()
    return CategoricalColumn(codes, pool, validate=False)


def union_pool(pools: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
    """Deterministic (sorted) union of several pools."""
    merged: set[str] = set()
    for pool in pools:
        merged.update(pool)
    return tuple(sys.intern(value) for value in sorted(merged))


def aligned_codes(
    a: CategoricalColumn, b: CategoricalColumn
) -> tuple[np.ndarray, np.ndarray]:
    """Codes of both columns over a common pool (zero-copy when the
    pools already match, which they do along version lineages)."""
    if a.pool == b.pool:
        return a.codes, b.codes
    pool = union_pool((a.pool, b.pool))
    return a.recode(pool).codes, b.recode(pool).codes


def concat_categorical(
    columns: Sequence[CategoricalColumn],
) -> CategoricalColumn:
    """Row-wise concatenation over the union pool."""
    if not columns:
        raise ValueError("need at least one column to concatenate")
    first_pool = columns[0].pool
    if all(column.pool == first_pool for column in columns):
        return CategoricalColumn(
            np.concatenate([column.codes for column in columns]),
            first_pool,
            validate=False,
        )
    pool = union_pool([column.pool for column in columns])
    return CategoricalColumn(
        np.concatenate([column.recode(pool).codes for column in columns]),
        pool,
        validate=False,
    )
