"""Columnar table substrate.

A small, explicit replacement for the subset of pandas that the study
needs: typed columns (numeric with NaN for missing, categorical with
None for missing), boolean masking, row sampling, train/test splitting
and CSV round-trips.
"""

from repro.tabular.schema import ColumnKind, ColumnSpec, Schema
from repro.tabular.table import Table
from repro.tabular.io import read_csv, write_csv
from repro.tabular.ops import concat_rows, train_test_split_table

__all__ = [
    "ColumnKind",
    "ColumnSpec",
    "Schema",
    "Table",
    "read_csv",
    "write_csv",
    "concat_rows",
    "train_test_split_table",
]
