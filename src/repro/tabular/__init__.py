"""Columnar table substrate.

A small, explicit replacement for the subset of pandas that the study
needs: typed columns (numeric float64 with NaN for missing,
categorical dictionary-encoded as int32 codes over an interned string
pool with -1 for missing), boolean masking, row sampling, train/test
splitting and CSV round-trips. Strings materialise only at explicit
boundaries (``Table.column``, row iteration, CSV IO); everything else
runs on the codes.
"""

from repro.tabular.encoding import (
    CategoricalColumn,
    aligned_codes,
    concat_categorical,
    encode_values,
    union_pool,
)
from repro.tabular.schema import ColumnKind, ColumnSpec, Schema
from repro.tabular.table import Table
from repro.tabular.io import read_csv, write_csv
from repro.tabular.ops import concat_rows, train_test_split_table

__all__ = [
    "CategoricalColumn",
    "ColumnKind",
    "ColumnSpec",
    "Schema",
    "Table",
    "aligned_codes",
    "concat_categorical",
    "encode_values",
    "read_csv",
    "union_pool",
    "write_csv",
    "concat_rows",
    "train_test_split_table",
]
