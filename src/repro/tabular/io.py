"""CSV round-trips for tables.

Missing values are written as empty fields and read back as NaN
(numeric) or None (categorical), matching the NULL detection the
paper's missing-value detector performs.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.tabular.schema import ColumnKind, Schema
from repro.tabular.table import Table

_MISSING_FIELD = ""


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to a CSV file with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        columns = [table.column(name) for name in table.column_names]
        kinds = [table.kind_of(name) for name in table.column_names]
        for i in range(table.n_rows):
            row = []
            for values, kind in zip(columns, kinds):
                value = values[i]
                if kind is ColumnKind.NUMERIC:
                    row.append(
                        _MISSING_FIELD if np.isnan(value) else repr(float(value))
                    )
                else:
                    row.append(_MISSING_FIELD if value is None else value)
            writer.writerow(row)


def read_csv(path: str | Path, schema: Schema) -> Table:
    """Read a CSV file into a table with the given schema.

    The file's header must contain every schema column (extra columns
    are ignored). Empty fields become missing values.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty, expected a header row") from None
        missing_columns = set(schema.names) - set(header)
        if missing_columns:
            raise ValueError(
                f"{path} is missing schema columns: {sorted(missing_columns)}"
            )
        positions = {name: header.index(name) for name in schema.names}
        raw_columns: dict[str, list] = {name: [] for name in schema.names}
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            for name in schema.names:
                field = row[positions[name]]
                if field == _MISSING_FIELD:
                    raw_columns[name].append(None)
                elif schema.kind_of(name) is ColumnKind.NUMERIC:
                    try:
                        raw_columns[name].append(float(field))
                    except ValueError:
                        raise ValueError(
                            f"{path}:{line_number}: cannot parse {field!r} "
                            f"as numeric for column {name!r}"
                        ) from None
                else:
                    raw_columns[name].append(field)

    columns: dict[str, object] = {}
    for name in schema.names:
        if schema.kind_of(name) is ColumnKind.NUMERIC:
            columns[name] = np.array(
                [np.nan if value is None else value for value in raw_columns[name]],
                dtype=np.float64,
            )
        else:
            # str | None lists dictionary-encode directly in the ctor
            columns[name] = raw_columns[name]
    return Table(schema, columns)
