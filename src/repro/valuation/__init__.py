"""Data valuation for fairness-aware cleaning (the paper's §VII).

The paper's vision section names the identification of input tuples
with negative impact on fairness as the starting point for designing
fairness-aware cleaning procedures, citing efficient kNN-based Shapley
values (Jia et al., VLDB 2019) and their fairness-metric extension
(Karlaš et al., 2022). This package implements both:

- :func:`knn_shapley` — exact, closed-form Shapley values of training
  tuples under the kNN utility (O(n log n) per test point),
- :class:`FairnessShapleyValuator` — group-wise valuation that scores
  each training tuple's contribution to the disparity between the
  privileged and disadvantaged groups, so that negatively-valued
  tuples become cleaning candidates.
"""

from repro.valuation.knn_shapley import knn_shapley
from repro.valuation.fairness import FairnessShapleyValuator, ValuationResult

__all__ = ["knn_shapley", "FairnessShapleyValuator", "ValuationResult"]
