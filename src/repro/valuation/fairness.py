"""Fairness-aware data valuation.

Scores each training tuple's contribution to the *disparity* between
the privileged and disadvantaged groups, in the spirit of Karlaš et
al. (2022, "Data debugging with Shapley importance over end-to-end ML
pipelines"), whom the paper cites as the starting point for
fairness-aware cleaning.

The construction: compute kNN-Shapley values twice, once with the
utility restricted to the privileged test tuples and once restricted
to the disadvantaged ones. The *disparity value* of a training tuple
is its contribution to (privileged utility - disadvantaged utility).
For the equal-opportunity flavour, the utilities are restricted to
positive-label test tuples (group-wise recall). Tuples with large
positive disparity values push the model toward the privileged group;
they are the natural candidates for fairness-aware cleaning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.valuation.knn_shapley import knn_shapley


@dataclass(frozen=True)
class ValuationResult:
    """Per-training-tuple valuation outcome.

    Attributes:
        accuracy_values: Shapley values under the overall kNN utility.
        privileged_values: Values under the privileged-group utility.
        disadvantaged_values: Values under the disadvantaged-group utility.
        disparity_values: privileged_values - disadvantaged_values.
    """

    accuracy_values: np.ndarray
    privileged_values: np.ndarray
    disadvantaged_values: np.ndarray

    @property
    def disparity_values(self) -> np.ndarray:
        """Contribution to the privileged-vs-disadvantaged utility gap."""
        return self.privileged_values - self.disadvantaged_values

    def disparity_ranking(self) -> np.ndarray:
        """Training indices, most disparity-increasing first."""
        return np.argsort(-self.disparity_values, kind="mergesort")

    def harmful_for_fairness(self, quantile: float = 0.95) -> np.ndarray:
        """Boolean mask of tuples above the disparity-value quantile."""
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        threshold = np.quantile(self.disparity_values, quantile)
        return self.disparity_values > threshold

    def harmful_for_accuracy(self) -> np.ndarray:
        """Boolean mask of tuples with negative accuracy value."""
        return self.accuracy_values < 0.0

    def widening_gap(
        self, current_disparity: float, quantile: float = 0.95
    ) -> np.ndarray:
        """Tuples that push the model further in the gap's direction.

        ``current_disparity`` is the signed privileged-minus-
        disadvantaged disparity of the deployed model; the mask flags
        the tuples whose disparity value most strongly *widens* that
        gap (positive values when the privileged group is ahead,
        negative values when the disadvantaged group is ahead).
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        oriented = (
            self.disparity_values
            if current_disparity >= 0
            else -self.disparity_values
        )
        threshold = np.quantile(oriented, quantile)
        return oriented > threshold


class FairnessShapleyValuator:
    """Computes fairness-aware kNN-Shapley valuations.

    Args:
        k: Neighbourhood size of the kNN utility.
        recall_only: Restrict the group utilities to positive-label
            test tuples — the equal-opportunity (recall-parity)
            flavour. When False, group utilities are group accuracies.
    """

    def __init__(self, k: int = 5, recall_only: bool = False) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.recall_only = recall_only

    def value(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        privileged_test: np.ndarray,
        disadvantaged_test: np.ndarray,
    ) -> ValuationResult:
        """Run the three valuations.

        Args:
            privileged_test / disadvantaged_test: Boolean masks over
                the test tuples (need not partition them — mixed
                tuples of intersectional definitions are excluded).
        """
        X_test = np.asarray(X_test, dtype=np.float64)
        y_test = np.asarray(y_test).astype(np.int64)
        privileged_test = np.asarray(privileged_test, dtype=bool)
        disadvantaged_test = np.asarray(disadvantaged_test, dtype=bool)
        if privileged_test.shape != (len(y_test),) or disadvantaged_test.shape != (
            len(y_test),
        ):
            raise ValueError("group masks must match the test set length")
        if self.recall_only:
            privileged_test = privileged_test & (y_test == 1)
            disadvantaged_test = disadvantaged_test & (y_test == 1)
        if not privileged_test.any() or not disadvantaged_test.any():
            raise ValueError(
                "both groups need at least one (positive) test tuple"
            )
        accuracy_values = knn_shapley(X_train, y_train, X_test, y_test, k=self.k)
        privileged_values = knn_shapley(
            X_train,
            y_train,
            X_test[privileged_test],
            y_test[privileged_test],
            k=self.k,
        )
        disadvantaged_values = knn_shapley(
            X_train,
            y_train,
            X_test[disadvantaged_test],
            y_test[disadvantaged_test],
            k=self.k,
        )
        return ValuationResult(
            accuracy_values=accuracy_values,
            privileged_values=privileged_values,
            disadvantaged_values=disadvantaged_values,
        )
