"""Exact Shapley values under the kNN utility.

Implements the closed-form recursion of Jia et al. (VLDB 2019,
"Efficient task-specific data valuation for nearest neighbor
algorithms"). For a single test point, sort the training points by
distance; with sigma(i) the index of the i-th nearest neighbour
(1-based) and the utility being the fraction of the K nearest
neighbours that carry the test label:

    s[sigma(n)] = 1[y_sigma(n) = y_test] / n
    s[sigma(i)] = s[sigma(i+1)]
                  + (1[y_sigma(i) = y_test] - 1[y_sigma(i+1) = y_test]) / K
                    * min(K, i) / i

The value of a training point for a test *set* is the mean of its
per-test-point values. Values sum to the test-set kNN utility
(efficiency axiom), which the tests pin down.
"""

from __future__ import annotations

import numpy as np

_CHUNK_TARGET_CELLS = 2_000_000


def _validate(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    X_train = np.asarray(X_train, dtype=np.float64)
    y_train = np.asarray(y_train).astype(np.int64)
    X_test = np.asarray(X_test, dtype=np.float64)
    y_test = np.asarray(y_test).astype(np.int64)
    if X_train.ndim != 2 or X_test.ndim != 2:
        raise ValueError("feature matrices must be 2-d")
    if X_train.shape[0] != y_train.shape[0]:
        raise ValueError(
            f"X_train has {X_train.shape[0]} rows, y_train {y_train.shape[0]}"
        )
    if X_test.shape[0] != y_test.shape[0]:
        raise ValueError(
            f"X_test has {X_test.shape[0]} rows, y_test {y_test.shape[0]}"
        )
    if X_train.shape[1] != X_test.shape[1]:
        raise ValueError(
            f"feature mismatch: train {X_train.shape[1]}, test {X_test.shape[1]}"
        )
    if X_train.shape[0] == 0 or X_test.shape[0] == 0:
        raise ValueError("train and test sets must be non-empty")
    return X_train, y_train, X_test, y_test


def knn_shapley(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    k: int = 5,
) -> np.ndarray:
    """Exact per-training-point Shapley values under the kNN utility.

    Args:
        X_train / y_train: Training features and 0/1 labels.
        X_test / y_test: Test features and labels defining the utility.
        k: Number of neighbours in the kNN utility.

    Returns:
        An array of length ``len(X_train)``; values sum to the mean
        kNN utility over the test set.
    """
    X_train, y_train, X_test, y_test = _validate(X_train, y_train, X_test, y_test)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = X_train.shape[0]
    values = np.zeros(n, dtype=np.float64)
    train_sq = np.sum(X_train**2, axis=1)
    chunk_rows = max(1, _CHUNK_TARGET_CELLS // max(1, n))
    positions = np.arange(1, n, dtype=np.float64)  # i = 1..n-1 (1-based i of s[i+1])
    min_k_positions = np.minimum(k, positions)
    for start in range(0, X_test.shape[0], chunk_rows):
        chunk = X_test[start : start + chunk_rows]
        chunk_labels = y_test[start : start + chunk_rows]
        distances = train_sq[None, :] - 2.0 * (chunk @ X_train.T)
        order = np.argsort(distances, axis=1, kind="mergesort")
        # batched backward recursion: every test row in the chunk at once
        match = (y_train[order] == chunk_labels[:, None]).astype(np.float64)
        s = np.empty_like(match)
        s[:, n - 1] = match[:, n - 1] / n
        if n > 1:
            # s[i] = s[i+1] + (match[i] - match[i+1])/k * min(k, i)/i,
            # unrolled per row via a reversed cumulative sum; the
            # in-place steps replay the scalar op sequence exactly
            deltas = match[:, :-1] - match[:, 1:]
            deltas /= k
            deltas *= min_k_positions
            deltas /= positions
            np.cumsum(deltas[:, ::-1], axis=1, out=deltas[:, ::-1])
            s[:, :-1] = s[:, n - 1 : n] + deltas
        # scatter-add row by row in element order: each row's sigma is a
        # permutation, so per test row every training point receives
        # exactly one contribution — the same accumulation order (and
        # hence the same floating-point result) as the per-row loop
        np.add.at(values, order, s)
    return values / X_test.shape[0]
