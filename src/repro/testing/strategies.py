"""Hypothesis strategies for generating fault-injection plans.

Used by the randomized chaos sweeps (``pytest -m slow``) to explore
arbitrary combinations of fault kinds, target coordinates and attempt
windows. All strategies produce plain :class:`repro.testing.Fault` /
:class:`repro.testing.FaultPlan` values, so shrinking yields minimal
fault schedules when a recovery property fails.
"""

from __future__ import annotations

from typing import Sequence

from hypothesis import strategies as st

from repro.testing.faults import FAULT_KINDS, Fault, FaultPlan

#: Work-unit coordinates: (dataset, error_type, repetition).
UnitCoords = "tuple[str, str, int]"


def fault_kinds(kinds: Sequence[str] = FAULT_KINDS) -> st.SearchStrategy[str]:
    """One of the injectable fault kinds."""
    return st.sampled_from(tuple(kinds))


def faults(
    units: Sequence[tuple[str, str, int]],
    kinds: Sequence[str] = FAULT_KINDS,
    max_at: int = 2,
    max_attempts: int = 3,
) -> st.SearchStrategy[Fault]:
    """A single fault aimed at one of the given work units."""
    if not units:
        raise ValueError("units must not be empty")

    def build(unit: tuple[str, str, int], kind: str, at: int, attempts: int):
        dataset, error_type, repetition = unit
        return Fault(
            kind=kind,
            dataset=dataset,
            error_type=error_type,
            repetition=repetition,
            at=at,
            attempts=attempts,
        )

    return st.builds(
        build,
        unit=st.sampled_from(tuple(units)),
        kind=fault_kinds(kinds),
        at=st.integers(min_value=0, max_value=max_at),
        attempts=st.integers(min_value=1, max_value=max_attempts),
    )


def fault_plans(
    units: Sequence[tuple[str, str, int]],
    kinds: Sequence[str] = FAULT_KINDS,
    max_faults: int = 3,
    max_at: int = 2,
    max_attempts: int = 3,
) -> st.SearchStrategy[FaultPlan]:
    """A plan of up to ``max_faults`` faults over the given units.

    Duplicate (kind, unit, at) combinations are deduplicated so every
    generated fault is observable.
    """
    return st.lists(
        faults(units, kinds=kinds, max_at=max_at, max_attempts=max_attempts),
        max_size=max_faults,
        unique_by=lambda fault: (fault.kind, fault.unit, fault.at),
    ).map(lambda fs: FaultPlan(faults=tuple(fs)))
