"""Hypothesis strategies for fault plans and parent→child row deltas.

The fault strategies drive the randomized chaos sweeps (``pytest -m
slow``); the delta strategies drive the incremental-reuse identity
properties (``tests/identity``), generating aligned parent/child table
pairs whose differences model the study's cleaning operations — label
flips, imputations of missing cells, outlier clamps — together with
the ground-truth set of edited cells, so each reuse path can be
property-tested in isolation against its cold counterpart. All
strategies produce plain values, so shrinking yields minimal failing
schedules/deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from hypothesis import strategies as st

from repro.tabular import Table
from repro.testing.faults import FAULT_KINDS, Fault, FaultPlan

#: Work-unit coordinates: (dataset, error_type, repetition).
UnitCoords = "tuple[str, str, int]"


def fault_kinds(kinds: Sequence[str] = FAULT_KINDS) -> st.SearchStrategy[str]:
    """One of the injectable fault kinds."""
    return st.sampled_from(tuple(kinds))


def faults(
    units: Sequence[tuple[str, str, int]],
    kinds: Sequence[str] = FAULT_KINDS,
    max_at: int = 2,
    max_attempts: int = 3,
) -> st.SearchStrategy[Fault]:
    """A single fault aimed at one of the given work units."""
    if not units:
        raise ValueError("units must not be empty")

    def build(unit: tuple[str, str, int], kind: str, at: int, attempts: int):
        dataset, error_type, repetition = unit
        return Fault(
            kind=kind,
            dataset=dataset,
            error_type=error_type,
            repetition=repetition,
            at=at,
            attempts=attempts,
        )

    return st.builds(
        build,
        unit=st.sampled_from(tuple(units)),
        kind=fault_kinds(kinds),
        at=st.integers(min_value=0, max_value=max_at),
        attempts=st.integers(min_value=1, max_value=max_attempts),
    )


def fault_plans(
    units: Sequence[tuple[str, str, int]],
    kinds: Sequence[str] = FAULT_KINDS,
    max_faults: int = 3,
    max_at: int = 2,
    max_attempts: int = 3,
) -> st.SearchStrategy[FaultPlan]:
    """A plan of up to ``max_faults`` faults over the given units.

    Duplicate (kind, unit, at) combinations are deduplicated so every
    generated fault is observable.
    """
    return st.lists(
        faults(units, kinds=kinds, max_at=max_at, max_attempts=max_attempts),
        max_size=max_faults,
        unique_by=lambda fault: (fault.kind, fault.unit, fault.at),
    ).map(lambda fs: FaultPlan(faults=tuple(fs)))


# -- parent -> child row deltas -------------------------------------------

#: Categories drawn for generated categorical columns.
DELTA_CATEGORIES: tuple[str, ...] = ("alpha", "beta", "gamma", "delta")

#: Value grid for generated numeric columns. A small fixed grid keeps
#: float equality exact, so the scalar oracle below is unambiguous.
_NUMERIC_GRID: tuple[float, ...] = (-12.5, -3.0, -1.0, 0.0, 0.5, 2.0, 7.25, 40.0)

#: Clamp window applied by the "clamp" edit kind (an outlier repair).
_CLAMP_LO, _CLAMP_HI = -2.0, 2.0

#: Fill values applied by the "impute" edit kind.
_NUMERIC_FILL, _CATEGORICAL_FILL = 0.5, "alpha"

#: Edit kinds modelling the study's cleaning operations.
DELTA_EDIT_KINDS: tuple[str, ...] = ("flip", "impute", "clamp")


@dataclass(frozen=True)
class DeltaCase:
    """An aligned parent->child table pair with ground-truth edits.

    ``changed_cells`` is computed by a naive scalar oracle over the
    final column arrays (NaN==NaN and None==None count as unchanged),
    so colliding edits that happen to restore a parent value are not
    miscounted.
    """

    parent: Table
    child: Table
    changed_cells: tuple[tuple[int, str], ...]

    @property
    def changed_rows(self) -> tuple[int, ...]:
        return tuple(sorted({row for row, _ in self.changed_cells}))

    @property
    def changed_columns(self) -> tuple[str, ...]:
        names = {name for _, name in self.changed_cells}
        return tuple(name for name in self.parent.column_names if name in names)


@dataclass(frozen=True)
class VersionCase:
    """A train/test/label triple of parent->child pairs on one schema."""

    train: DeltaCase
    test: DeltaCase
    parent_labels: np.ndarray
    child_labels: np.ndarray

    @property
    def label_rows(self) -> tuple[int, ...]:
        return tuple(np.nonzero(self.parent_labels != self.child_labels)[0])


def _cell_changed(kind: str, a: object, b: object) -> bool:
    """Scalar oracle mirroring the delta semantics one cell at a time."""
    if kind == "numeric":
        if np.isnan(a) and np.isnan(b):  # type: ignore[arg-type]
            return False
        return a != b
    return a != b


def _draw_schema(draw) -> list[tuple[str, str]]:
    n_numeric = draw(st.integers(min_value=1, max_value=3))
    n_categorical = draw(st.integers(min_value=1, max_value=3))
    schema = [(f"num_{i}", "numeric") for i in range(n_numeric)]
    schema += [(f"cat_{i}", "categorical") for i in range(n_categorical)]
    return schema


def _draw_columns(draw, schema, n_rows: int, allow_missing: bool):
    columns: dict[str, np.ndarray] = {}
    for name, kind in schema:
        if kind == "numeric":
            values = draw(
                st.lists(
                    st.sampled_from(_NUMERIC_GRID), min_size=n_rows, max_size=n_rows
                )
            )
            array = np.array(values, dtype=np.float64)
            if allow_missing:
                holes = draw(
                    st.lists(
                        st.integers(min_value=0, max_value=n_rows - 1),
                        max_size=3,
                        unique=True,
                    )
                )
                array[holes] = np.nan
        else:
            pool = DELTA_CATEGORIES + ((None,) if allow_missing else ())
            values = draw(
                st.lists(st.sampled_from(pool), min_size=n_rows, max_size=n_rows)
            )
            array = np.array(values, dtype=object)
        columns[name] = array
    return columns


def _apply_edit(draw, kind: str, schema, columns, n_rows: int) -> None:
    row = draw(st.integers(min_value=0, max_value=n_rows - 1))
    if kind == "flip":
        name = draw(
            st.sampled_from([n for n, k in schema if k == "categorical"])
        )
        current = columns[name][row]
        replacement = draw(
            st.sampled_from([c for c in DELTA_CATEGORIES if c != current])
        )
        columns[name][row] = replacement
    elif kind == "clamp":
        name = draw(st.sampled_from([n for n, k in schema if k == "numeric"]))
        value = columns[name][row]
        if not np.isnan(value):
            columns[name][row] = min(max(value, _CLAMP_LO), _CLAMP_HI)
    else:  # impute: fills only cells that are actually missing
        name, col_kind = draw(st.sampled_from(schema))
        value = columns[name][row]
        if col_kind == "numeric":
            if np.isnan(value):
                columns[name][row] = _NUMERIC_FILL
        elif value is None:
            columns[name][row] = _CATEGORICAL_FILL


def _draw_pair(
    draw,
    schema,
    min_rows: int,
    max_rows: int,
    allow_missing: bool,
    edit_kinds: Sequence[str],
    max_edits: int,
) -> DeltaCase:
    n_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    parent_columns = _draw_columns(draw, schema, n_rows, allow_missing)
    child_columns = {name: array.copy() for name, array in parent_columns.items()}
    n_edits = draw(st.integers(min_value=0, max_value=max_edits))
    for _ in range(n_edits):
        kind = draw(st.sampled_from(tuple(edit_kinds)))
        _apply_edit(draw, kind, schema, child_columns, n_rows)
    changed = tuple(
        (row, name)
        for name, kind in schema
        for row in range(n_rows)
        if _cell_changed(kind, parent_columns[name][row], child_columns[name][row])
    )
    return DeltaCase(
        parent=Table.from_columns(parent_columns),
        child=Table.from_columns(child_columns),
        changed_cells=changed,
    )


@st.composite
def delta_cases(
    draw,
    min_rows: int = 6,
    max_rows: int = 24,
    allow_missing: bool = True,
    edit_kinds: Sequence[str] = DELTA_EDIT_KINDS,
    max_edits: int = 8,
) -> DeltaCase:
    """An aligned parent->child table pair with known changed cells."""
    schema = _draw_schema(draw)
    return _draw_pair(
        draw, schema, min_rows, max_rows, allow_missing, edit_kinds, max_edits
    )


@st.composite
def version_cases(
    draw,
    allow_missing: bool = False,
    edit_kinds: Sequence[str] = ("flip", "clamp"),
    max_edits: int = 6,
    max_label_flips: int = 3,
) -> VersionCase:
    """Train/test parent->child pairs sharing a schema, plus labels.

    Defaults generate NaN-free numeric columns so both versions
    featurise on the cold path too (the featuriser raises on NaN).
    """
    schema = _draw_schema(draw)
    train = _draw_pair(draw, schema, 8, 24, allow_missing, edit_kinds, max_edits)
    test = _draw_pair(draw, schema, 4, 12, allow_missing, edit_kinds, max_edits)
    n_rows = train.parent.n_rows
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=1), min_size=n_rows, max_size=n_rows
        )
    )
    parent_labels = np.array(labels, dtype=np.int64)
    child_labels = parent_labels.copy()
    flips = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_rows - 1),
            max_size=max_label_flips,
            unique=True,
        )
    )
    for row in flips:
        child_labels[row] = 1 - child_labels[row]
    return VersionCase(
        train=train,
        test=test,
        parent_labels=parent_labels,
        child_labels=child_labels,
    )
