"""Deterministic fault injection for the parallel study executor.

The chaos-testing contract: every fault is scheduled by **work-unit
coordinates** — ``(dataset, error_type, repetition)``, a cell index or
an append ordinal, and an attempt window — never by wall-clock time or
global RNG state. Running the same :class:`FaultPlan` against the same
study twice injects exactly the same faults at exactly the same
points, which is what lets the chaos suite assert *byte-identical*
recovery against a serial baseline.

Fault kinds (:data:`FAULT_KINDS`):

- ``crash_pre_append`` — the worker dies after computing a record but
  *before* appending it to its journal shard (the record is lost and
  must be recomputed on retry).
- ``crash_post_append`` — the worker dies immediately *after* the
  append (the record survives in the shard; the executor must recover
  it from the journal instead of recomputing it).
- ``truncate_journal`` — a torn write: the freshly appended journal
  line is truncated mid-byte and the worker dies (replay must skip the
  partial line; the record is recomputed).
- ``transient_error`` — a cell raises on its first ``attempts``
  attempts and then succeeds (exercises the retry path).
- ``slow_cell`` — a cell sleeps past the executor's ``cell_timeout``
  (exercises the watchdog / poison path).

The executor is agnostic of these kinds: it only calls
:meth:`FaultPlan.unit_injector` and the returned injector's
``on_cell`` / ``before_append`` / ``after_append`` hooks.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro import obs

FAULT_KINDS = (
    "crash_pre_append",
    "crash_post_append",
    "truncate_journal",
    "transient_error",
    "slow_cell",
)

#: Fault kinds triggered around a journal append (``at`` is the append
#: ordinal within the unit); the rest trigger at a cell boundary
#: (``at`` is the cell index).
APPEND_FAULT_KINDS = frozenset(
    {"crash_pre_append", "crash_post_append", "truncate_journal"}
)


class SimulatedWorkerCrash(RuntimeError):
    """Stand-in for a worker process dying at an injected point."""


class TransientCellError(RuntimeError):
    """An injected once-off (or N-off) cell failure."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault, keyed by work-unit coordinates.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        dataset: Target unit's dataset name.
        error_type: Target unit's error type.
        repetition: Target unit's repetition index.
        at: Cell index (cell-boundary kinds) or append ordinal
            (append kinds) within the unit at which the fault fires.
        attempts: The fault fires while the unit's attempt number is
            below this (1 = first attempt only, so a retry succeeds;
            a large value poisons the unit).
    """

    kind: str
    dataset: str
    error_type: str
    repetition: int
    at: int = 0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    @property
    def unit(self) -> tuple[str, str, int]:
        """The targeted work-unit coordinates."""
        return (self.dataset, self.error_type, self.repetition)


def truncate_tail(path, drop_fraction: float = 0.5) -> None:
    """Simulate a torn write: cut the final journal line mid-byte.

    Removes the trailing newline and the trailing ``drop_fraction`` of
    the last line's bytes, leaving a partial line that cannot decode as
    JSON — exactly what a worker killed inside ``write(2)`` leaves
    behind.
    """
    data = path.read_bytes()
    if not data:
        return
    body = data[:-1] if data.endswith(b"\n") else data
    head, _, last = body.rpartition(b"\n")
    prefix = head + b"\n" if head or body.startswith(b"\n") else b""
    keep = max(1, int(len(last) * (1.0 - drop_fraction)))
    if keep >= len(last):
        keep = max(1, len(last) - 1)
    with path.open("wb") as handle:
        handle.write(prefix + last[:keep])
        handle.flush()
        os.fsync(handle.fileno())


class UnitInjector:
    """Applies one unit's scheduled faults inside a worker attempt.

    Created fresh per ``(unit, attempt)`` by
    :meth:`FaultPlan.unit_injector`; stateful only in the append
    counter. The executor calls :meth:`on_cell` at each cell boundary
    (inside the cell-timeout watchdog, so an injected sleep is
    interruptible) and :meth:`before_append` / :meth:`after_append`
    around each journal write.
    """

    def __init__(
        self,
        faults: Sequence[Fault],
        attempt: int,
        cell_timeout: float | None = None,
        slow_factor: float = 4.0,
    ) -> None:
        self._faults = tuple(faults)
        self._attempt = attempt
        self._cell_timeout = cell_timeout
        self._slow_factor = slow_factor
        self._appends = 0

    def _active(self, kind: str, at: int) -> Fault | None:
        for fault in self._faults:
            if (
                fault.kind == kind
                and fault.at == at
                and self._attempt < fault.attempts
            ):
                return fault
        return None

    def _fired(self, fault: Fault, at: int) -> None:
        """Emit the firing as a trace event (no-op without tracing).

        Chaos tests assert on *observed* fault counts through these
        events instead of trusting the schedule; the worker's trace
        scope flushes on unwind, so an injected crash cannot lose the
        event that reported it.
        """
        obs.event(
            "fault_injected",
            fault=fault.kind,
            dataset=fault.dataset,
            error_type=fault.error_type,
            repetition=fault.repetition,
            at=at,
            attempt=self._attempt,
        )

    def on_cell(self, index: int, model: str, seed: int) -> None:
        """Cell-boundary hook: may raise or sleep past the deadline."""
        fault = self._active("transient_error", index)
        if fault is not None:
            self._fired(fault, index)
            raise TransientCellError(
                f"injected transient error in cell {index} ({model}/seed{seed})"
            )
        fault = self._active("slow_cell", index)
        if fault is not None:
            self._fired(fault, index)
            if self._cell_timeout is not None:
                time.sleep(self._cell_timeout * self._slow_factor)
            else:
                time.sleep(0.05)

    def before_append(self, key: str, journal: Any) -> None:
        """Pre-append crash window."""
        ordinal = self._appends
        self._appends += 1
        fault = self._active("crash_pre_append", ordinal)
        if fault is not None:
            self._fired(fault, ordinal)
            raise SimulatedWorkerCrash(
                f"injected crash before journal append {ordinal} ({key})"
            )

    def after_append(self, key: str, journal: Any) -> None:
        """Post-append crash window (including the torn-write variant)."""
        ordinal = self._appends - 1
        fault = self._active("truncate_journal", ordinal)
        if fault is not None:
            self._fired(fault, ordinal)
            if journal is not None:
                journal.close()
                truncate_tail(journal.path)
            raise SimulatedWorkerCrash(
                f"injected torn write at journal append {ordinal} ({key})"
            )
        fault = self._active("crash_post_append", ordinal)
        if fault is not None:
            self._fired(fault, ordinal)
            raise SimulatedWorkerCrash(
                f"injected crash after journal append {ordinal} ({key})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, coordinate-keyed schedule of faults for one study.

    Satisfies the ``fault_plan`` protocol of
    :class:`repro.benchmark.ExecutorOptions`. Plans are immutable,
    picklable (they cross the fork boundary into pool workers) and
    purely declarative: all scheduling state lives in the per-attempt
    :class:`UnitInjector`.

    Attributes:
        faults: The scheduled faults.
        seed: Identifying seed (used by :meth:`scheduled` and recorded
            for reproducibility).
        slow_factor: Multiple of the executor's cell timeout a
            ``slow_cell`` fault sleeps for.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0
    slow_factor: float = 4.0

    def faults_for(
        self, dataset: str, error_type: str, repetition: int
    ) -> tuple[Fault, ...]:
        """All faults scheduled for one work unit (any attempt)."""
        unit = (dataset, error_type, repetition)
        return tuple(fault for fault in self.faults if fault.unit == unit)

    def unit_injector(
        self,
        dataset: str,
        error_type: str,
        repetition: int,
        attempt: int = 0,
        cell_timeout: float | None = None,
    ) -> UnitInjector | None:
        """Injector for one unit attempt (None when nothing scheduled)."""
        faults = self.faults_for(dataset, error_type, repetition)
        if not faults:
            return None
        return UnitInjector(
            faults,
            attempt=attempt,
            cell_timeout=cell_timeout,
            slow_factor=self.slow_factor,
        )

    @classmethod
    def scheduled(
        cls,
        seed: int,
        units: Iterable[tuple[str, str, int]],
        kinds: Sequence[str] = FAULT_KINDS,
        rate: float = 0.5,
        max_at: int = 1,
        attempts: int = 1,
        slow_factor: float = 4.0,
    ) -> "FaultPlan":
        """A pseudo-random plan derived purely from ``seed`` and coords.

        For each unit a CRC-32 hash of ``(seed, coordinates)`` decides
        whether a fault fires (probability ``rate``), which ``kind``
        it is and at which cell/append ordinal (``0..max_at``) — no
        global RNG, no wall clock, so the schedule is reproducible
        from the seed alone.
        """
        if not kinds:
            raise ValueError("kinds must not be empty")
        faults = []
        for dataset, error_type, repetition in units:
            digest = zlib.crc32(
                f"{seed}|{dataset}|{error_type}|{repetition}".encode("utf-8")
            )
            if (digest & 0xFFFF) / 0x10000 >= rate:
                continue
            kind = kinds[(digest >> 16) % len(kinds)]
            faults.append(
                Fault(
                    kind=kind,
                    dataset=dataset,
                    error_type=error_type,
                    repetition=repetition,
                    at=(digest >> 24) % (max_at + 1),
                    attempts=attempts,
                )
            )
        return cls(faults=tuple(faults), seed=seed, slow_factor=slow_factor)
