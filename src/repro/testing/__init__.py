"""Deterministic fault-injection and chaos-testing subsystem.

Everything needed to *prove* the parallel study executor's
crash-safety story instead of trusting it:

- :class:`Fault` / :class:`FaultPlan` — a seeded schedule of faults
  keyed by work-unit coordinates (never wall-clock), covering worker
  crashes before/after a journal append, torn journal writes,
  transient cell exceptions and hung cells.
- :class:`FaultyExecutor` — runs the real parallel executor under a
  plan, with retries, per-cell timeouts and simulated parent kills.
- :func:`repro.testing.fixtures.chaos_study` — a pytest fixture
  driving a tiny real study to byte-identical recovery, and
  :mod:`repro.testing.strategies` — hypothesis strategies over plans.

The production executor never imports this package; it only calls the
``fault_plan`` protocol when a test hands it one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark import ExecutorOptions, ResultStore, run_parallel_study
from repro.testing.regressions import inject_fairness_regression
from repro.testing.faults import (
    APPEND_FAULT_KINDS,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    SimulatedWorkerCrash,
    TransientCellError,
    UnitInjector,
    truncate_tail,
)


@dataclass(frozen=True)
class FaultyExecutor:
    """Runs the real parallel executor under a fault plan.

    A thin, declarative front for the chaos tests::

        executor = FaultyExecutor(plan, max_retries=2)
        executor.run(config, store, workers=2, datasets=("german",))

    Uses zero backoff by default so injected retries don't sleep.
    """

    plan: FaultPlan | None = None
    max_retries: int = 2
    cell_timeout: float | None = None
    fsync_journal: bool = False
    abort_after_units: int | None = None
    backoff_base: float = 0.0
    trace: bool = False

    def options(self) -> ExecutorOptions:
        """The executor options this wrapper translates to."""
        return ExecutorOptions(
            max_retries=self.max_retries,
            cell_timeout=self.cell_timeout,
            fsync_journal=self.fsync_journal,
            backoff_base=self.backoff_base,
            fault_plan=self.plan,
            abort_after_units=self.abort_after_units,
            trace=self.trace,
        )

    def run(self, config, store: ResultStore, **kwargs) -> int:
        """Run all pending cells under the plan; returns records added."""
        return run_parallel_study(config, store, options=self.options(), **kwargs)


__all__ = [
    "APPEND_FAULT_KINDS",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultyExecutor",
    "SimulatedWorkerCrash",
    "TransientCellError",
    "UnitInjector",
    "inject_fairness_regression",
    "truncate_tail",
]
