"""Seeded fairness-regression injection for the audit gate's tests.

:func:`inject_fairness_regression` copies a result store, rewriting
the repaired disadvantaged-group confusion counts of the targeted
configurations so the demographic-parity gap provably widens. The CI
fairness gate replays ``obs-audit --fail-on-fairness-regression``
against the sabotaged copy and must see a non-zero exit — a live
end-to-end proof that the gate actually fires.

The sabotage is direction-aware: whichever side of the selection-rate
gap the disadvantaged group sits on, predicted labels are flipped to
push it further from the privileged group's rate, so ``|DP|`` grows
regardless of which group the repair originally favoured. Counts move
between prediction outcomes only (tp→fn, fp→tn or tn→fp, fn→tp), so
group sizes and true labels stay intact.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.benchmark import ResultStore, RunRecord
from repro.fairness.confusion import (
    confusion_from_store_keys,
    group_key_fragments,
    group_keys_in_metrics,
)


def _sabotage(metrics: dict, technique: str, fraction: float) -> bool:
    """Widen the repaired DP gap of every group in one record's metrics.

    Returns True when at least one group's counts changed.
    """
    changed = False
    for group_key in group_keys_in_metrics(metrics, technique):
        priv_fragment, dis_fragment = group_key_fragments(group_key)
        priv = confusion_from_store_keys(metrics, technique, priv_fragment)
        dis = confusion_from_store_keys(metrics, technique, dis_fragment)
        if priv is None or dis is None:
            continue
        total = dis.tn + dis.fp + dis.fn + dis.tp
        if total == 0:
            continue
        dis_rate = (dis.tp + dis.fp) / total
        priv_total = priv.tn + priv.fp + priv.fn + priv.tp
        priv_rate = (priv.tp + priv.fp) / priv_total if priv_total else 0.0
        tn, fp, fn, tp = dis.tn, dis.fp, dis.fn, dis.tp
        if dis_rate <= priv_rate:
            # disadvantaged group already selected less often: flip
            # positives to negatives to push its rate further down
            moved_tp = math.ceil(fraction * tp)
            moved_fp = math.ceil(fraction * fp)
            tp, fn = tp - moved_tp, fn + moved_tp
            fp, tn = fp - moved_fp, tn + moved_fp
            moved = moved_tp + moved_fp
        else:
            # selected more often: flip negatives to positives
            moved_tn = math.ceil(fraction * tn)
            moved_fn = math.ceil(fraction * fn)
            tn, fp = tn - moved_tn, fp + moved_tn
            fn, tp = fn - moved_fn, tp + moved_fn
            moved = moved_tn + moved_fn
        if moved == 0:
            continue
        for cell, count in (("tn", tn), ("fp", fp), ("fn", fn), ("tp", tp)):
            metrics[f"{technique}__{dis_fragment}__{cell}"] = count
        changed = True
    return changed


def inject_fairness_regression(
    store_path: str | Path,
    output_path: str | Path,
    *,
    error_type: str = "mislabels",
    repair: str | None = None,
    fraction: float = 1.0,
) -> int:
    """Copy a store with a provable fairness regression injected.

    Rewrites the repaired disadvantaged-group counts of every record
    matching ``error_type`` (and ``repair``, when given) so the
    demographic-parity gap widens; all other records copy through
    byte-for-byte. Writes the sabotaged store to ``output_path`` and
    returns the number of records changed; raises :class:`ValueError`
    when nothing matched (a gate test asserting on an un-sabotaged
    copy would silently pass).

    ``fraction`` scales how many predictions flip per group. Keep the
    default 1.0 for small gate stores: the audit's G² evidence gate
    needs a divergence that tiny test sets only reach when every
    prediction on the wrong side moves.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    source = ResultStore(store_path)
    output = ResultStore(output_path)
    sabotaged = 0
    for record in source.iter_records():
        metrics = dict(record.metrics)
        if record.error_type == error_type and (
            repair is None or record.repair == repair
        ):
            if _sabotage(metrics, record.repair, fraction):
                sabotaged += 1
        output.add(
            RunRecord(
                dataset=record.dataset,
                error_type=record.error_type,
                detection=record.detection,
                repair=record.repair,
                model=record.model,
                repetition=record.repetition,
                tuning_seed=record.tuning_seed,
                metrics=metrics,
            )
        )
    if sabotaged == 0:
        raise ValueError(
            f"no records matched error_type={error_type!r} repair={repair!r} "
            f"in {store_path}; nothing to sabotage"
        )
    output.save()
    return sabotaged
