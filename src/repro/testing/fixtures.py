"""The ``chaos_study`` pytest fixture and its driver class.

A :class:`ChaosStudy` wires a tiny-but-real study (german / mislabels
by default: every cell trains and evaluates actual models) to the
fault-injection machinery, and provides the one assertion the chaos
suite is built around: a study executed under faults — killed, retried
and resumed — must converge to a result store **byte-identical** to
the serial baseline, with :meth:`repro.benchmark.ResultStore.verify`
reporting zero integrity violations.

Serial baselines are memoized per configuration at module level, so a
suite full of fault scenarios pays for each baseline once.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import pytest

from repro.benchmark import (
    ExecutorOptions,
    ExperimentRunner,
    ResultStore,
    StudyConfig,
    run_parallel_study,
)
from repro.testing.faults import FaultPlan


def chaos_config(**overrides) -> StudyConfig:
    """The chaos suite's default tiny-but-real study configuration."""
    defaults = dict(
        n_sample=300,
        n_repetitions=2,
        models=("log_reg",),
        dataset_sizes={"german": 600},
    )
    defaults.update(overrides)
    return StudyConfig(**defaults)


def store_fingerprint(path: Path) -> dict[str, bytes]:
    """Full on-disk identity of a sharded store.

    Maps the manifest file name and every shard file (relative to the
    store directory) to its exact bytes. Two stores with equal
    fingerprints are bit-for-bit interchangeable — the strongest form
    of the byte-identity guarantee, covering the compressed shard
    payloads and not just the manifest that checksums them.
    """
    fingerprint = {"<manifest>": path.read_bytes()}
    store_dir = path.parent / f"{path.stem}.store"
    if store_dir.exists():
        for shard in sorted(store_dir.glob("*.jsonl.gz")):
            fingerprint[shard.name] = shard.read_bytes()
    return fingerprint


#: Serial baseline fingerprints memoized by (config, datasets, error_types).
_BASELINE_CACHE: dict[tuple, dict[str, bytes]] = {}


def serial_baseline_fingerprint(
    config: StudyConfig,
    datasets: Sequence[str],
    error_types: Sequence[str],
    workdir: Path,
) -> dict[str, bytes]:
    """Fingerprint of a serially-executed, compacted study store."""
    key = (
        repr(config),
        tuple(datasets),
        tuple(error_types),
    )
    if key not in _BASELINE_CACHE:
        path = workdir / "serial-baseline.json"
        store = ResultStore(path)
        runner = ExperimentRunner(config, store)
        for error_type in error_types:
            for dataset in datasets:
                runner.run_dataset_error(dataset, error_type)
        store.save()
        _BASELINE_CACHE[key] = store_fingerprint(path)
    return _BASELINE_CACHE[key]


class ChaosStudy:
    """Drives one study under fault injection and checks convergence.

    Attributes:
        config: Study configuration shared by baseline and chaos runs.
        datasets / error_types: The study slice under test.
        store_path: The chaos run's store file inside the test's tmp
            directory.
    """

    def __init__(
        self,
        root: Path,
        config: StudyConfig | None = None,
        datasets: Sequence[str] = ("german",),
        error_types: Sequence[str] = ("mislabels",),
    ) -> None:
        self.root = root
        self.config = config or chaos_config()
        self.datasets = tuple(datasets)
        self.error_types = tuple(error_types)
        self.store_path = root / "chaos-study.json"

    @property
    def unit_coords(self) -> list[tuple[str, str, int]]:
        """Every (dataset, error_type, repetition) unit of the study."""
        return [
            (dataset, error_type, repetition)
            for dataset in self.datasets
            for error_type in self.error_types
            for repetition in range(self.config.n_repetitions)
        ]

    def baseline(self) -> dict[str, bytes]:
        """Fingerprint of the serial reference store (memoized per config)."""
        return serial_baseline_fingerprint(
            self.config, self.datasets, self.error_types, self.root
        )

    def run(
        self,
        plan: FaultPlan | None = None,
        workers: int = 2,
        max_retries: int = 2,
        cell_timeout: float | None = None,
        fsync_journal: bool = False,
        abort_after_units: int | None = None,
        save: bool = True,
        trace: bool = False,
        backend: str = "process",
        transport: str = "auto",
    ) -> int:
        """One executor pass over the (possibly partially done) study.

        Uses zero backoff so retries don't slow the suite down; all
        other fault-tolerance behaviour is the production code path.
        ``trace`` turns on structured tracing, so tests can assert on
        observed fault/retry events. ``backend``/``transport`` select
        the execution backend and dataset transport under test.
        Returns the number of records added.
        """
        options = ExecutorOptions(
            backend=backend,
            transport=transport,
            max_retries=max_retries,
            cell_timeout=cell_timeout,
            fsync_journal=fsync_journal,
            backoff_base=0.0,
            fault_plan=plan,
            abort_after_units=abort_after_units,
            trace=trace,
        )
        store = ResultStore(self.store_path)
        return run_parallel_study(
            self.config,
            store,
            workers=workers,
            datasets=self.datasets,
            error_types=self.error_types,
            options=options,
            save=save,
        )

    def resume(self, workers: int = 2, max_retries: int = 2) -> int:
        """A fault-free pass completing whatever the last run left."""
        return self.run(plan=None, workers=workers, max_retries=max_retries)

    def store(self) -> ResultStore:
        """The chaos store, freshly loaded from disk."""
        return ResultStore(self.store_path)

    def assert_converged(self) -> None:
        """The headline chaos assertion.

        The chaos store — manifest *and* every compressed shard — must
        be byte-identical to the serial baseline, report zero
        integrity violations, and leave no journal shards or failure
        sidecars behind.
        """
        assert self.store_path.exists(), "chaos store was never saved"
        assert store_fingerprint(self.store_path) == self.baseline(), (
            "chaos store diverged from the serial baseline"
        )
        store = self.store()
        violations = store.verify()
        assert violations == [], f"integrity violations: {violations}"
        assert store.journal_paths() == [], "journal shards were not compacted"
        failures = store.failures_path
        assert failures is not None and not failures.exists(), (
            "failures sidecar left behind"
        )


@pytest.fixture
def chaos_study(tmp_path) -> ChaosStudy:
    """A tiny real study wired for deterministic fault injection."""
    return ChaosStudy(tmp_path)
