"""repro — reproduction of "Automated Data Cleaning Can Hurt Fairness
in Machine Learning-based Decision Making" (Guha et al., ICDE 2023).

The package rebuilds the paper's full experimental apparatus from
scratch on numpy/scipy:

- :mod:`repro.tabular` — columnar table substrate,
- :mod:`repro.ml` — classifiers, preprocessing, model selection,
- :mod:`repro.cleaning` — error detection and automated repair,
- :mod:`repro.fairness` — protected groups and fairness metrics,
- :mod:`repro.stats` — G² test and paired-t-test impact protocol,
- :mod:`repro.datasets` — the five benchmark datasets (synthetic),
- :mod:`repro.benchmark` — the experimentation framework (Fig. 3),
- :mod:`repro.obs` — structured tracing, metrics and run health,
- :mod:`repro.reporting` — paper-style table/figure renderers.

Quickstart::

    from repro import StudyConfig, ResultStore, ExperimentRunner, ImpactAnalysis

    store = ResultStore("results.json")
    runner = ExperimentRunner(StudyConfig.laptop_scale(), store)
    runner.run_dataset_error("german", "missing_values")
    analysis = ImpactAnalysis(store)
    matrix = analysis.matrix("missing_values", "PP", intersectional=False)
"""

from repro import obs
from repro.benchmark import (
    DeepDive,
    DisparityAnalysis,
    ExperimentRunner,
    FairnessAwareSelector,
    ImpactAnalysis,
    ResultStore,
    StudyConfig,
)
from repro.datasets import DATASET_NAMES, dataset_definition, load_dataset

__version__ = "1.0.0"

__all__ = [
    "StudyConfig",
    "ResultStore",
    "ExperimentRunner",
    "ImpactAnalysis",
    "DisparityAnalysis",
    "DeepDive",
    "FairnessAwareSelector",
    "DATASET_NAMES",
    "dataset_definition",
    "load_dataset",
    "obs",
    "__version__",
]
