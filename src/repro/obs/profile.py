"""Opt-in memory telemetry at span boundaries.

Tracing timings is nearly free; tracing *memory* is not —
``tracemalloc`` instruments every allocation while started, typically
costing tens of percent of wall clock. Memory profiling is therefore a
separate opt-in (``python -m repro study --trace --profile-memory``)
layered on top of the tracer via the span hooks in
:mod:`repro.obs.trace`:

- On entry to a **hot-path span** (:data:`HOT_SPANS`: the runner's
  ``unit`` / ``cell`` / ``featurize`` sections) the current traced
  allocation size is sampled.
- On exit the span gains ``mem_delta_bytes`` (net Python allocations
  across the span, via ``tracemalloc``) and ``rss_bytes`` (the
  process's resident set at span end) attributes, and an
  ``rss_bytes`` gauge labelled by worker track is updated — gauges
  merge by *max* at compaction (:mod:`repro.obs.metrics`), so the
  compacted trace reports each worker's peak observed RSS.

Spans outside the hot set pay one frozenset membership test; with
profiling disabled, spans pay one global ``is None`` check; with
tracing disabled nothing here runs at all. Study records are
byte-identical with profiling on or off — telemetry only ever lands in
the trace sidecars.

RSS is read from ``/proc/self/statm`` where available (Linux);
elsewhere it falls back to ``resource.getrusage`` peak RSS, which is
monotone rather than current — still a usable leak signal.
"""

from __future__ import annotations

import os
import tracemalloc
from contextlib import contextmanager
from typing import Iterator

from repro.obs import trace as _trace

#: Span names sampled by the memory profiler — the hot paths of the
#: study runner, where a leak or a blow-up would live.
HOT_SPANS = frozenset({"unit", "cell", "featurize"})

#: Currently profiled span names (None = profiling off).
_PROFILED_SPANS: frozenset[str] | None = None

#: Whether *we* started tracemalloc (and therefore must stop it).
_STARTED_TRACEMALLOC = False

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Reads ``/proc/self/statm`` (Linux); falls back to the
    ``resource`` module's peak RSS elsewhere (0 when even that is
    unavailable).
    """
    try:
        with open("/proc/self/statm", "r") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS
        return usage * 1024 if os.uname().sysname != "Darwin" else usage
    except Exception:
        return 0


def memory_profiling_enabled() -> bool:
    """Whether the span memory hooks are currently installed."""
    return _PROFILED_SPANS is not None


def _on_enter(span: "_trace.Span") -> None:
    if _PROFILED_SPANS is not None and span.name in _PROFILED_SPANS:
        span._mem = tracemalloc.get_traced_memory()[0]


def _on_exit(span: "_trace.Span") -> None:
    if span._mem is None:
        return
    current = tracemalloc.get_traced_memory()[0]
    rss = rss_bytes()
    span.set(mem_delta_bytes=current - span._mem, rss_bytes=rss)
    span._mem = None
    tracer = _trace.get_tracer()
    if tracer.enabled:
        tracer.metrics.gauge("rss_bytes", rss, worker=_trace.track_id())


def enable_memory_profiling(spans: frozenset[str] = HOT_SPANS) -> None:
    """Start sampling memory at the boundaries of ``spans``.

    Starts ``tracemalloc`` if it is not already running (and remembers
    to stop it again on :func:`disable_memory_profiling`). Idempotent.
    """
    global _PROFILED_SPANS, _STARTED_TRACEMALLOC
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _STARTED_TRACEMALLOC = True
    _PROFILED_SPANS = frozenset(spans)
    _trace.install_span_hooks(_on_enter, _on_exit)


def disable_memory_profiling() -> None:
    """Stop sampling and (if we started it) stop ``tracemalloc``."""
    global _PROFILED_SPANS, _STARTED_TRACEMALLOC
    _PROFILED_SPANS = None
    _trace.uninstall_span_hooks()
    if _STARTED_TRACEMALLOC and tracemalloc.is_tracing():
        tracemalloc.stop()
    _STARTED_TRACEMALLOC = False


@contextmanager
def profile_memory(spans: frozenset[str] = HOT_SPANS) -> Iterator[None]:
    """Enable memory profiling for the duration of a block.

    The executor wraps each traced work unit (and the parent study
    scope) in this when :attr:`ExecutorOptions.profile_memory` is set;
    profiling state is process-global, like the tracer itself.
    """
    already = memory_profiling_enabled()
    if not already:
        enable_memory_profiling(spans)
    try:
        yield
    finally:
        if not already:
            disable_memory_profiling()
