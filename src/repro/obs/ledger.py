"""Append-only run ledger with pinned fairness baselines.

Every audited run appends one JSON line to ``{stem}.ledger.jsonl``
next to the result store::

    {"kind": "run", "run_id": ..., "ts": ..., "fingerprint": ...,
     "n_records": ..., "audit": {FairnessAudit.to_json()}}

The embedded audit summary makes a ledger entry self-contained: a
baseline comparison never needs the baseline run's store (or even its
machine). ``run_id`` is content-derived — the SHA-256 of the canonical
audit JSON plus the config fingerprint — so identical runs share an
id and a re-run that changed nothing is visibly the same run.

Pins are ledger lines too (``{"kind": "pin", "name": ...,
"run_id": ...}``), so the whole baseline history stays in one
append-only file that crash-recovers like every other sidecar. The
ledger is *not* a record journal: :meth:`ResultStore.journal_paths`
and the monitor's journal counter exclude it explicitly.

``python -m repro obs-baseline record|pin|list|export`` drives this
module; ``obs-audit --baseline <ref>`` resolves a ref here.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any

from repro.obs.audit import FairnessAudit, build_audit

LEDGER_SUFFIX = ".ledger.jsonl"


def ledger_path(store_path: str | Path) -> Path:
    """The ledger sidecar path for a store manifest path."""
    store_path = Path(store_path)
    return store_path.parent / f"{store_path.stem}{LEDGER_SUFFIX}"


def config_fingerprint(config: Any) -> str:
    """Short content hash of a study configuration.

    Uses ``repr`` — :class:`repro.benchmark.StudyConfig` is a frozen
    dataclass whose repr covers every field — so two runs compare
    "same config" without carrying the config object around.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def _canonical_audit_json(audit: FairnessAudit) -> str:
    return json.dumps(audit.to_json(), sort_keys=True, separators=(",", ":"))


def run_id_for(audit: FairnessAudit, fingerprint: str | None) -> str:
    """Content-derived run id: same audit + config → same id."""
    digest = hashlib.sha256()
    digest.update(_canonical_audit_json(audit).encode("utf-8"))
    digest.update((fingerprint or "").encode("utf-8"))
    return digest.hexdigest()[:12]


def read_ledger(path: str | Path) -> list[dict[str, Any]]:
    """Parse ledger lines, tolerantly (torn tails are skipped)."""
    path = Path(path)
    if not path.exists():
        return []
    entries: list[dict[str, Any]] = []
    with path.open("r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and "kind" in payload:
                entries.append(payload)
    return entries


def runs(path: str | Path) -> list[dict[str, Any]]:
    """All run entries, in append order."""
    return [entry for entry in read_ledger(path) if entry.get("kind") == "run"]


def pins(path: str | Path) -> dict[str, str]:
    """Pin name → run id (later pins override earlier ones)."""
    mapping: dict[str, str] = {}
    for entry in read_ledger(path):
        if entry.get("kind") == "pin" and "name" in entry:
            mapping[str(entry["name"])] = str(entry.get("run_id", ""))
    return mapping


def _append(path: Path, entry: dict[str, Any]) -> None:
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    with path.open("a") as handle:
        handle.write(line + "\n")


def record_run(
    store,
    config: Any | None = None,
    audit: FairnessAudit | None = None,
    now: float | None = None,
) -> dict[str, Any]:
    """Audit a store and append the run entry to its ledger.

    ``store`` must be path-backed (the ledger lives next to the
    manifest). Returns the appended entry.
    """
    if store.path is None:
        raise RuntimeError("cannot ledger an in-memory store (no path)")
    if audit is None:
        audit = build_audit(store)
    fingerprint = None if config is None else config_fingerprint(config)
    entry = {
        "kind": "run",
        "run_id": run_id_for(audit, fingerprint),
        "ts": time.time() if now is None else now,
        "fingerprint": fingerprint,
        "n_records": len(store),
        "audit": audit.to_json(),
    }
    _append(ledger_path(store.path), entry)
    return entry


def pin_baseline(
    store_path: str | Path,
    name: str,
    run_id: str | None = None,
    now: float | None = None,
) -> dict[str, Any]:
    """Pin a run (default: the latest) under a name.

    Raises :class:`LookupError` when the ledger has no runs or the
    given run id matches none.
    """
    path = ledger_path(store_path)
    known = runs(path)
    if not known:
        raise LookupError(f"no runs recorded in {path}")
    if run_id is None:
        run_id = str(known[-1]["run_id"])
    elif not any(str(entry["run_id"]).startswith(run_id) for entry in known):
        raise LookupError(f"no run {run_id!r} in {path}")
    entry = {
        "kind": "pin",
        "name": name,
        "run_id": run_id,
        "ts": time.time() if now is None else now,
    }
    _append(path, entry)
    return entry


def _audit_from_entry(entry: dict[str, Any]) -> FairnessAudit:
    return FairnessAudit.from_json(entry["audit"])


def _from_file(path: Path) -> FairnessAudit | None:
    """Load a baseline from an exported run file or a foreign ledger."""
    if path.suffix == ".jsonl" or path.name.endswith(LEDGER_SUFFIX):
        known = runs(path)
        return _audit_from_entry(known[-1]) if known else None
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if "audit" in payload:  # an exported run entry
        return FairnessAudit.from_json(payload["audit"])
    if "groups" in payload:  # a bare FairnessAudit
        return FairnessAudit.from_json(payload)
    return None


def resolve_baseline(
    store_path: str | Path, ref: str
) -> FairnessAudit | None:
    """Resolve a baseline reference to its audit.

    ``ref`` may be, in precedence order: a path to an exported
    baseline file (``obs-baseline export``) or another run's ledger;
    ``latest``; a pin name; or a run-id prefix — the latter three
    against this store's own ledger. Returns None when nothing
    matches.
    """
    as_path = Path(ref)
    if as_path.exists() and as_path.is_file():
        return _from_file(as_path)
    path = ledger_path(store_path)
    known = runs(path)
    if not known:
        return None
    if ref == "latest":
        return _audit_from_entry(known[-1])
    pinned = pins(path).get(ref)
    if pinned is not None:
        ref = pinned
    for entry in reversed(known):
        if str(entry["run_id"]).startswith(ref):
            return _audit_from_entry(entry)
    return None


def export_baseline(
    store_path: str | Path, output: str | Path, run_id: str | None = None
) -> dict[str, Any]:
    """Write one run entry (default: the latest) as a standalone JSON
    file — the committed-fixture format the CI fairness gate pins.

    ``run_id`` may be a pin name or a run-id prefix, matching the
    references :func:`resolve_baseline` accepts. Strips the wall-clock
    timestamp so the exported bytes are reproducible for identical
    runs.
    """
    path = ledger_path(store_path)
    known = runs(path)
    if not known:
        raise LookupError(f"no runs recorded in {path}")
    entry = known[-1]
    if run_id is not None:
        pinned = pins(path).get(run_id)
        if pinned is not None:
            run_id = pinned
        matches = [
            candidate
            for candidate in known
            if str(candidate["run_id"]).startswith(run_id)
        ]
        if not matches:
            raise LookupError(f"no run {run_id!r} in {path}")
        entry = matches[-1]
    exported = {key: value for key, value in entry.items() if key != "ts"}
    output = Path(output)
    output.write_text(json.dumps(exported, indent=2, sort_keys=True) + "\n")
    return exported
