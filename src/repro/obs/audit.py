"""Fairness audit: per-cell disparity payloads, run summaries, diffs.

The observability layer so far watched only systems health. This
module makes the study's *outcome* — per-group fairness — first-class
telemetry, in three pieces:

- :func:`cell_fairness` turns one evaluated cell's stored confusion
  counts into a compact ``{"acc": ..., "groups": {...}}`` payload. The
  runner emits exactly this as a ``fairness`` trace event per record
  (see :meth:`repro.benchmark.runner.ExperimentRunner._emit_fairness`),
  so live monitors and post-hoc reports read the same numbers.
- :func:`build_audit` folds a whole :class:`~repro.benchmark.ResultStore`
  into a :class:`FairnessAudit`: per (dataset, error_type, detection,
  repair, model, group) configuration, the mean dirty vs repaired
  |disparity| for each audited metric plus the summed confusion counts
  behind them. This is the run summary the ledger persists
  (:mod:`repro.obs.ledger`).
- :func:`diff_audits` compares a candidate audit against a (pinned)
  baseline with the same noise discipline as :mod:`repro.obs.diff` —
  a relative threshold AND an absolute gap floor must both clear —
  plus a G² evidence gate (:mod:`repro.stats.gtest`) over the summed
  group confusion counts, so a flagged fairness regression is backed
  by a genuinely changed outcome distribution, not float jitter.
  ``obs-audit --fail-on-fairness-regression`` turns the result into a
  CI exit code.

Repro-internal imports happen lazily inside functions: ``repro.obs``
initialises before ``repro.benchmark``/``repro.stats`` during package
import, so this module must not pull them at import time.

Audits contain no store bytes and live in sidecars/ledgers only — the
byte-identity discipline (store bytes equal with telemetry on or off)
is untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.rules import Alert, AlertRule, dedupe_alerts, evaluate_gaps

#: Metric abbreviations audited by default: demographic parity, equal
#: opportunity, equalized odds, predictive parity.
AUDIT_METRICS = ("DP", "EO", "EOdds", "PP")

#: Relative widening (vs the baseline gap) required to flag.
DEFAULT_THRESHOLD = 0.10

#: Absolute gap-widening floor (in disparity points) under which
#: changes count as noise.
DEFAULT_MIN_GAP = 0.02

#: Significance level for the G² evidence gate.
DEFAULT_ALPHA = 0.05


def _metric_registry() -> dict[str, Any]:
    from repro.fairness.metrics import ALL_FAIRNESS_METRICS

    return ALL_FAIRNESS_METRICS


def _clean(value: float) -> float | None:
    """NaN → None so payloads stay strict-JSON serialisable."""
    return None if value is None or math.isnan(value) else float(value)


def cell_fairness(
    metrics: Mapping[str, Any],
    repair: str,
    audit_metrics: Sequence[str] = AUDIT_METRICS,
) -> dict[str, Any] | None:
    """Per-group disparity payload for one evaluated cell.

    ``metrics`` is a :class:`~repro.benchmark.RunRecord`'s flat metric
    dict (CleanML-style confusion keys for the ``dirty`` baseline and
    the ``repair`` technique). Returns::

        {"acc": {"dirty": float | None, "repaired": float | None},
         "groups": {group_key: {metric: [dirty, repaired], ...}, ...}}

    where each gap is the *signed* disparity (privileged −
    disadvantaged) with NaN mapped to None. Returns None when the
    record stores no group counts for the repair (nothing to audit).
    """
    from repro.fairness.confusion import (
        confusion_from_store_keys,
        group_key_fragments,
        group_keys_in_metrics,
    )

    registry = _metric_registry()
    groups: dict[str, dict[str, list[float | None]]] = {}
    for group_key in group_keys_in_metrics(metrics, repair):
        priv_fragment, dis_fragment = group_key_fragments(group_key)
        pairs: dict[str, list[float | None]] = {}
        for technique_index, technique in enumerate(("dirty", repair)):
            privileged = confusion_from_store_keys(
                metrics, technique, priv_fragment
            )
            disadvantaged = confusion_from_store_keys(
                metrics, technique, dis_fragment
            )
            for name in audit_metrics:
                pair = pairs.setdefault(name, [None, None])
                if privileged is not None and disadvantaged is not None:
                    pair[technique_index] = _clean(
                        registry[name](privileged, disadvantaged)
                    )
        groups[group_key] = pairs
    if not groups:
        return None
    return {
        "acc": {
            "dirty": _clean(metrics.get("dirty_test_acc")),
            "repaired": _clean(metrics.get(f"{repair}_test_acc")),
        },
        "groups": groups,
    }


@dataclass(frozen=True)
class GroupAudit:
    """Aggregated fairness outcome of one configuration × group.

    Attributes:
        dataset / error_type / detection / repair / model / group:
            Configuration coordinates.
        n_runs: Records (repetition × tuning-seed cells) aggregated.
        dirty_acc / repaired_acc: Mean test accuracies.
        gaps: Per audited metric: ``[mean dirty |disparity|, mean
            repaired |disparity|]`` over the runs where the metric was
            defined (None when it never was).
        counts: Summed confusion counts ``[tn, fp, fn, tp]`` keyed
            ``dirty_priv`` / ``dirty_dis`` / ``repaired_priv`` /
            ``repaired_dis`` — the evidence substrate the audit diff's
            G² gate tests.
    """

    dataset: str
    error_type: str
    detection: str
    repair: str
    model: str
    group: str
    n_runs: int
    dirty_acc: float | None
    repaired_acc: float | None
    gaps: dict[str, list[float | None]]
    counts: dict[str, list[int]]

    @property
    def coordinate(self) -> str:
        """Stable ``dataset/error_type/detection/repair/model/group``."""
        return (
            f"{self.dataset}/{self.error_type}/{self.detection}"
            f"/{self.repair}/{self.model}/{self.group}"
        )

    def widening(self, metric: str) -> float | None:
        """Mean |repaired| − |dirty| gap for one metric (None if undefined)."""
        pair = self.gaps.get(metric)
        if pair is None or pair[0] is None or pair[1] is None:
            return None
        return pair[1] - pair[0]

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "dataset": self.dataset,
            "error_type": self.error_type,
            "detection": self.detection,
            "repair": self.repair,
            "model": self.model,
            "group": self.group,
            "n_runs": self.n_runs,
            "dirty_acc": self.dirty_acc,
            "repaired_acc": self.repaired_acc,
            "gaps": {name: list(pair) for name, pair in sorted(self.gaps.items())},
            "counts": {
                key: list(values) for key, values in sorted(self.counts.items())
            },
        }

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "GroupAudit":
        """Inverse of :meth:`to_json`."""
        return GroupAudit(
            dataset=payload["dataset"],
            error_type=payload["error_type"],
            detection=payload["detection"],
            repair=payload["repair"],
            model=payload["model"],
            group=payload["group"],
            n_runs=int(payload["n_runs"]),
            dirty_acc=payload.get("dirty_acc"),
            repaired_acc=payload.get("repaired_acc"),
            gaps={
                name: list(pair) for name, pair in payload.get("gaps", {}).items()
            },
            counts={
                key: [int(v) for v in values]
                for key, values in payload.get("counts", {}).items()
            },
        )


@dataclass
class FairnessAudit:
    """A run's fairness-impact summary: one :class:`GroupAudit` per
    configuration × group, sorted by coordinate."""

    groups: list[GroupAudit] = field(default_factory=list)
    metrics: tuple[str, ...] = AUDIT_METRICS
    n_records: int = 0

    def by_coordinate(self) -> dict[str, GroupAudit]:
        """Coordinate-indexed view."""
        return {entry.coordinate: entry for entry in self.groups}

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "metrics": list(self.metrics),
            "n_records": self.n_records,
            "groups": [entry.to_json() for entry in self.groups],
        }

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "FairnessAudit":
        """Inverse of :meth:`to_json`."""
        return FairnessAudit(
            groups=[GroupAudit.from_json(entry) for entry in payload["groups"]],
            metrics=tuple(payload.get("metrics", AUDIT_METRICS)),
            n_records=int(payload.get("n_records", 0)),
        )


class _Accumulator:
    __slots__ = ("n_runs", "acc", "gap_values", "counts")

    def __init__(self, metrics: Sequence[str]) -> None:
        self.n_runs = 0
        self.acc: dict[str, list[float]] = {"dirty": [], "repaired": []}
        self.gap_values: dict[str, dict[str, list[float]]] = {
            name: {"dirty": [], "repaired": []} for name in metrics
        }
        self.counts: dict[str, list[int]] = {
            key: [0, 0, 0, 0]
            for key in ("dirty_priv", "dirty_dis", "repaired_priv", "repaired_dis")
        }


def _mean(values: Sequence[float]) -> float | None:
    return sum(values) / len(values) if values else None


def build_audit(
    store,
    metrics: Sequence[str] = AUDIT_METRICS,
) -> FairnessAudit:
    """Fold a result store into its :class:`FairnessAudit`.

    Streams :meth:`~repro.benchmark.ResultStore.iter_records`; order
    independence comes from accumulating sums and sorting the output,
    so serial and parallel runs of the same grid audit identically.
    """
    from repro.fairness.confusion import (
        confusion_from_store_keys,
        group_key_fragments,
        group_keys_in_metrics,
    )

    registry = _metric_registry()
    accumulators: dict[tuple[str, ...], _Accumulator] = {}
    n_records = 0
    for record in store.iter_records():
        n_records += 1
        for group_key in group_keys_in_metrics(record.metrics, record.repair):
            key = (
                record.dataset,
                record.error_type,
                record.detection,
                record.repair,
                record.model,
                group_key,
            )
            accumulator = accumulators.get(key)
            if accumulator is None:
                accumulator = accumulators[key] = _Accumulator(metrics)
            accumulator.n_runs += 1
            priv_fragment, dis_fragment = group_key_fragments(group_key)
            for side, technique in (("dirty", "dirty"), ("repaired", record.repair)):
                acc = record.metrics.get(f"{technique}_test_acc")
                if acc is not None and not math.isnan(float(acc)):
                    accumulator.acc[side].append(float(acc))
                privileged = confusion_from_store_keys(
                    record.metrics, technique, priv_fragment
                )
                disadvantaged = confusion_from_store_keys(
                    record.metrics, technique, dis_fragment
                )
                if privileged is None or disadvantaged is None:
                    continue
                for fragment_side, matrix in (
                    (f"{side}_priv", privileged),
                    (f"{side}_dis", disadvantaged),
                ):
                    totals = accumulator.counts[fragment_side]
                    for index, cell in enumerate(
                        (matrix.tn, matrix.fp, matrix.fn, matrix.tp)
                    ):
                        totals[index] += cell
                for name in metrics:
                    value = registry[name](privileged, disadvantaged)
                    if not math.isnan(value):
                        accumulator.gap_values[name][side].append(abs(value))
    groups = []
    for key in sorted(accumulators):
        accumulator = accumulators[key]
        dataset, error_type, detection, repair, model, group = key
        groups.append(
            GroupAudit(
                dataset=dataset,
                error_type=error_type,
                detection=detection,
                repair=repair,
                model=model,
                group=group,
                n_runs=accumulator.n_runs,
                dirty_acc=_mean(accumulator.acc["dirty"]),
                repaired_acc=_mean(accumulator.acc["repaired"]),
                gaps={
                    name: [
                        _mean(sides["dirty"]),
                        _mean(sides["repaired"]),
                    ]
                    for name, sides in accumulator.gap_values.items()
                },
                counts=accumulator.counts,
            )
        )
    return FairnessAudit(
        groups=groups, metrics=tuple(metrics), n_records=n_records
    )


def evaluate_rules(
    rules: Sequence[AlertRule], audit: FairnessAudit
) -> list[Alert]:
    """Post-hoc rule evaluation over an audit's aggregated gaps."""
    alerts: list[Alert] = []
    for entry in audit.groups:
        alerts.extend(
            evaluate_gaps(
                rules,
                dataset=entry.dataset,
                error_type=entry.error_type,
                detection=entry.detection,
                repair=entry.repair,
                model=entry.model,
                gaps={entry.group: entry.gaps},
                dirty_acc=entry.dirty_acc,
                repaired_acc=entry.repaired_acc,
            )
        )
    return dedupe_alerts(alerts)


@dataclass(frozen=True)
class AuditFinding:
    """One compared coordinate of an audit diff.

    Attributes:
        coordinate: ``dataset/.../group/metric``.
        baseline_gap / candidate_gap: Mean repaired |disparity| in
            each run (None when the metric was undefined).
        delta: ``candidate_gap − baseline_gap`` (positive = the
            candidate run is less fair here).
        relative: ``delta`` relative to the baseline gap (or inf for a
            zero baseline).
        g_statistic / p_value / significant: The G² evidence gate over
            the summed repaired-group confusion counts (max of the
            privileged and disadvantaged tables).
        regression: Whether all three gates (relative threshold,
            absolute floor, significance) flagged this coordinate.
        note: ``""``, ``new`` (coordinate only in the candidate) or
            ``vanished`` (only in the baseline) — informational.
    """

    coordinate: str
    baseline_gap: float | None
    candidate_gap: float | None
    delta: float
    relative: float
    g_statistic: float
    p_value: float
    significant: bool
    regression: bool
    note: str = ""

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "coordinate": self.coordinate,
            "baseline_gap": self.baseline_gap,
            "candidate_gap": self.candidate_gap,
            "delta": self.delta,
            "relative": self.relative,
            "g_statistic": self.g_statistic,
            "p_value": self.p_value,
            "significant": self.significant,
            "regression": self.regression,
            "note": self.note,
        }


@dataclass
class AuditDiff:
    """Candidate-vs-baseline fairness comparison."""

    findings: list[AuditFinding] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    min_gap: float = DEFAULT_MIN_GAP
    alpha: float = DEFAULT_ALPHA

    @property
    def regressions(self) -> list[AuditFinding]:
        """Findings that cleared every gate."""
        return [finding for finding in self.findings if finding.regression]

    @property
    def improvements(self) -> list[AuditFinding]:
        """Significant narrowings that would have flagged with the
        opposite sign (informational)."""
        return [
            finding
            for finding in self.findings
            if not finding.regression
            and finding.significant
            and finding.baseline_gap is not None
            and finding.candidate_gap is not None
            and -finding.delta >= self.min_gap
        ]

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "threshold": self.threshold,
            "min_gap": self.min_gap,
            "alpha": self.alpha,
            "n_findings": len(self.findings),
            "regressions": [finding.to_json() for finding in self.regressions],
            "improvements": [
                finding.to_json() for finding in self.improvements
            ],
            "findings": [finding.to_json() for finding in self.findings],
        }


def _counts_gtest(
    baseline: Mapping[str, Sequence[int]],
    candidate: Mapping[str, Sequence[int]],
    alpha: float,
):
    """G² over baseline-vs-candidate repaired confusion counts.

    One 2×4 table per group side (privileged, disadvantaged); the side
    with the stronger evidence wins, so a gap widened purely through
    the privileged group still has to show a real distribution change.
    """
    from repro.stats.gtest import GTestResult, g_test

    best = GTestResult(statistic=0.0, p_value=1.0, dof=0, significant=False)
    for side in ("repaired_dis", "repaired_priv"):
        base_counts = list(baseline.get(side, ()))
        cand_counts = list(candidate.get(side, ()))
        if len(base_counts) != 4 or len(cand_counts) != 4:
            continue
        result = g_test([base_counts, cand_counts], alpha=alpha)
        if result.p_value < best.p_value or best.dof == 0:
            best = result
    return best


def diff_audits(
    baseline: FairnessAudit,
    candidate: FairnessAudit,
    threshold: float = DEFAULT_THRESHOLD,
    min_gap: float = DEFAULT_MIN_GAP,
    alpha: float = DEFAULT_ALPHA,
) -> AuditDiff:
    """Compare two audits, flagging fairness regressions.

    A coordinate regresses when the candidate's mean repaired
    |disparity| exceeds the baseline's by at least ``min_gap`` points
    AND by at least ``threshold`` relative to the baseline gap AND the
    G² gate finds the underlying confusion counts significantly
    different. Identical audits therefore always diff clean (G² = 0).
    """
    diff = AuditDiff(threshold=threshold, min_gap=min_gap, alpha=alpha)
    base_entries = baseline.by_coordinate()
    cand_entries = candidate.by_coordinate()
    for coordinate in sorted(set(base_entries) | set(cand_entries)):
        base = base_entries.get(coordinate)
        cand = cand_entries.get(coordinate)
        if base is None or cand is None:
            present = cand if base is None else base
            for metric in present.gaps:
                gap = present.gaps[metric][1]
                diff.findings.append(
                    AuditFinding(
                        coordinate=f"{coordinate}/{metric}",
                        baseline_gap=None if base is None else gap,
                        candidate_gap=None if cand is None else gap,
                        delta=0.0,
                        relative=0.0,
                        g_statistic=0.0,
                        p_value=1.0,
                        significant=False,
                        regression=False,
                        note="new" if base is None else "vanished",
                    )
                )
            continue
        evidence = None
        for metric in sorted(set(base.gaps) | set(cand.gaps)):
            base_gap = (base.gaps.get(metric) or [None, None])[1]
            cand_gap = (cand.gaps.get(metric) or [None, None])[1]
            if base_gap is None or cand_gap is None:
                continue
            delta = cand_gap - base_gap
            relative = (
                abs(delta) / base_gap if base_gap > 0 else float("inf")
            )
            # dual noise thresholds (mirroring obs.diff): both the
            # relative change and the absolute gap floor must clear,
            # in either direction — then the G² gate decides whether
            # the underlying counts genuinely moved
            flagged = abs(delta) >= min_gap and relative >= threshold
            if flagged and evidence is None:
                evidence = _counts_gtest(base.counts, cand.counts, alpha)
            result = evidence if flagged else None
            diff.findings.append(
                AuditFinding(
                    coordinate=f"{coordinate}/{metric}",
                    baseline_gap=base_gap,
                    candidate_gap=cand_gap,
                    delta=delta,
                    relative=relative,
                    g_statistic=0.0 if result is None else result.statistic,
                    p_value=1.0 if result is None else result.p_value,
                    significant=False if result is None else result.significant,
                    regression=bool(
                        delta > 0 and flagged and result and result.significant
                    ),
                )
            )
    return diff


def _format_gap(value: float | None) -> str:
    return "--" if value is None else f"{value:.3f}"


def render_audit(
    audit: FairnessAudit,
    alerts: Iterable[Alert] = (),
    top: int = 10,
) -> str:
    """Plain-text audit summary: worst widenings + fired alerts."""
    lines = [
        "FAIRNESS AUDIT",
        "==============",
        f"records: {audit.n_records}   configurations x groups: "
        f"{len(audit.groups)}   metrics: {', '.join(audit.metrics)}",
    ]
    widenings = []
    for entry in audit.groups:
        for metric in audit.metrics:
            widening = entry.widening(metric)
            if widening is not None:
                widenings.append((widening, f"{entry.coordinate}/{metric}", entry))
    widenings.sort(key=lambda item: (-item[0], item[1]))
    if widenings:
        lines.append("")
        lines.append(f"Largest gap widenings, repaired vs dirty (top {top})")
        for widening, coordinate, entry in widenings[:top]:
            metric = coordinate.rsplit("/", 1)[1]
            pair = entry.gaps[metric]
            lines.append(
                f"  {coordinate}: {_format_gap(pair[0])} -> "
                f"{_format_gap(pair[1])} ({widening:+.3f}, n={entry.n_runs})"
            )
    alerts = list(alerts)
    lines.append("")
    if alerts:
        lines.append(f"Alerts ({len(alerts)})")
        for alert in alerts:
            lines.append(f"  [{alert.rule}] {alert.message}")
    else:
        lines.append("Alerts: none")
    return "\n".join(lines)


def render_audit_diff(diff: AuditDiff, all_findings: bool = False) -> str:
    """Plain-text audit-diff report (the ``obs-audit --baseline`` view)."""
    lines = [
        "FAIRNESS AUDIT DIFF (candidate vs baseline)",
        "===========================================",
        f"compared: {len(diff.findings)}   regressions: "
        f"{len(diff.regressions)}   improvements: {len(diff.improvements)}   "
        f"(threshold {diff.threshold:.0%} relative AND {diff.min_gap:.3f} "
        f"absolute, G-test alpha {diff.alpha})",
    ]
    if diff.regressions:
        lines.append("")
        lines.append("REGRESSIONS (gap widened vs baseline)")
        for finding in diff.regressions:
            lines.append(
                f"  {finding.coordinate}: {_format_gap(finding.baseline_gap)} "
                f"-> {_format_gap(finding.candidate_gap)} "
                f"({finding.delta:+.3f}, G²={finding.g_statistic:.1f}, "
                f"p={finding.p_value:.2g})"
            )
    if diff.improvements:
        lines.append("")
        lines.append("improvements (gap narrowed vs baseline)")
        for finding in diff.improvements:
            lines.append(
                f"  {finding.coordinate}: {_format_gap(finding.baseline_gap)} "
                f"-> {_format_gap(finding.candidate_gap)} ({finding.delta:+.3f})"
            )
    if all_findings:
        lines.append("")
        lines.append("all compared coordinates")
        for finding in diff.findings:
            marker = "!" if finding.regression else " "
            note = f" [{finding.note}]" if finding.note else ""
            lines.append(
                f" {marker} {finding.coordinate}: "
                f"{_format_gap(finding.baseline_gap)} -> "
                f"{_format_gap(finding.candidate_gap)}{note}"
            )
    if not diff.regressions:
        lines.append("")
        lines.append("no fairness regressions vs baseline")
    return "\n".join(lines)
