"""Structured tracing, metrics and run-health reporting.

A zero-dependency observability layer for the study pipeline
(FairPrep's "the pipeline is an inspectable artifact" stance applied
to this reproduction):

- :mod:`repro.obs.trace` — nestable spans with monotonic timings and
  per-span counters/attributes, point events, and a process-global
  tracer whose *disabled* fast path costs one attribute lookup.
- :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms whose snapshots merge deterministically across worker
  shards.
- :mod:`repro.obs.report` — folds ``trace.jsonl`` + ``failures.jsonl``
  into a :class:`RunHealth` summary and renders the plain-text
  ``python -m repro obs-report`` view.
- :mod:`repro.obs.progress` — read-only in-flight monitoring from the
  sidecars a live run is already writing (heartbeats, journal shards,
  the manifest): ``python -m repro monitor``.
- :mod:`repro.obs.export` — Chrome Trace Event Format export for
  Perfetto / speedscope: ``python -m repro obs-export``.
- :mod:`repro.obs.profile` — opt-in memory telemetry (tracemalloc
  deltas + RSS gauges at hot-path span boundaries), behind
  ``--profile-memory``.
- :mod:`repro.obs.diff` — noise-aware cross-run regression diffs over
  trace sidecars: ``python -m repro obs-diff``.
- :mod:`repro.obs.audit` — fairness outcomes as first-class telemetry:
  per-cell ``fairness`` events, :class:`FairnessAudit` run summaries,
  and baseline diffs with dual noise thresholds plus a G² evidence
  gate: ``python -m repro obs-audit``.
- :mod:`repro.obs.ledger` — the append-only ``{stem}.ledger.jsonl``
  run ledger with pinned baselines: ``python -m repro obs-baseline``.
- :mod:`repro.obs.rules` — declarative fairness alert rules evaluated
  live by the monitor and post-hoc by ``obs-audit`` / ``obs-report``.

Instrumentation is threaded through the hot layers (experiment
runner, parallel executor, grid search, cleaning detectors/repairers,
fault injectors) via the module-level helpers below; with tracing off
every instrumentation point is a no-op, and study results are
byte-identical with tracing on or off — trace events live in sidecar
shards (``{stem}.trace*.jsonl``) that never touch the result store.
"""

from repro.obs.audit import (
    AUDIT_METRICS,
    AuditDiff,
    AuditFinding,
    FairnessAudit,
    GroupAudit,
    build_audit,
    cell_fairness,
    diff_audits,
    evaluate_rules,
    render_audit,
    render_audit_diff,
)
from repro.obs.diff import (
    DiffEntry,
    RunDiff,
    diff_runs,
    diff_stores,
    render_diff,
    span_stats,
)
from repro.obs.export import (
    EXPORT_FORMATS,
    export_trace,
    to_chrome_trace,
)
from repro.obs.ledger import (
    LEDGER_SUFFIX,
    config_fingerprint,
    export_baseline,
    ledger_path,
    pin_baseline,
    pins,
    read_ledger,
    record_run,
    resolve_baseline,
    run_id_for,
    runs,
)
from repro.obs.metrics import (
    DURATION_BUCKETS,
    MetricsRegistry,
    merge_metric_events,
)
from repro.obs.profile import (
    HOT_SPANS,
    disable_memory_profiling,
    enable_memory_profiling,
    memory_profiling_enabled,
    profile_memory,
    rss_bytes,
)
from repro.obs.progress import (
    ProgressSnapshot,
    WorkerStatus,
    monitor_run,
    render_progress,
    scan_run,
)
from repro.obs.rules import (
    DEFAULT_RULES,
    RULE_KINDS,
    Alert,
    AlertRule,
    dedupe_alerts,
    evaluate_gaps,
    load_rules,
)
from repro.obs.report import (
    RunHealth,
    build_health,
    load_health,
    read_failures,
    read_trace_events,
    render_health_report,
)
from repro.obs.trace import (
    NOOP_SPAN,
    SCHEMA_VERSION,
    Span,
    TraceSink,
    Tracer,
    configure,
    counter,
    event,
    flush,
    gauge,
    get_tracer,
    heartbeat,
    histogram,
    install_span_hooks,
    is_enabled,
    scoped,
    shutdown,
    span,
    track_id,
    uninstall_span_hooks,
)

__all__ = [
    "AUDIT_METRICS",
    "AuditDiff",
    "AuditFinding",
    "FairnessAudit",
    "GroupAudit",
    "build_audit",
    "cell_fairness",
    "diff_audits",
    "evaluate_rules",
    "render_audit",
    "render_audit_diff",
    "LEDGER_SUFFIX",
    "config_fingerprint",
    "export_baseline",
    "ledger_path",
    "pin_baseline",
    "pins",
    "read_ledger",
    "record_run",
    "resolve_baseline",
    "run_id_for",
    "runs",
    "DEFAULT_RULES",
    "RULE_KINDS",
    "Alert",
    "AlertRule",
    "dedupe_alerts",
    "evaluate_gaps",
    "load_rules",
    "DiffEntry",
    "RunDiff",
    "diff_runs",
    "diff_stores",
    "render_diff",
    "span_stats",
    "EXPORT_FORMATS",
    "export_trace",
    "to_chrome_trace",
    "DURATION_BUCKETS",
    "MetricsRegistry",
    "merge_metric_events",
    "HOT_SPANS",
    "disable_memory_profiling",
    "enable_memory_profiling",
    "memory_profiling_enabled",
    "profile_memory",
    "rss_bytes",
    "ProgressSnapshot",
    "WorkerStatus",
    "monitor_run",
    "render_progress",
    "scan_run",
    "RunHealth",
    "build_health",
    "load_health",
    "read_failures",
    "read_trace_events",
    "render_health_report",
    "NOOP_SPAN",
    "SCHEMA_VERSION",
    "Span",
    "TraceSink",
    "Tracer",
    "configure",
    "counter",
    "event",
    "flush",
    "gauge",
    "get_tracer",
    "heartbeat",
    "histogram",
    "install_span_hooks",
    "is_enabled",
    "scoped",
    "shutdown",
    "span",
    "track_id",
    "uninstall_span_hooks",
]
