"""Structured tracing, metrics and run-health reporting.

A zero-dependency observability layer for the study pipeline
(FairPrep's "the pipeline is an inspectable artifact" stance applied
to this reproduction):

- :mod:`repro.obs.trace` — nestable spans with monotonic timings and
  per-span counters/attributes, point events, and a process-global
  tracer whose *disabled* fast path costs one attribute lookup.
- :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms whose snapshots merge deterministically across worker
  shards.
- :mod:`repro.obs.report` — folds ``trace.jsonl`` + ``failures.jsonl``
  into a :class:`RunHealth` summary and renders the plain-text
  ``python -m repro obs-report`` view.

Instrumentation is threaded through the hot layers (experiment
runner, parallel executor, grid search, cleaning detectors/repairers,
fault injectors) via the module-level helpers below; with tracing off
every instrumentation point is a no-op, and study results are
byte-identical with tracing on or off — trace events live in sidecar
shards (``{stem}.trace*.jsonl``) that never touch the result store.
"""

from repro.obs.metrics import (
    DURATION_BUCKETS,
    MetricsRegistry,
    merge_metric_events,
)
from repro.obs.report import (
    RunHealth,
    build_health,
    load_health,
    read_failures,
    read_trace_events,
    render_health_report,
)
from repro.obs.trace import (
    NOOP_SPAN,
    SCHEMA_VERSION,
    Span,
    TraceSink,
    Tracer,
    configure,
    counter,
    event,
    flush,
    gauge,
    get_tracer,
    histogram,
    is_enabled,
    scoped,
    shutdown,
    span,
)

__all__ = [
    "DURATION_BUCKETS",
    "MetricsRegistry",
    "merge_metric_events",
    "RunHealth",
    "build_health",
    "load_health",
    "read_failures",
    "read_trace_events",
    "render_health_report",
    "NOOP_SPAN",
    "SCHEMA_VERSION",
    "Span",
    "TraceSink",
    "Tracer",
    "configure",
    "counter",
    "event",
    "flush",
    "gauge",
    "get_tracer",
    "histogram",
    "is_enabled",
    "scoped",
    "shutdown",
    "span",
]
