"""In-flight run monitoring from trace + journal sidecars.

:func:`scan_run` assembles a :class:`ProgressSnapshot` of a study run
by reading, **read-only**, the files the executor is writing anyway:

- ``{stem}.trace.jsonl`` — the parent executor's events. The
  ``planned`` event fixes the denominator (units/cells pending this
  run); ``unit_merged`` / ``retry`` / ``recovered`` / ``poison``
  events track the merge frontier and fault tally. The executor
  flushes after each of these, so they are visible mid-run.
- ``{stem}.trace.w*.jsonl`` — per-worker shards. Workers emit flushed
  ``heartbeat`` events at unit start and around every cell
  (:meth:`repro.benchmark.runner.ExperimentRunner.run_repetition_cells`),
  which yields cells done/started, per-``(dataset, error_type,
  model)`` throughput, and — from the age of each worker's newest
  heartbeat — stalled-worker detection.
- ``{stem}.w*.jsonl`` journal shards — records appended so far (the
  ground truth the run would recover from after a crash).
- ``{stem}.json`` manifest + ``{stem}.failures.jsonl`` — records
  compacted by previous runs, and poisoned units.

Nothing here takes locks or opens files for writing, so monitoring
cannot perturb the run; torn trailing lines (a writer mid-append) are
skipped by the tolerant JSONL readers. After the run finishes and
compacts, the same scan still works against the compacted
``trace.jsonl`` and reports the run as complete — ``python -m repro
monitor`` uses that as its exit condition.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.report import read_failures, read_trace_events
from repro.obs.rules import DEFAULT_RULES, AlertRule, dedupe_alerts, evaluate_gaps

#: Heartbeat age (seconds) beyond which a worker is reported stalled.
DEFAULT_STALL_AFTER = 60.0


@dataclass
class WorkerStatus:
    """Liveness of one worker track (``w{pid}`` / ``w{pid}.t{tid}``).

    Attributes:
        track: Worker track id.
        last_ts: Epoch timestamp of the newest heartbeat.
        age: Seconds between ``last_ts`` and the snapshot time.
        stalled: True when ``age`` exceeds the stall threshold and the
            run is not complete.
        cells_done: Cells this worker finished.
        last_phase: Phase attribute of the newest heartbeat.
    """

    track: str
    last_ts: float
    age: float
    stalled: bool
    cells_done: int
    last_phase: str


@dataclass
class ProgressSnapshot:
    """One read-only observation of a run's progress.

    ``planned_cells`` counts only the cells *pending this run* (the
    executor plans against the resumable store), so a resumed run
    reports progress of the remaining work, not the whole grid.
    """

    stem: str
    now: float
    planned_units: int = 0
    planned_cells: int = 0
    workers_planned: int = 0
    backend: str = ""
    units_merged: int = 0
    records_merged: int = 0
    cells_started: int = 0
    cells_done: int = 0
    cells_poisoned: int = 0
    journal_records: int = 0
    store_records: int = 0
    retries: int = 0
    recovered: int = 0
    poisoned_units: int = 0
    heartbeats: int = 0
    started_ts: float = 0.0
    last_ts: float = 0.0
    elapsed: float = 0.0
    cells_per_second: float = 0.0
    eta_seconds: float | None = None
    complete: bool = False
    throughput: dict[tuple[str, str, str], dict[str, float]] = field(
        default_factory=dict
    )
    workers: list[WorkerStatus] = field(default_factory=list)
    fairness_cells: int = 0
    fairness: dict[tuple[str, str, str, str], dict[str, Any]] = field(
        default_factory=dict
    )
    alerts: list[dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        """Flat JSON-serialisable representation."""
        payload = {
            name: getattr(self, name)
            for name in (
                "stem",
                "now",
                "planned_units",
                "planned_cells",
                "workers_planned",
                "backend",
                "units_merged",
                "records_merged",
                "cells_started",
                "cells_done",
                "cells_poisoned",
                "journal_records",
                "store_records",
                "retries",
                "recovered",
                "poisoned_units",
                "heartbeats",
                "started_ts",
                "last_ts",
                "elapsed",
                "cells_per_second",
                "eta_seconds",
                "complete",
                "fairness_cells",
            )
        }
        payload["fairness"] = {
            "/".join(key): dict(stats)
            for key, stats in sorted(self.fairness.items())
        }
        payload["alerts"] = [dict(alert) for alert in self.alerts]
        payload["throughput"] = {
            "/".join(key): dict(stats)
            for key, stats in sorted(self.throughput.items())
        }
        payload["workers"] = [
            {
                "track": worker.track,
                "last_ts": worker.last_ts,
                "age": worker.age,
                "stalled": worker.stalled,
                "cells_done": worker.cells_done,
                "last_phase": worker.last_phase,
            }
            for worker in self.workers
        ]
        return payload


def _store_record_count(store_path: Path) -> int:
    """Records already compacted into the sharded store (0 if none)."""
    if not store_path.exists():
        return 0
    try:
        with store_path.open("r") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return 0
    if not isinstance(payload, dict):
        return 0
    if "shards" in payload:
        return sum(
            int(entry.get("records", len(entry.get("keys", ()))))
            for entry in payload["shards"]
            if isinstance(entry, dict)
        )
    if "records" in payload and isinstance(payload["records"], list):
        return len(payload["records"])
    return 0


def _journal_record_count(store_path: Path) -> int:
    """Decodable record lines across all journal shards, read-only."""
    stem = store_path.stem
    parent = store_path.parent
    count = 0
    paths = [parent / f"{stem}.jsonl"]
    paths += sorted(
        path
        for path in parent.glob(f"{stem}.*.jsonl")
        if not path.name.startswith(f"{stem}.trace.")
        and path.name != f"{stem}.failures.jsonl"
        and path.name != f"{stem}.ledger.jsonl"
    )
    for path in paths:
        if not path.exists():
            continue
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and "metrics" in payload:
                count += 1
    return count


def trace_files(store_path: str | Path) -> list[Path]:
    """The run's trace files: compacted sidecar first, then shards."""
    store_path = Path(store_path)
    stem = store_path.stem
    parent = store_path.parent
    main = parent / f"{stem}.trace.jsonl"
    paths = [main] if main.exists() else []
    paths.extend(sorted(parent.glob(f"{stem}.trace.*.jsonl")))
    return paths


def scan_run(
    store_path: str | Path,
    now: float | None = None,
    stall_after: float = DEFAULT_STALL_AFTER,
    rules: "tuple[AlertRule, ...] | list[AlertRule] | None" = None,
) -> ProgressSnapshot:
    """Observe a (possibly in-flight) traced run, read-only.

    ``store_path`` is the store manifest path the study was launched
    with (``--store``); ``now`` overrides the snapshot clock for
    deterministic tests. ``rules`` are the fairness alert rules
    evaluated live against ``fairness`` events (default
    :data:`repro.obs.rules.DEFAULT_RULES`).
    """
    store_path = Path(store_path)
    now = time.time() if now is None else now
    if rules is None:
        rules = DEFAULT_RULES
    snapshot = ProgressSnapshot(stem=str(store_path), now=now)
    events = read_trace_events(trace_files(store_path))
    worker_last: dict[str, tuple[float, str]] = {}
    worker_cells: dict[str, int] = {}
    live_alerts: list[Any] = []
    for event in events:
        kind = event.get("kind")
        if kind == "metric":
            continue
        ts = float(event.get("ts", 0.0))
        if ts > 0.0:
            if snapshot.started_ts == 0.0 or ts < snapshot.started_ts:
                snapshot.started_ts = ts
            snapshot.last_ts = max(snapshot.last_ts, ts)
        name = event.get("name")
        attrs = event.get("attrs", {})
        track = str(event.get("w", "?"))
        if name == "planned":
            snapshot.planned_units = int(attrs.get("units", 0))
            snapshot.planned_cells = int(attrs.get("cells", 0))
            snapshot.workers_planned = int(attrs.get("workers", 0))
            snapshot.backend = str(attrs.get("backend", ""))
        elif name == "unit_merged":
            snapshot.units_merged += 1
            snapshot.records_merged += int(attrs.get("records", 0))
        elif name == "retry":
            snapshot.retries += 1
        elif name == "recovered":
            snapshot.recovered += 1
        elif name == "poison":
            snapshot.poisoned_units += 1
        elif name == "heartbeat":
            snapshot.heartbeats += 1
            phase = str(attrs.get("phase", "?"))
            if ts > 0.0:
                last = worker_last.get(track)
                if last is None or ts >= last[0]:
                    worker_last[track] = (ts, phase)
            if phase == "cell_start":
                snapshot.cells_started += 1
            elif phase == "cell_done":
                snapshot.cells_done += 1
                worker_cells[track] = worker_cells.get(track, 0) + 1
                key = (
                    str(attrs.get("dataset", "?")),
                    str(attrs.get("error_type", "?")),
                    str(attrs.get("model", "?")),
                )
                stats = snapshot.throughput.setdefault(
                    key, {"cells": 0.0, "seconds": 0.0}
                )
                stats["cells"] += 1
                stats["seconds"] += float(attrs.get("seconds", 0.0))
        elif name == "fairness":
            snapshot.fairness_cells += 1
            _fold_fairness(snapshot, attrs)
            if rules:
                acc = attrs.get("acc", {})
                live_alerts.extend(
                    evaluate_gaps(
                        rules,
                        dataset=str(attrs.get("dataset", "?")),
                        error_type=str(attrs.get("error_type", "?")),
                        detection=str(attrs.get("detection", "?")),
                        repair=str(attrs.get("repair", "?")),
                        model=str(attrs.get("model", "?")),
                        gaps=attrs.get("groups", {}),
                        dirty_acc=acc.get("dirty"),
                        repaired_acc=acc.get("repaired"),
                    )
                )
    failures = read_failures(
        store_path.parent / f"{store_path.stem}.failures.jsonl"
    )
    snapshot.cells_poisoned = sum(
        len(entry.get("pending_cells", ())) for entry in failures
    )
    snapshot.store_records = _store_record_count(store_path)
    snapshot.journal_records = _journal_record_count(store_path)
    if snapshot.started_ts > 0.0:
        # a clock-skewed heartbeat can carry ts >= now; clamp instead
        # of propagating a negative elapsed into the rate math
        snapshot.elapsed = max(0.0, now - snapshot.started_ts)
    if snapshot.elapsed > 0.0 and snapshot.cells_done > 0:
        snapshot.cells_per_second = snapshot.cells_done / snapshot.elapsed
    # poisoned cells count toward completion: when every remaining
    # cell was poisoned the run is over and there is no ETA — and the
    # subtraction is clamped so over-counted failure sidecars (e.g. a
    # unit poisoned after partial progress) cannot drive `remaining`
    # negative
    remaining = max(
        0,
        snapshot.planned_cells - snapshot.cells_done - snapshot.cells_poisoned,
    )
    snapshot.complete = snapshot.planned_cells > 0 and remaining == 0
    # the ETA exists only when there is work left AND an observed rate
    # (a zero-elapsed heartbeat burst yields rate 0, never a division
    # by zero), and is clamped non-negative
    if not snapshot.complete and remaining > 0 and snapshot.cells_per_second > 0.0:
        snapshot.eta_seconds = max(0.0, remaining / snapshot.cells_per_second)
    snapshot.alerts = [alert.to_json() for alert in dedupe_alerts(live_alerts)]
    for key, stats in snapshot.throughput.items():
        stats["cells_per_second"] = (
            stats["cells"] / stats["seconds"] if stats["seconds"] > 0 else 0.0
        )
    for track in sorted(worker_last):
        ts, phase = worker_last[track]
        age = max(0.0, now - ts)
        snapshot.workers.append(
            WorkerStatus(
                track=track,
                last_ts=ts,
                age=age,
                stalled=not snapshot.complete and age > stall_after,
                cells_done=worker_cells.get(track, 0),
                last_phase=phase,
            )
        )
    return snapshot


def _fold_fairness(snapshot: ProgressSnapshot, attrs: dict[str, Any]) -> None:
    """Fold one ``fairness`` event into the live per-config deltas."""
    key = (
        str(attrs.get("dataset", "?")),
        str(attrs.get("error_type", "?")),
        str(attrs.get("model", "?")),
        str(attrs.get("repair", "?")),
    )
    stats = snapshot.fairness.setdefault(
        key,
        {
            "cells": 0,
            "widened": 0,
            "max_widening": 0.0,
            "worst_group": "",
            "worst_metric": "",
        },
    )
    stats["cells"] += 1
    cell_widened = False
    for group, gaps in sorted(attrs.get("groups", {}).items()):
        for metric, pair in sorted(gaps.items()):
            if not pair or pair[0] is None or pair[1] is None:
                continue
            widening = abs(pair[1]) - abs(pair[0])
            if widening > 0:
                cell_widened = True
            if widening > stats["max_widening"]:
                stats["max_widening"] = widening
                stats["worst_group"] = group
                stats["worst_metric"] = metric
    if cell_widened:
        stats["widened"] += 1


def _format_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"


def render_progress(snapshot: ProgressSnapshot) -> str:
    """Plain-text monitor view of one snapshot."""
    done = snapshot.cells_done
    total = snapshot.planned_cells
    # a resumed run can replay more cell_done heartbeats than this
    # run planned; clamp the display instead of reporting > 100%
    percent = min(100.0, 100.0 * done / total) if total else 0.0
    lines = [
        f"run: {snapshot.stem}"
        + ("   [COMPLETE]" if snapshot.complete else ""),
        f"cells: {done}/{total} ({percent:.0f}%)   "
        f"units merged: {snapshot.units_merged}/{snapshot.planned_units}   "
        f"records: {snapshot.store_records} compacted "
        f"+ {snapshot.journal_records} journaled",
        f"elapsed: {snapshot.elapsed:.0f}s   "
        f"rate: {snapshot.cells_per_second:.2f} cells/s   "
        f"eta: {_format_eta(snapshot.eta_seconds)}   "
        f"retries: {snapshot.retries}   "
        f"poisoned: {snapshot.poisoned_units}",
    ]
    if snapshot.throughput:
        lines.append("throughput by configuration:")
        for key in sorted(snapshot.throughput):
            stats = snapshot.throughput[key]
            lines.append(
                f"  {'/'.join(key)}: {int(stats['cells'])} cells, "
                f"{stats['cells_per_second']:.2f} cells/s"
            )
    if snapshot.fairness:
        lines.append(
            f"fairness (live, {snapshot.fairness_cells} cells audited):"
        )
        ranked = sorted(
            snapshot.fairness.items(),
            key=lambda kv: (-kv[1]["max_widening"], kv[0]),
        )
        for key, stats in ranked[:5]:
            detail = ""
            if stats["max_widening"] > 0:
                detail = (
                    f", worst +{stats['max_widening']:.3f} "
                    f"{stats['worst_metric']} on group {stats['worst_group']}"
                )
            lines.append(
                f"  {'/'.join(key)}: {stats['widened']}/{stats['cells']} "
                f"cells widened a gap{detail}"
            )
    if snapshot.alerts:
        lines.append(f"fairness alerts ({len(snapshot.alerts)}):")
        for alert in snapshot.alerts[:5]:
            lines.append(f"  [{alert['rule']}] {alert['message']}")
    if snapshot.workers:
        lines.append("workers:")
        for worker in snapshot.workers:
            flag = "  STALLED" if worker.stalled else ""
            lines.append(
                f"  {worker.track}: {worker.cells_done} cells, "
                f"last {worker.last_phase} {worker.age:.1f}s ago{flag}"
            )
    return "\n".join(lines)


def monitor_run(
    store_path: str | Path,
    interval: float = 2.0,
    stall_after: float = DEFAULT_STALL_AFTER,
    once: bool = False,
    emit=print,
    max_iterations: int | None = None,
) -> ProgressSnapshot:
    """Poll a run until it completes, emitting a report per interval.

    Returns the final snapshot. ``once`` takes a single snapshot (the
    ``monitor --once`` mode); ``max_iterations`` bounds the loop for
    tests and cron-style use.
    """
    iterations = 0
    while True:
        snapshot = scan_run(store_path, stall_after=stall_after)
        emit(render_progress(snapshot))
        iterations += 1
        if snapshot.complete or once:
            return snapshot
        if max_iterations is not None and iterations >= max_iterations:
            return snapshot
        time.sleep(interval)
