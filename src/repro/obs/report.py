"""Run-health reporting from ``trace.jsonl`` + ``failures.jsonl``.

:func:`build_health` folds a run's trace events into a
:class:`RunHealth` summary — per-phase time breakdown, slowest cells,
retry/poison/timeout tallies, cache hit rates, injected-fault counts —
and :func:`render_health_report` renders it as the plain-text report
behind ``python -m repro obs-report``. The same data is available
programmatically as :meth:`repro.benchmark.ResultStore.health`.

Phase totals aggregate *span* events by name. Spans nest (a ``unit``
span contains its ``prepare`` and ``cell`` spans; a ``cell`` contains
``tune`` and ``score``), so phase totals are not additive across
nesting levels — compare siblings, not parents with children.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.metrics import merge_metric_events


def read_trace_events(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Parse trace events from JSONL shards, in shard-then-line order.

    Undecodable lines (e.g. the torn tail of a crashed writer) are
    skipped, mirroring the result journal's replay tolerance.
    """
    events: list[dict[str, Any]] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        with path.open("r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict) and "kind" in event:
                    events.append(event)
    return events


def read_failures(path: str | Path | None) -> list[dict[str, Any]]:
    """Parse the poisoned-unit sidecar (missing file → empty list)."""
    if path is None:
        return []
    path = Path(path)
    if not path.exists():
        return []
    failures: list[dict[str, Any]] = []
    with path.open("r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict):
                failures.append(payload)
    return failures


@dataclass
class RunHealth:
    """Aggregated health view of one study run.

    Attributes:
        phase_totals: Per span name: ``{"count", "seconds"}``.
        model_seconds: Total ``cell`` span seconds per model.
        detector_stats: Per detector: ``{"count", "seconds", "flagged"}``.
        repair_stats: Per repair: ``{"count", "seconds"}``.
        slowest_cells: ``cell`` spans sorted by descending seconds
            (coordinates + seconds), untruncated — renderers cut to
            their own top-N.
        tuning: Grid-search totals: fit/score seconds and the
            fast-path vs naive dispatch counts.
        cache: Per cache name: ``{"hits", "misses", "hit_rate"}``.
        reuse: Per incremental-reuse kind (``featurize``, ``masks``,
            ``knn_distances``, ``tree_presort``, ``logreg_warm``,
            ``model_eval``, ...): ``{"hits", "misses", "hit_rate"}``.
        cells_warm_started: Cells in which at least one incremental
            reuse hit fired (also available as the ``warm_started``
            attribute on ``cell`` spans).
        retries / recovered / poisoned / timeouts: Executor
            fault-tolerance tally (``recovered`` counts failed units
            fully reconstructed from their journal shard, no retry).
        heartbeats: Flushed liveness events observed (unit/cell
            progress beacons the in-flight monitor tails).
        memory: Per profiled span name (``--profile-memory`` runs):
            ``{"count", "mem_delta_bytes", "peak_rss_bytes"}`` —
            samples, net tracemalloc allocation across all samples,
            and the largest RSS observed at a span exit.
        peak_rss_bytes: Largest RSS observed across all profiled
            spans (0 when memory profiling was off).
        backoff_seconds: Total injected retry backoff sleep.
        faults: Injected-fault firings by kind (chaos runs only).
        counters: All merged metric counters, keyed
            ``name{label=value,...}``.
        gauges: All merged metric gauges, keyed the same way
            (NaN-ignoring max across shards, see
            :mod:`repro.obs.metrics`).
        fairness_cells: ``fairness`` domain events observed (one per
            evaluated cell on traced runs, see
            :func:`repro.obs.audit.cell_fairness`).
        fairness: Per audited metric abbreviation:
            ``{"pairs", "widened", "max_widening"}`` — group×cell gap
            pairs seen, how many the repair widened, and the largest
            |repaired| − |dirty| widening.
        worst_widenings: The largest per-cell gap widenings
            (coordinate, group, metric, dirty/repaired gaps),
            descending, untruncated — renderers cut to their own
            top-N.
        alerts: Fired :class:`repro.obs.rules.AlertRule` violations
            (deduped per rule × coordinate, worst kept).
        failures: Parsed poisoned-unit sidecar entries.
        n_events: Total trace events consumed.
        untraced: True when the summary was built for a store with no
            trace sidecars at all (e.g. a ``--no-trace`` run) — an
            explicitly-empty health object rather than a silent one.
    """

    phase_totals: dict[str, dict[str, float]] = field(default_factory=dict)
    model_seconds: dict[str, float] = field(default_factory=dict)
    detector_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    repair_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    slowest_cells: list[dict[str, Any]] = field(default_factory=list)
    tuning: dict[str, float] = field(default_factory=dict)
    cache: dict[str, dict[str, float]] = field(default_factory=dict)
    reuse: dict[str, dict[str, float]] = field(default_factory=dict)
    cells_warm_started: int = 0
    retries: int = 0
    recovered: int = 0
    poisoned: int = 0
    timeouts: int = 0
    heartbeats: int = 0
    memory: dict[str, dict[str, float]] = field(default_factory=dict)
    peak_rss_bytes: float = 0.0
    backoff_seconds: float = 0.0
    faults: dict[str, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    fairness_cells: int = 0
    fairness: dict[str, dict[str, float]] = field(default_factory=dict)
    worst_widenings: list[dict[str, Any]] = field(default_factory=list)
    alerts: list[dict[str, Any]] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)
    n_events: int = 0
    untraced: bool = False

    def to_json(self) -> dict[str, Any]:
        """Flat JSON-serialisable representation.

        Every mapping (including nested ones) is emitted with sorted
        keys, so the serialised bytes are identical regardless of the
        order events were folded in — audit and ledger diffs of two
        identical runs must never see ordering noise.
        """
        return _canonical(
            {
                "phase_totals": self.phase_totals,
                "model_seconds": self.model_seconds,
                "detector_stats": self.detector_stats,
                "repair_stats": self.repair_stats,
                "slowest_cells": self.slowest_cells,
                "tuning": self.tuning,
                "cache": self.cache,
                "reuse": self.reuse,
                "cells_warm_started": self.cells_warm_started,
                "retries": self.retries,
                "recovered": self.recovered,
                "poisoned": self.poisoned,
                "timeouts": self.timeouts,
                "heartbeats": self.heartbeats,
                "memory": self.memory,
                "peak_rss_bytes": self.peak_rss_bytes,
                "backoff_seconds": self.backoff_seconds,
                "faults": self.faults,
                "counters": self.counters,
                "gauges": self.gauges,
                "fairness_cells": self.fairness_cells,
                "fairness": self.fairness,
                "worst_widenings": self.worst_widenings,
                "alerts": self.alerts,
                "failures": self.failures,
                "n_events": self.n_events,
                "untraced": self.untraced,
            }
        )


def _canonical(value: Any) -> Any:
    """Recursively sort mapping keys; lists keep their (already
    deterministic) order."""
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def _counter_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def build_health(
    events: Sequence[dict[str, Any]],
    failures: Sequence[dict[str, Any]] = (),
    rules: Sequence[Any] | None = None,
) -> RunHealth:
    """Fold trace events + sidecar entries into a :class:`RunHealth`.

    ``rules`` are :class:`repro.obs.rules.AlertRule` instances
    evaluated against every ``fairness`` event (default:
    :data:`repro.obs.rules.DEFAULT_RULES`).
    """
    from repro.obs.rules import DEFAULT_RULES, dedupe_alerts, evaluate_gaps

    if rules is None:
        rules = DEFAULT_RULES
    health = RunHealth(failures=list(failures), n_events=len(events))
    cells: list[dict[str, Any]] = []
    alerts: list[Any] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            _fold_span(health, event, cells)
        elif kind == "event":
            _fold_event(health, event)
            if event.get("name") == "fairness" and rules:
                attrs = event.get("attrs", {})
                acc = attrs.get("acc", {})
                alerts.extend(
                    evaluate_gaps(
                        rules,
                        dataset=str(attrs.get("dataset", "?")),
                        error_type=str(attrs.get("error_type", "?")),
                        detection=str(attrs.get("detection", "?")),
                        repair=str(attrs.get("repair", "?")),
                        model=str(attrs.get("model", "?")),
                        gaps=attrs.get("groups", {}),
                        dirty_acc=acc.get("dirty"),
                        repaired_acc=acc.get("repaired"),
                    )
                )
    health.alerts = [alert.to_json() for alert in dedupe_alerts(alerts)]
    for snapshot in merge_metric_events(
        [event for event in events if event.get("kind") == "metric"]
    ):
        name = snapshot["name"]
        labels = snapshot.get("labels", {})
        if snapshot["type"] == "gauge":
            health.gauges[_counter_key(name, labels)] = snapshot["value"]
        if snapshot["type"] != "counter":
            continue
        health.counters[_counter_key(name, labels)] = snapshot["value"]
        if name == "cache_hit":
            cache = health.cache.setdefault(
                str(labels.get("cache", "?")), {"hits": 0.0, "misses": 0.0}
            )
            cache["hits"] += snapshot["value"]
        elif name == "cache_miss":
            cache = health.cache.setdefault(
                str(labels.get("cache", "?")), {"hits": 0.0, "misses": 0.0}
            )
            cache["misses"] += snapshot["value"]
        elif name == "reuse_hit":
            reuse = health.reuse.setdefault(
                str(labels.get("kind", "?")), {"hits": 0.0, "misses": 0.0}
            )
            reuse["hits"] += snapshot["value"]
        elif name == "reuse_miss":
            reuse = health.reuse.setdefault(
                str(labels.get("kind", "?")), {"hits": 0.0, "misses": 0.0}
            )
            reuse["misses"] += snapshot["value"]
        elif name == "cells_warm_started":
            health.cells_warm_started += int(snapshot["value"])
    for cache in health.cache.values():
        total = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / total if total else float("nan")
    for reuse in health.reuse.values():
        total = reuse["hits"] + reuse["misses"]
        reuse["hit_rate"] = reuse["hits"] / total if total else float("nan")
    health.poisoned += len(health.failures)
    # full tiebreak (not just -seconds) so the order — and therefore
    # the serialised report bytes — is invariant under shard-file
    # permutation, where equal-duration cells arrive in any order
    health.slowest_cells = sorted(
        cells,
        key=lambda cell: (
            -cell["seconds"],
            json.dumps(cell, sort_keys=True, default=str),
        ),
    )
    health.worst_widenings.sort(
        key=lambda entry: (
            -entry["widening"],
            entry["coordinate"],
            entry["repaired_gap"],
            entry["dirty_gap"],
        )
    )
    # per-cell × group × metric samples; cap so a paper-scale run's
    # health JSON stays readable (the full detail lives in the audit)
    del health.worst_widenings[50:]
    return health


def _fold_span(
    health: RunHealth, event: dict[str, Any], cells: list[dict[str, Any]]
) -> None:
    name = event.get("name", "?")
    seconds = float(event.get("seconds", 0.0))
    attrs = event.get("attrs", {})
    counters = event.get("counters", {})
    totals = health.phase_totals.setdefault(name, {"count": 0, "seconds": 0.0})
    totals["count"] += 1
    totals["seconds"] += seconds
    if "mem_delta_bytes" in attrs or "rss_bytes" in attrs:
        memory = health.memory.setdefault(
            name, {"count": 0, "mem_delta_bytes": 0.0, "peak_rss_bytes": 0.0}
        )
        memory["count"] += 1
        memory["mem_delta_bytes"] += float(attrs.get("mem_delta_bytes", 0.0))
        rss = float(attrs.get("rss_bytes", 0.0))
        memory["peak_rss_bytes"] = max(memory["peak_rss_bytes"], rss)
        health.peak_rss_bytes = max(health.peak_rss_bytes, rss)
    if name == "cell":
        cells.append({**attrs, "seconds": seconds})
        model = str(attrs.get("model", "?"))
        health.model_seconds[model] = (
            health.model_seconds.get(model, 0.0) + seconds
        )
    elif name == "detect":
        detector = str(attrs.get("detector", "?"))
        stats = health.detector_stats.setdefault(
            detector, {"count": 0, "seconds": 0.0, "flagged": 0}
        )
        stats["count"] += 1
        stats["seconds"] += seconds
        stats["flagged"] += int(counters.get("flagged", 0))
    elif name == "repair":
        repair = str(attrs.get("repair", "?"))
        stats = health.repair_stats.setdefault(
            repair, {"count": 0, "seconds": 0.0}
        )
        stats["count"] += 1
        stats["seconds"] += seconds
    elif name == "tune":
        health.tuning["fit_seconds"] = health.tuning.get(
            "fit_seconds", 0.0
        ) + float(counters.get("fit_seconds", 0.0))
        health.tuning["score_seconds"] = health.tuning.get(
            "score_seconds", 0.0
        ) + float(counters.get("score_seconds", 0.0))
        dispatch = "fast_path" if attrs.get("fast_path") else "naive"
        health.tuning[dispatch] = health.tuning.get(dispatch, 0) + 1


def _fold_event(health: RunHealth, event: dict[str, Any]) -> None:
    name = event.get("name")
    attrs = event.get("attrs", {})
    if name == "retry":
        health.retries += 1
        if "Timeout" in str(attrs.get("error", "")):
            health.timeouts += 1
    elif name == "recovered":
        health.recovered += 1
        if "Timeout" in str(attrs.get("error", "")):
            health.timeouts += 1
    elif name == "poison":
        health.poisoned += 1
        if "Timeout" in str(attrs.get("error", "")):
            health.timeouts += 1
    elif name == "heartbeat":
        health.heartbeats += 1
    elif name == "fairness":
        health.fairness_cells += 1
        coordinate = "/".join(
            str(attrs.get(part, "?"))
            for part in ("dataset", "error_type", "detection", "repair", "model")
        )
        for group, gaps in sorted(attrs.get("groups", {}).items()):
            for metric, pair in sorted(gaps.items()):
                if not pair or pair[1] is None:
                    continue
                stats = health.fairness.setdefault(
                    metric, {"pairs": 0, "widened": 0, "max_widening": 0.0}
                )
                stats["pairs"] += 1
                if pair[0] is None:
                    continue
                widening = abs(pair[1]) - abs(pair[0])
                if widening > 0:
                    stats["widened"] += 1
                stats["max_widening"] = max(stats["max_widening"], widening)
                health.worst_widenings.append(
                    {
                        "coordinate": f"{coordinate}/{group}/{metric}",
                        "group": group,
                        "metric": metric,
                        "dirty_gap": abs(pair[0]),
                        "repaired_gap": abs(pair[1]),
                        "widening": widening,
                    }
                )
    elif name == "backoff_sleep":
        health.backoff_seconds += float(attrs.get("seconds", 0.0))
    elif name == "fault_injected":
        kind = str(attrs.get("fault", "?"))
        health.faults[kind] = health.faults.get(kind, 0) + 1


def load_health(
    trace_paths: Iterable[str | Path],
    failures_path: str | Path | None = None,
) -> RunHealth:
    """Read trace shards + sidecar from disk and build the summary."""
    return build_health(
        read_trace_events(trace_paths), read_failures(failures_path)
    )


def _format_bytes(count: float) -> str:
    magnitude = abs(count)
    for unit, scale in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if magnitude >= scale:
            return f"{count / scale:.1f}{unit}"
    return f"{count:.0f}B"


def _format_seconds(seconds: float) -> str:
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> list[str]:
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(value).ljust(width) for value, width in zip(row, widths))
        )
    return lines


def render_health_report(health: RunHealth, top: int = 10) -> str:
    """Plain-text run-health report (the ``obs-report`` output)."""
    lines: list[str] = ["RUN HEALTH", "=========="]
    if health.untraced:
        lines.append(
            "untraced store: no trace sidecars were written (run with "
            "--trace for telemetry)"
        )
    lines.append(
        f"trace events: {health.n_events}   retries: {health.retries}   "
        f"recovered: {health.recovered}   poisoned: {health.poisoned}   "
        f"timeouts: {health.timeouts}   "
        f"heartbeats: {health.heartbeats}   "
        f"backoff: {_format_seconds(health.backoff_seconds)}"
    )
    if health.fairness:
        lines += [
            "",
            f"Fairness telemetry ({health.fairness_cells} cells audited)",
        ]
        rows = [
            (
                metric,
                str(int(stats["pairs"])),
                str(int(stats["widened"])),
                f"{stats['max_widening']:+.3f}",
            )
            for metric, stats in sorted(health.fairness.items())
        ]
        lines += _table(
            ("metric", "gap pairs", "widened by repair", "max widening"), rows
        )
        if health.worst_widenings:
            lines.append("worst gap widenings (repaired vs dirty):")
            for entry in health.worst_widenings[:5]:
                lines.append(
                    f"  {entry['coordinate']}: {entry['dirty_gap']:.3f} -> "
                    f"{entry['repaired_gap']:.3f} ({entry['widening']:+.3f})"
                )
    if health.alerts:
        lines += ["", f"Fairness alerts ({len(health.alerts)})"]
        for alert in health.alerts:
            lines.append(f"  [{alert['rule']}] {alert['message']}")
    if health.memory:
        lines += [
            "",
            f"Memory (profiled spans; peak RSS "
            f"{_format_bytes(health.peak_rss_bytes)})",
        ]
        rows = [
            (
                name,
                str(int(stats["count"])),
                _format_bytes(stats["mem_delta_bytes"]),
                _format_bytes(stats["peak_rss_bytes"]),
            )
            for name, stats in sorted(health.memory.items())
        ]
        lines += _table(("span", "samples", "net alloc", "peak rss"), rows)
    if health.phase_totals:
        lines += ["", "Phase totals (spans nest; compare siblings)"]
        rows = [
            (
                name,
                str(int(stats["count"])),
                _format_seconds(stats["seconds"]),
                _format_seconds(stats["seconds"] / stats["count"]),
            )
            for name, stats in sorted(
                health.phase_totals.items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]
        lines += _table(("phase", "count", "total", "mean"), rows)
    if health.model_seconds:
        lines += ["", "Cell time by model"]
        rows = [
            (model, _format_seconds(seconds))
            for model, seconds in sorted(
                health.model_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        lines += _table(("model", "total"), rows)
    if health.detector_stats:
        lines += ["", "Detectors"]
        rows = [
            (
                detector,
                str(int(stats["count"])),
                _format_seconds(stats["seconds"]),
                str(int(stats["flagged"])),
            )
            for detector, stats in sorted(
                health.detector_stats.items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]
        lines += _table(("detector", "applies", "total", "tuples flagged"), rows)
    if health.repair_stats:
        lines += ["", "Repairs"]
        rows = [
            (
                repair,
                str(int(stats["count"])),
                _format_seconds(stats["seconds"]),
            )
            for repair, stats in sorted(
                health.repair_stats.items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]
        lines += _table(("repair", "applies", "total"), rows)
    if health.tuning:
        lines += ["", "Hyperparameter tuning"]
        lines.append(
            f"  fit: {_format_seconds(health.tuning.get('fit_seconds', 0.0))}"
            f"   score: "
            f"{_format_seconds(health.tuning.get('score_seconds', 0.0))}"
            f"   fast-path searches: {int(health.tuning.get('fast_path', 0))}"
            f"   naive searches: {int(health.tuning.get('naive', 0))}"
        )
    if health.cache:
        lines += ["", "Caches"]
        rows = [
            (
                name,
                str(int(stats["hits"])),
                str(int(stats["misses"])),
                f"{stats['hit_rate'] * 100.0:.1f}%",
            )
            for name, stats in sorted(health.cache.items())
        ]
        lines += _table(("cache", "hits", "misses", "hit rate"), rows)
    if health.reuse:
        lines += [
            "",
            f"Incremental reuse (cells warm-started: {health.cells_warm_started})",
        ]
        rows = [
            (
                kind,
                str(int(stats["hits"])),
                str(int(stats["misses"])),
                f"{stats['hit_rate'] * 100.0:.1f}%",
            )
            for kind, stats in sorted(health.reuse.items())
        ]
        lines += _table(("reuse kind", "hits", "misses", "hit rate"), rows)
    if health.slowest_cells:
        lines += ["", f"Slowest cells (top {top})"]
        rows = [
            (
                "/".join(
                    str(cell.get(part, "?"))
                    for part in ("dataset", "error_type", "repetition")
                ),
                str(cell.get("model", "?")),
                str(cell.get("seed", "?")),
                _format_seconds(cell["seconds"]),
            )
            for cell in health.slowest_cells[:top]
        ]
        lines += _table(("unit", "model", "seed", "seconds"), rows)
    if health.faults:
        lines += ["", "Injected faults observed"]
        rows = [
            (kind, str(count)) for kind, count in sorted(health.faults.items())
        ]
        lines += _table(("kind", "fired"), rows)
    if health.failures:
        lines += ["", "Poisoned work units"]
        rows = [
            (
                "/".join(
                    str(failure.get(part, "?"))
                    for part in ("dataset", "error_type", "repetition")
                ),
                str(failure.get("attempts", "?")),
                str(failure.get("error", "?"))[:60],
            )
            for failure in health.failures
        ]
        lines += _table(("unit", "attempts", "error"), rows)
    return "\n".join(lines)
