"""Zero-dependency structured tracing core.

The tracer is a process-global object emitting JSONL *events* to a
:class:`TraceSink`. Three event kinds exist (see DESIGN.md §10):

- ``span`` — a named, nestable timed section. Opened with
  :func:`span`, closed by its ``with`` block; carries monotonic
  ``seconds``, free-form ``attrs``, accumulated ``counters`` and the
  ``path`` of enclosing span names (thread-local, so concurrent
  threads nest independently).
- ``event`` — a point occurrence (a retry, an injected fault, a
  poisoned unit) with free-form attributes.
- ``metric`` — an aggregated counter/gauge/histogram snapshot, flushed
  from the :class:`repro.obs.metrics.MetricsRegistry` owned by the
  tracer.

Every span and point event additionally carries ``ts`` — the
wall-clock epoch time at span *start* (event emission) — and ``w``,
the emitting worker track (``w{pid}``, or ``w{pid}.t{tid}`` off the
main thread, mirroring the executor's journal shard naming). The pair
is what turns post-hoc sidecars into a live telemetry plane: ``ts``
anchors the Chrome-trace export (:mod:`repro.obs.export`) and the
in-flight monitor's heartbeat-age stall detection
(:mod:`repro.obs.progress`); ``w`` assigns each event to its
per-worker track in both.

:func:`heartbeat` emits a ``heartbeat`` point event and *flushes* the
sink, so a read-only tail of the shard files (``python -m repro
monitor``) observes progress while the run is still in flight —
ordinary events stay buffered for throughput.

:mod:`repro.obs.profile` may install a pair of span hooks (see
:func:`install_span_hooks`) sampling memory telemetry at span
boundaries; with no hooks installed an enabled span pays one global
read, and a disabled span still costs one attribute lookup.

Disabled tracing costs one attribute lookup: every module-level helper
first reads ``_TRACER.enabled`` and returns a shared no-op object
without allocating anything. No event is buffered, no clock is read.

Worker processes of the parallel study executor call :func:`scoped`
to redirect the tracer at a per-process shard file
(``{stem}.trace.w{pid}.jsonl``) for the duration of one work unit —
the same shard-then-compact lifecycle the result journal uses. The
scope restores the previous configuration (and its buffer) on exit,
so in-process execution inside the parent never loses parent events.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.metrics import MetricsRegistry

#: Trace event schema version, stamped on every line.
SCHEMA_VERSION = 1


def track_id() -> str:
    """Worker track of the calling thread (``w{pid}[.t{tid}]``).

    Matches the executor's journal/trace shard naming: one track per
    worker process, one per worker thread under the thread backend.
    """
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"w{os.getpid()}"
    return f"w{os.getpid()}.t{thread.ident}"


#: Optional (on_enter, on_exit) span hooks — installed by
#: :mod:`repro.obs.profile` to sample memory at span boundaries.
_SPAN_HOOKS: "tuple[Callable[[Span], None], Callable[[Span], None]] | None" = None


def install_span_hooks(
    on_enter: "Callable[[Span], None]", on_exit: "Callable[[Span], None]"
) -> None:
    """Install the (single) pair of span boundary hooks."""
    global _SPAN_HOOKS
    _SPAN_HOOKS = (on_enter, on_exit)


def uninstall_span_hooks() -> None:
    """Remove any installed span boundary hooks."""
    global _SPAN_HOOKS
    _SPAN_HOOKS = None


class TraceSink:
    """Buffered JSONL event sink.

    Events are buffered in memory and appended to ``path`` whenever
    the buffer reaches ``flush_every`` events, on :meth:`flush` and on
    :meth:`close`. Each flush opens the file in append mode and closes
    it again, so a sink survives fork boundaries without sharing file
    handles between processes (each process must still write to its
    own path — the executor keys worker shards by pid).
    """

    def __init__(self, path: str | Path, flush_every: int = 256) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._path = Path(path)
        self._flush_every = flush_every
        self._buffer: list[str] = []
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        """The JSONL file this sink appends to."""
        return self._path

    def emit(self, event: dict[str, Any]) -> None:
        """Buffer one event (flushing when the buffer is full)."""
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._buffer.append(line)
            if len(self._buffer) >= self._flush_every:
                self._write_locked()

    def flush(self) -> None:
        """Append all buffered events to the file."""
        with self._lock:
            self._write_locked()

    def _write_locked(self) -> None:
        if not self._buffer:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a") as handle:
            handle.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def close(self) -> None:
        """Flush; the sink holds no persistent handle to close."""
        self.flush()


class Span:
    """One open span: a timed section with attributes and counters."""

    __slots__ = (
        "name",
        "attrs",
        "counters",
        "_tracer",
        "_started",
        "seconds",
        "ts",
        "_mem",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self._tracer = tracer
        self._started = 0.0
        self.seconds = 0.0
        #: Wall-clock epoch seconds at span start (set on ``__enter__``).
        self.ts = 0.0
        #: Scratch slot for the memory-profiling span hooks.
        self._mem: Any = None

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite span attributes."""
        self.attrs.update(attrs)
        return self

    def add(self, counter: str, amount: float = 1.0) -> "Span":
        """Accumulate a per-span counter."""
        self.counters[counter] = self.counters.get(counter, 0.0) + amount
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        if _SPAN_HOOKS is not None:
            _SPAN_HOOKS[0](self)
        self.ts = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._started
        if _SPAN_HOOKS is not None:
            _SPAN_HOOKS[1](self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def add(self, counter: str, amount: float = 1.0) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Process-global tracing state: enabled flag, sink, span stacks."""

    def __init__(self) -> None:
        self.enabled = False
        self._sink: TraceSink | None = None
        self.metrics = MetricsRegistry()
        self._local = threading.local()

    # -- configuration ---------------------------------------------------

    def configure(
        self, path: str | Path | None, enabled: bool = True
    ) -> None:
        """(Re)configure the tracer; resets buffers and metrics.

        ``path`` is the JSONL sink file (None disables even when
        ``enabled`` is True — there is nowhere to write).
        """
        self._sink = TraceSink(path) if path is not None else None
        self.enabled = bool(enabled and self._sink is not None)
        self.metrics = MetricsRegistry()
        self._local = threading.local()

    def shutdown(self) -> None:
        """Flush metrics and buffered events, then disable tracing."""
        self.flush()
        self.enabled = False
        self._sink = None

    def flush(self) -> None:
        """Flush the metrics registry and the sink to disk."""
        if self._sink is None:
            return
        for snapshot in self.metrics.drain():
            self._sink.emit({"v": SCHEMA_VERSION, "kind": "metric", **snapshot})
        self._sink.flush()

    @contextmanager
    def scoped(
        self, path: str | Path | None, enabled: bool = True
    ) -> Iterator[None]:
        """Temporarily redirect the tracer at another sink.

        Used by the parallel executor: a work unit running inside a
        pool worker (or in-process in the parent) traces into its own
        shard file, and the previous configuration — including any
        buffered-but-unflushed parent events and metrics — is restored
        afterwards. Scoped state is flushed on exit, even when the
        unit raises (injected crashes must not lose their events).
        """
        previous = (self.enabled, self._sink, self.metrics, self._local)
        self.configure(path, enabled=enabled)
        try:
            yield
        finally:
            self.flush()
            self.enabled, self._sink, self.metrics, self._local = previous

    # -- span stack ------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        path = "/".join([open_span.name for open_span in stack] + [span.name])
        event: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "kind": "span",
            "name": span.name,
            "path": path,
            "seconds": span.seconds,
            "ts": span.ts,
            "w": track_id(),
        }
        if span.attrs:
            event["attrs"] = span.attrs
        if span.counters:
            event["counters"] = span.counters
        if self._sink is not None:
            self._sink.emit(event)

    # -- emission --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span (no-op while disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point event (no-op while disabled)."""
        if not self.enabled or self._sink is None:
            return
        event: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "kind": "event",
            "name": name,
            "ts": time.time(),
            "w": track_id(),
        }
        if attrs:
            event["attrs"] = attrs
        self._sink.emit(event)

    def heartbeat(self, **attrs: Any) -> None:
        """Emit a ``heartbeat`` point event and flush it to disk.

        Unlike ordinary events — buffered for throughput — a heartbeat
        is immediately visible to a read-only tail of the sink file, so
        ``python -m repro monitor`` can observe liveness, per-cell
        progress and heartbeat age while the run is in flight. The
        flush also drains the metrics registry, keeping counters and
        gauges live too (snapshots merge deterministically at
        compaction, so eager draining never double-counts).
        """
        if not self.enabled or self._sink is None:
            return
        self.event("heartbeat", **attrs)
        self.flush()


#: The process-global tracer behind the module-level helpers.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def is_enabled() -> bool:
    """Whether tracing is currently on."""
    return _TRACER.enabled


def configure(path: str | Path | None, enabled: bool = True) -> None:
    """Point the global tracer at a JSONL sink file."""
    _TRACER.configure(path, enabled=enabled)


def shutdown() -> None:
    """Flush and disable the global tracer."""
    _TRACER.shutdown()


def flush() -> None:
    """Flush the global tracer's metrics and buffered events."""
    _TRACER.flush()


def scoped(path: str | Path | None, enabled: bool = True):
    """Temporarily redirect the global tracer (see :meth:`Tracer.scoped`)."""
    return _TRACER.scoped(path, enabled=enabled)


def span(name: str, **attrs: Any):
    """Open a span on the global tracer (one attribute lookup when off)."""
    if not _TRACER.enabled:
        return NOOP_SPAN
    return Span(_TRACER, name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit a point event on the global tracer."""
    if not _TRACER.enabled:
        return
    _TRACER.event(name, **attrs)


def heartbeat(**attrs: Any) -> None:
    """Emit a flushed heartbeat event on the global tracer."""
    if not _TRACER.enabled:
        return
    _TRACER.heartbeat(**attrs)


def counter(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment a registry counter on the global tracer."""
    if not _TRACER.enabled:
        return
    _TRACER.metrics.counter(name, amount, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a registry gauge on the global tracer."""
    if not _TRACER.enabled:
        return
    _TRACER.metrics.gauge(name, value, **labels)


def histogram(name: str, value: float, **labels: Any) -> None:
    """Observe a value into a registry histogram on the global tracer."""
    if not _TRACER.enabled:
        return
    _TRACER.metrics.histogram(name, value, **labels)
