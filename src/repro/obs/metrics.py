"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is deliberately minimal and merge-friendly: metrics are
keyed by ``(name, sorted labels)``, histograms use **fixed bucket
boundaries** (:data:`DURATION_BUCKETS` by default), and every snapshot
serialises to a flat JSON payload. Two snapshots of the same metric —
e.g. from two worker-process trace shards — therefore merge
**permutation-invariantly**: counters and histogram bucket counts sum
(commutative), and gauges keep the *maximum* value across snapshots —
the meaningful aggregate for the RSS/peak gauges the memory profiler
emits, and the only order-free choice when shard file names (and thus
read order) vary across backends (see :func:`merge_metric_events`,
which :meth:`repro.benchmark.ResultStore.compact_trace` applies when
folding worker shards into the run's ``trace.jsonl``). Within one
live registry a gauge still has last-write-wins semantics; a gauge
needing per-writer last values should carry a distinguishing label
(e.g. ``worker=w{pid}``).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

#: Default histogram boundaries (seconds): sub-millisecond to minutes.
#: An implicit +inf bucket catches everything beyond the last edge.
DURATION_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """In-memory metric accumulator attached to a tracer."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, tuple], float] = {}
        self._gauges: dict[tuple[str, tuple], float] = {}
        self._histograms: dict[tuple[str, tuple], dict[str, Any]] = {}

    def counter(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` to a monotonically increasing counter."""
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[(name, _label_key(labels))] = float(value)

    def histogram(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DURATION_BUCKETS,
        **labels: Any,
    ) -> None:
        """Observe ``value`` into a fixed-bucket histogram.

        All observations of one histogram must use the same bucket
        boundaries — the first observation pins them.
        """
        key = (name, _label_key(labels))
        state = self._histograms.get(key)
        if state is None:
            state = self._histograms[key] = {
                "buckets": tuple(buckets),
                "counts": [0] * (len(buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
        elif state["buckets"] != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} was created with different buckets"
            )
        index = _bucket_index(state["buckets"], value)
        state["counts"][index] += 1
        state["sum"] += float(value)
        state["count"] += 1

    def snapshot(self) -> list[dict[str, Any]]:
        """Serialisable snapshots, sorted by (type, name, labels)."""
        out: list[dict[str, Any]] = []
        for (name, labels), value in sorted(self._counters.items()):
            out.append(
                {
                    "type": "counter",
                    "name": name,
                    "labels": dict(labels),
                    "value": value,
                }
            )
        for (name, labels), value in sorted(self._gauges.items()):
            out.append(
                {
                    "type": "gauge",
                    "name": name,
                    "labels": dict(labels),
                    "value": value,
                }
            )
        for (name, labels), state in sorted(self._histograms.items()):
            out.append(
                {
                    "type": "histogram",
                    "name": name,
                    "labels": dict(labels),
                    "buckets": list(state["buckets"]),
                    "counts": list(state["counts"]),
                    "sum": state["sum"],
                    "count": state["count"],
                }
            )
        return out

    def drain(self) -> list[dict[str, Any]]:
        """Snapshot and reset, so repeated flushes never double-count."""
        out = self.snapshot()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        return out


def _bucket_index(buckets: tuple[float, ...], value: float) -> int:
    """Index of the first bucket with ``value <= edge`` (+inf last)."""
    if math.isnan(value):
        return len(buckets)
    for index, edge in enumerate(buckets):
        if value <= edge:
            return index
    return len(buckets)


def merge_metric_events(events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Merge ``metric`` trace events, invariantly under permutation.

    Counters with the same (name, labels) sum; histograms sum
    bucket-wise (boundaries must match — the registry pins them);
    gauges keep the **maximum** value across events. All three folds
    are commutative and associative, and the merged list is sorted by
    (type, name, labels) — so merging the same events in *any* order
    (worker shards read under any file-name permutation) produces the
    same output, which is what pins
    :meth:`repro.benchmark.ResultStore.compact_trace` byte-identical
    across backends whose shard names differ.
    """
    registry = MetricsRegistry()
    for event in events:
        labels = event.get("labels", {})
        kind = event.get("type")
        if kind == "counter":
            registry.counter(event["name"], event["value"], **labels)
        elif kind == "gauge":
            key = (event["name"], _label_key(labels))
            value = float(event["value"])
            previous = registry._gauges.get(key)
            # NaN-ignoring max: plain max() keeps whichever NaN comes
            # first, which would break permutation invariance
            if previous is None or math.isnan(previous):
                merged_value = value
            elif math.isnan(value):
                merged_value = previous
            else:
                merged_value = max(previous, value)
            registry._gauges[key] = merged_value
        elif kind == "histogram":
            key = (event["name"], _label_key(labels))
            state = registry._histograms.get(key)
            if state is None:
                registry._histograms[key] = {
                    "buckets": tuple(event["buckets"]),
                    "counts": list(event["counts"]),
                    "sum": float(event["sum"]),
                    "count": int(event["count"]),
                }
            elif state["buckets"] != tuple(event["buckets"]):
                raise ValueError(
                    f"histogram {event['name']!r} has mismatched buckets"
                )
            else:
                state["counts"] = [
                    a + b for a, b in zip(state["counts"], event["counts"])
                ]
                state["sum"] += float(event["sum"])
                state["count"] += int(event["count"])
    return registry.snapshot()
