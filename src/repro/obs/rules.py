"""Declarative fairness alert rules.

A rule is a small frozen dataclass — "the repair must not widen the
demographic-parity gap beyond ε", "no group's equalized-odds gap may
exceed ε", "the repair must not cost more than ε accuracy" — with
optional scope filters over the study coordinates. Rules are evaluated
in two places against the *same* per-cell fairness payloads:

- live, in :mod:`repro.obs.progress`, against the ``fairness`` events
  a traced run emits per evaluated cell, so ``python -m repro
  monitor`` surfaces "cleaning hurt group G on dataset D" while the
  run is still going; and
- post-hoc, in :mod:`repro.obs.audit` / :class:`repro.obs.RunHealth`,
  against the aggregated per-configuration gaps, for ``obs-audit`` and
  ``obs-report``.

Everything here is stdlib-only and operates on plain dict payloads of
the shape :func:`repro.obs.audit.cell_fairness` produces, so the rule
layer never imports the study pipeline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

#: Rule kinds understood by :func:`evaluate_gaps`.
RULE_KINDS = ("no_widening", "max_gap", "accuracy_floor")

#: Scope-filter fields a rule may pin (None = match any value).
SCOPE_FIELDS = ("dataset", "error_type", "detection", "repair", "model", "group")


@dataclass(frozen=True)
class AlertRule:
    """One declarative fairness constraint.

    Attributes:
        name: Identifier shown in alerts and reports.
        kind: ``no_widening`` (the repaired |gap| must not exceed the
            dirty |gap| by more than ``epsilon``), ``max_gap`` (the
            repaired |gap| must not exceed ``epsilon``), or
            ``accuracy_floor`` (repaired accuracy must not fall more
            than ``epsilon`` below the dirty accuracy).
        metric: Fairness-metric abbreviation the rule watches
            (``DP`` / ``EO`` / ``EOdds`` / ``PP``; ignored for
            ``accuracy_floor``).
        epsilon: The rule's tolerance.
        dataset / error_type / detection / repair / model / group:
            Optional scope filters; a None filter matches anything.
    """

    name: str
    kind: str = "no_widening"
    metric: str = "DP"
    epsilon: float = 0.10
    dataset: str | None = None
    error_type: str | None = None
    detection: str | None = None
    repair: str | None = None
    model: str | None = None
    group: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"unknown rule kind {self.kind!r}; expected one of {RULE_KINDS}"
            )
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")

    def matches(self, **coords: str | None) -> bool:
        """Whether the rule's scope filters accept these coordinates."""
        for field in SCOPE_FIELDS:
            want = getattr(self, field)
            if want is not None and field in coords and coords[field] != want:
                return False
        return True

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation (None filters omitted)."""
        payload = asdict(self)
        return {
            key: value
            for key, value in payload.items()
            if value is not None
        }


@dataclass(frozen=True)
class Alert:
    """One fired rule violation.

    Attributes:
        rule: Name of the rule that fired.
        coordinate: ``dataset/error_type/detection/repair/model[/group]``
            the violation was observed at (plus ``/metric`` for gap
            rules).
        observed: The offending value (widening, gap, or accuracy
            drop).
        limit: The rule's epsilon.
        message: Human-readable one-liner.
    """

    rule: str
    coordinate: str
    observed: float
    limit: float
    message: str

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "rule": self.rule,
            "coordinate": self.coordinate,
            "observed": self.observed,
            "limit": self.limit,
            "message": self.message,
        }


#: Conservative default rules: flag repairs that widen the headline
#: parity gaps by more than 10 points or cost more than 5 points of
#: accuracy. Alerts are informational — only ``obs-audit
#: --fail-on-fairness-regression`` turns fairness telemetry into an
#: exit code.
DEFAULT_RULES: tuple[AlertRule, ...] = (
    AlertRule(name="dp-not-widened", kind="no_widening", metric="DP", epsilon=0.10),
    AlertRule(
        name="eodds-not-widened", kind="no_widening", metric="EOdds", epsilon=0.10
    ),
    AlertRule(name="accuracy-not-collapsed", kind="accuracy_floor", epsilon=0.05),
)


def evaluate_gaps(
    rules: Sequence[AlertRule],
    *,
    dataset: str,
    error_type: str,
    detection: str,
    repair: str,
    model: str,
    gaps: Mapping[str, Mapping[str, Sequence[float | None]]],
    dirty_acc: float | None = None,
    repaired_acc: float | None = None,
) -> list[Alert]:
    """Evaluate rules against one cell's (or configuration's) gaps.

    ``gaps`` maps group key → metric abbreviation → ``(dirty,
    repaired)`` absolute-disparity pair; None values (a metric
    undefined on a tiny group) never fire a rule. Returns the fired
    alerts in deterministic (rule, coordinate) order.
    """
    coordinate = f"{dataset}/{error_type}/{detection}/{repair}/{model}"
    coords = {
        "dataset": dataset,
        "error_type": error_type,
        "detection": detection,
        "repair": repair,
        "model": model,
    }
    alerts: list[Alert] = []
    for rule in rules:
        if rule.kind == "accuracy_floor":
            if not rule.matches(**coords):
                continue
            if dirty_acc is None or repaired_acc is None:
                continue
            drop = dirty_acc - repaired_acc
            if drop > rule.epsilon:
                alerts.append(
                    Alert(
                        rule=rule.name,
                        coordinate=coordinate,
                        observed=drop,
                        limit=rule.epsilon,
                        message=(
                            f"repair cost {drop:.3f} accuracy at {coordinate} "
                            f"(limit {rule.epsilon:.3f})"
                        ),
                    )
                )
            continue
        for group in sorted(gaps):
            if not rule.matches(group=group, **coords):
                continue
            pair = gaps[group].get(rule.metric)
            if pair is None:
                continue
            dirty, repaired = pair[0], pair[1]
            if repaired is None:
                continue
            where = f"{coordinate}/{group}/{rule.metric}"
            if rule.kind == "max_gap":
                observed = abs(repaired)
                if observed > rule.epsilon:
                    alerts.append(
                        Alert(
                            rule=rule.name,
                            coordinate=where,
                            observed=observed,
                            limit=rule.epsilon,
                            message=(
                                f"{rule.metric} gap {observed:.3f} exceeds "
                                f"{rule.epsilon:.3f} at {where}"
                            ),
                        )
                    )
            else:  # no_widening
                if dirty is None:
                    continue
                widening = abs(repaired) - abs(dirty)
                if widening > rule.epsilon:
                    alerts.append(
                        Alert(
                            rule=rule.name,
                            coordinate=where,
                            observed=widening,
                            limit=rule.epsilon,
                            message=(
                                f"repair widened the {rule.metric} gap by "
                                f"{widening:.3f} at {where} "
                                f"(limit {rule.epsilon:.3f})"
                            ),
                        )
                    )
    alerts.sort(key=lambda alert: (alert.rule, alert.coordinate))
    return alerts


def dedupe_alerts(alerts: Iterable[Alert]) -> list[Alert]:
    """Keep the worst alert per (rule, coordinate), sorted."""
    worst: dict[tuple[str, str], Alert] = {}
    for alert in alerts:
        key = (alert.rule, alert.coordinate)
        kept = worst.get(key)
        if kept is None or alert.observed > kept.observed:
            worst[key] = alert
    return [worst[key] for key in sorted(worst)]


def load_rules(path: str | Path) -> tuple[AlertRule, ...]:
    """Load a JSON rule file: a list of :class:`AlertRule` dicts."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"rule file {path} must hold a JSON list of rules")
    rules = []
    for index, entry in enumerate(payload):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ValueError(f"rule #{index} in {path} must be a dict with a name")
        unknown = set(entry) - {"name", "kind", "metric", "epsilon", *SCOPE_FIELDS}
        if unknown:
            raise ValueError(f"rule #{index} in {path}: unknown fields {sorted(unknown)}")
        rules.append(AlertRule(**entry))
    return tuple(rules)
