"""Chrome Trace Event Format export of JSONL trace sidecars.

:func:`to_chrome_trace` converts the events of a traced run into the
`Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto (ui.perfetto.dev), ``chrome://tracing`` and
speedscope:

- every ``span`` event becomes a complete (``ph: "X"``) slice with
  microsecond ``ts``/``dur``; slices sharing a track nest by time
  containment, so the runner's ``unit > cell > tune`` hierarchy
  renders as a flame chart without any extra bookkeeping;
- every point ``event`` becomes a thread-scoped instant (``ph: "i"``);
- each worker track ``w{pid}[.t{tid}]`` maps to a (pid, tid) pair with
  ``process_name``/``thread_name`` metadata (``ph: "M"``) records, so
  a multi-worker study shows one named track per worker;
- merged ``metric`` counters and gauges become counter (``ph: "C"``)
  samples on a dedicated track — a final-value sample per metric,
  since compacted metric snapshots carry no timestamps of their own.

Timestamps are re-based to the earliest event in the trace (Perfetto
handles epoch microseconds, but a run-relative timeline reads far
better). Events predating the ``ts`` field (older traces) have no
position on the timeline and are skipped; the count is reported in the
trace-level ``otherData`` so exports are never silently lossy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.metrics import merge_metric_events
from repro.obs.report import read_trace_events

#: Formats :func:`export_trace` understands.
EXPORT_FORMATS = ("chrome",)


def _track_ids(track: str) -> tuple[int, int]:
    """Map a ``w{pid}[.t{tid}]`` track to Chrome (pid, tid) numbers."""
    if not track.startswith("w"):
        return (0, 0)
    body = track[1:]
    if ".t" in body:
        pid_text, tid_text = body.split(".t", 1)
    else:
        pid_text, tid_text = body, "0"
    try:
        return (int(pid_text), int(tid_text))
    except ValueError:
        return (0, 0)


def _span_args(event: dict[str, Any]) -> dict[str, Any]:
    args: dict[str, Any] = {}
    args.update(event.get("attrs", {}))
    for counter, value in event.get("counters", {}).items():
        args[f"counter:{counter}"] = value
    if "path" in event:
        args["path"] = event["path"]
    return args


def to_chrome_trace(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert parsed trace events to a Chrome trace JSON object."""
    events = list(events)
    timestamped = [
        event
        for event in events
        if event.get("kind") in ("span", "event")
        and float(event.get("ts", 0.0)) > 0.0
    ]
    skipped = sum(
        1 for event in events if event.get("kind") in ("span", "event")
    ) - len(timestamped)
    origin = min(
        (float(event["ts"]) for event in timestamped), default=0.0
    )

    def rebase(ts: float) -> float:
        return (ts - origin) * 1e6

    out: list[dict[str, Any]] = []
    tracks: dict[str, tuple[int, int]] = {}
    last_us = 0.0
    for event in timestamped:
        track = str(event.get("w", "w0"))
        pid, tid = tracks.setdefault(track, _track_ids(track))
        ts_us = rebase(float(event["ts"]))
        if event["kind"] == "span":
            duration_us = max(0.0, float(event.get("seconds", 0.0)) * 1e6)
            out.append(
                {
                    "ph": "X",
                    "name": str(event.get("name", "?")),
                    "cat": "span",
                    "ts": ts_us,
                    "dur": duration_us,
                    "pid": pid,
                    "tid": tid,
                    "args": _span_args(event),
                }
            )
            last_us = max(last_us, ts_us + duration_us)
        else:
            out.append(
                {
                    "ph": "i",
                    "name": str(event.get("name", "?")),
                    "cat": "event",
                    "s": "t",
                    "ts": ts_us,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(event.get("attrs", {})),
                }
            )
            last_us = max(last_us, ts_us)
    for track in sorted(tracks):
        pid, tid = tracks[track]
        process = track.split(".t", 1)[0]
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for merged in merge_metric_events(
        [event for event in events if event.get("kind") == "metric"]
    ):
        if merged["type"] == "histogram":
            continue
        labels = merged.get("labels", {})
        suffix = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        out.append(
            {
                "ph": "C",
                "name": f"{merged['name']}{suffix}",
                "cat": "metric",
                "ts": last_us,
                "pid": 0,
                "tid": 0,
                "args": {"value": merged["value"]},
            }
        )
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "skipped_untimestamped_events": skipped,
        },
    }


def export_trace(
    trace_paths: Sequence[str | Path],
    output_path: str | Path,
    format: str = "chrome",
) -> int:
    """Export trace files to ``output_path``; returns the event count.

    ``format`` currently supports ``"chrome"`` only (the Perfetto /
    speedscope-compatible Trace Event Format).
    """
    if format not in EXPORT_FORMATS:
        raise ValueError(
            f"unknown export format {format!r}; valid: {EXPORT_FORMATS}"
        )
    payload = to_chrome_trace(read_trace_events(trace_paths))
    output_path = Path(output_path)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    with output_path.open("w") as handle:
        json.dump(payload, handle, sort_keys=True)
    return len(payload["traceEvents"])
