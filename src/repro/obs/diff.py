"""Cross-run regression diffs over trace sidecars.

:func:`diff_runs` compares two traced runs — span-duration
distributions (count / total / mean / p50 / p95 per span name), merged
metric counters, and cache/reuse hit rates — and flags changes that
clear **noise-aware thresholds**: a change is reported only when it is
both relatively large (``threshold``, default 10%) *and* absolutely
large (``min_seconds`` for durations, ``min_count`` for counters,
``min_rate`` percentage points for hit rates). Tiny spans and
low-volume counters jitter wildly between runs; requiring both bounds
keeps ``python -m repro obs-diff`` quiet on noise while still
catching "cell p95 regressed 2×" or "incremental reuse rate dropped".

The comparison is trace-only: it never opens the result store, so two
runs can be diffed from their ``trace.jsonl`` sidecars alone (e.g. CI
artifacts of two branches).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.obs.report import build_health, read_trace_events

#: Default relative-change threshold for flagging a regression.
DEFAULT_THRESHOLD = 0.10

#: Default absolute floors under which changes are noise, per family.
DEFAULT_MIN_SECONDS = 0.005
DEFAULT_MIN_COUNT = 1.0
DEFAULT_MIN_RATE = 0.05


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted list."""
    index = min(len(values) - 1, max(0, math.ceil(fraction * len(values)) - 1))
    return values[index]


def span_stats(events: Sequence[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """Per span name: count, total/mean seconds, p50 and p95."""
    durations: dict[str, list[float]] = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        durations.setdefault(str(event.get("name", "?")), []).append(
            float(event.get("seconds", 0.0))
        )
    stats: dict[str, dict[str, float]] = {}
    for name, values in durations.items():
        values.sort()
        total = sum(values)
        stats[name] = {
            "count": float(len(values)),
            "total": total,
            "mean": total / len(values),
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
        }
    return stats


@dataclass
class DiffEntry:
    """One compared quantity across the two runs.

    ``ratio`` is ``b / a`` (``inf`` for a new quantity, 0 for a
    vanished one); ``flagged`` marks entries clearing both the
    relative and the absolute threshold.
    """

    kind: str
    name: str
    a: float
    b: float
    delta: float
    ratio: float
    flagged: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "a": self.a,
            "b": self.b,
            "delta": self.delta,
            "ratio": self.ratio,
            "flagged": self.flagged,
        }


@dataclass
class RunDiff:
    """Structured comparison of two traced runs (A = baseline, B = new)."""

    entries: list[DiffEntry] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def flagged(self) -> list[DiffEntry]:
        """Entries whose change cleared the noise thresholds."""
        return [entry for entry in self.entries if entry.flagged]

    def to_json(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "flagged": len(self.flagged),
            "entries": [entry.to_json() for entry in self.entries],
        }


def _entry(
    kind: str,
    name: str,
    a: float,
    b: float,
    threshold: float,
    min_abs: float,
) -> DiffEntry:
    delta = b - a
    if a == 0.0:
        ratio = math.inf if b != 0.0 else 1.0
    else:
        ratio = b / a
    relative = abs(delta) / abs(a) if a != 0.0 else math.inf if b else 0.0
    flagged = abs(delta) >= min_abs and relative >= threshold
    return DiffEntry(
        kind=kind, name=name, a=a, b=b, delta=delta, ratio=ratio, flagged=flagged
    )


def diff_runs(
    events_a: Sequence[dict[str, Any]],
    events_b: Sequence[dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    min_count: float = DEFAULT_MIN_COUNT,
    min_rate: float = DEFAULT_MIN_RATE,
) -> RunDiff:
    """Compare two runs' trace events (A = baseline, B = candidate)."""
    diff = RunDiff(threshold=threshold)
    stats_a = span_stats(events_a)
    stats_b = span_stats(events_b)
    for name in sorted(set(stats_a) | set(stats_b)):
        empty = {"count": 0.0, "total": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0}
        a = stats_a.get(name, empty)
        b = stats_b.get(name, empty)
        for quantile in ("mean", "p50", "p95"):
            diff.entries.append(
                _entry(
                    "span",
                    f"{name}.{quantile}_seconds",
                    a[quantile],
                    b[quantile],
                    threshold,
                    min_seconds,
                )
            )
        diff.entries.append(
            _entry("span", f"{name}.count", a["count"], b["count"], threshold, min_count)
        )
    health_a = build_health(list(events_a))
    health_b = build_health(list(events_b))
    for name in sorted(set(health_a.counters) | set(health_b.counters)):
        diff.entries.append(
            _entry(
                "counter",
                name,
                health_a.counters.get(name, 0.0),
                health_b.counters.get(name, 0.0),
                threshold,
                min_count,
            )
        )
    for family, a_rates, b_rates in (
        ("cache", health_a.cache, health_b.cache),
        ("reuse", health_a.reuse, health_b.reuse),
    ):
        for name in sorted(set(a_rates) | set(b_rates)):
            rate_a = a_rates.get(name, {}).get("hit_rate", 0.0)
            rate_b = b_rates.get(name, {}).get("hit_rate", 0.0)
            rate_a = 0.0 if math.isnan(rate_a) else rate_a
            rate_b = 0.0 if math.isnan(rate_b) else rate_b
            # hit rates compare in absolute percentage points: a
            # relative threshold on a near-zero rate would flag noise
            delta = rate_b - rate_a
            diff.entries.append(
                DiffEntry(
                    kind=family,
                    name=f"{name}.hit_rate",
                    a=rate_a,
                    b=rate_b,
                    delta=delta,
                    ratio=rate_b / rate_a if rate_a else (math.inf if rate_b else 1.0),
                    flagged=abs(delta) >= min_rate,
                )
            )
    return diff


def diff_stores(
    trace_paths_a: Sequence[str | Path],
    trace_paths_b: Sequence[str | Path],
    **kwargs: Any,
) -> RunDiff:
    """Diff two runs from their trace files on disk."""
    return diff_runs(
        read_trace_events(trace_paths_a),
        read_trace_events(trace_paths_b),
        **kwargs,
    )


def _format_value(kind: str, value: float) -> str:
    if kind in ("cache", "reuse"):
        return f"{value * 100.0:.1f}%"
    if math.isinf(value):
        return "inf"
    return f"{value:.4g}"


def render_diff(diff: RunDiff, all_entries: bool = False) -> str:
    """Plain-text diff report (the ``obs-diff`` output).

    By default only flagged entries print; ``all_entries`` includes
    the full comparison.
    """
    lines = [
        "RUN DIFF (A = baseline, B = candidate)",
        "======================================",
        f"compared: {len(diff.entries)} quantities   "
        f"flagged: {len(diff.flagged)}   "
        f"threshold: {diff.threshold * 100.0:.0f}%",
    ]
    entries = diff.entries if all_entries else diff.flagged
    if not entries:
        lines.append("no changes beyond the noise thresholds")
        return "\n".join(lines)
    lines.append("")
    width = max(len(f"{e.kind}:{e.name}") for e in entries)
    for entry in entries:
        direction = "+" if entry.delta >= 0 else ""
        marker = "  <-- flagged" if entry.flagged and all_entries else ""
        ratio = (
            "new" if math.isinf(entry.ratio) else f"{entry.ratio:.2f}x"
        )
        lines.append(
            f"{(entry.kind + ':' + entry.name).ljust(width)}  "
            f"A={_format_value(entry.kind, entry.a)}  "
            f"B={_format_value(entry.kind, entry.b)}  "
            f"({direction}{_format_value(entry.kind, entry.delta)}, {ratio})"
            f"{marker}"
        )
    return "\n".join(lines)
