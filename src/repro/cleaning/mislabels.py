"""Predicted label-error detection via confident learning.

Reimplements the confident-learning procedure of Northcutt et al.
(the algorithm behind the cleanlab library the paper uses), for binary
tasks with a logistic-regression base classifier:

1. Estimate out-of-fold predicted probabilities for every example.
2. Compute per-class confidence thresholds ``t_j`` — the mean
   predicted probability of class ``j`` among examples *labelled* j.
3. Build the confident joint: an example labelled ``i`` counts toward
   ``C[i][j]`` for the class ``j`` with the largest probability among
   those exceeding their thresholds.
4. Estimate the number of label errors per off-diagonal cell and
   select that many examples, ranked by predicted probability of the
   *other* class ("prune by noise rank").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.ml.base import BaseClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.model_selection import cross_val_predict_proba


@dataclass(frozen=True)
class MislabelResult:
    """Outcome of confident-learning mislabel detection.

    Attributes:
        row_mask: True where the example's label is predicted wrong.
        confident_joint: 2x2 counts C[given_label][true_label].
        out_of_fold_proba: P(y=1 | x) for every example.
        thresholds: Per-class confidence thresholds (t_0, t_1).
    """

    row_mask: np.ndarray
    confident_joint: np.ndarray
    out_of_fold_proba: np.ndarray
    thresholds: tuple[float, float]

    @property
    def n_flagged(self) -> int:
        """Number of flagged examples."""
        return int(self.row_mask.sum())

    def predicted_false_positives(self, labels: np.ndarray) -> np.ndarray:
        """Flagged examples whose *given* label is positive (predicted true label 0)."""
        labels = np.asarray(labels).astype(np.int64)
        return self.row_mask & (labels == 1)

    def predicted_false_negatives(self, labels: np.ndarray) -> np.ndarray:
        """Flagged examples whose *given* label is negative (predicted true label 1)."""
        labels = np.asarray(labels).astype(np.int64)
        return self.row_mask & (labels == 0)


class ConfidentLearningDetector:
    """Binary confident-learning detector.

    Args:
        base_classifier: Classifier producing the out-of-fold
            probability estimates; defaults to logistic regression as
            in the paper.
        n_splits: Cross-validation folds for the probability estimates.
        random_state: Seed for fold assignment.
    """

    name = "mislabels"

    def __init__(
        self,
        base_classifier: BaseClassifier | None = None,
        n_splits: int = 5,
        random_state: int = 0,
    ) -> None:
        self.base_classifier = base_classifier or LogisticRegressionClassifier()
        self.n_splits = n_splits
        self.random_state = random_state

    def detect(self, X: np.ndarray, labels: np.ndarray) -> MislabelResult:
        """Run detection over a feature matrix and its given labels."""
        with obs.span(
            "detect", detector="cleanlab", rows=int(np.asarray(X).shape[0])
        ) as span:
            result = self._detect(X, labels)
            span.add("flagged", result.n_flagged)
        return result

    def _detect(self, X: np.ndarray, labels: np.ndarray) -> MislabelResult:
        X = np.asarray(X, dtype=np.float64)
        labels = np.asarray(labels).astype(np.int64)
        if len(labels) != X.shape[0]:
            raise ValueError(
                f"length mismatch: X has {X.shape[0]} rows, labels {len(labels)}"
            )
        if np.unique(labels).size < 2:
            # a single-class dataset has no estimable label noise
            return MislabelResult(
                row_mask=np.zeros(len(labels), dtype=bool),
                confident_joint=np.zeros((2, 2)),
                out_of_fold_proba=np.full(len(labels), labels.mean(), dtype=float),
                thresholds=(0.5, 0.5),
            )
        p1 = cross_val_predict_proba(
            self.base_classifier,
            X,
            labels,
            n_splits=self.n_splits,
            random_state=self.random_state,
        )
        p = np.column_stack([1.0 - p1, p1])

        thresholds = np.array(
            [p[labels == j, j].mean() for j in (0, 1)], dtype=np.float64
        )

        # confident joint: argmax over classes whose probability clears
        # its threshold
        above = p >= thresholds[None, :]
        masked = np.where(above, p, -np.inf)
        confident_class = np.argmax(masked, axis=1)
        has_confident = above.any(axis=1)
        joint = np.zeros((2, 2), dtype=np.float64)
        for i in (0, 1):
            for j in (0, 1):
                joint[i, j] = np.sum(
                    has_confident & (labels == i) & (confident_class == j)
                )

        # prune by noise rank: for each off-diagonal cell (i -> j),
        # pick the n_ij examples labelled i most confidently of class j.
        # The raw confident-joint counts are used directly; calibrating
        # rows to the label counts systematically inflates the error
        # estimate when many examples clear no threshold.
        row_mask = np.zeros(len(labels), dtype=bool)
        for i, j in ((0, 1), (1, 0)):
            n_errors = int(round(joint[i, j]))
            if n_errors <= 0:
                continue
            candidates = np.nonzero(labels == i)[0]
            ranked = candidates[np.argsort(-p[candidates, j], kind="mergesort")]
            row_mask[ranked[:n_errors]] = True
        return MislabelResult(
            row_mask=row_mask,
            confident_joint=joint,
            out_of_fold_proba=p1,
            thresholds=(float(thresholds[0]), float(thresholds[1])),
        )
