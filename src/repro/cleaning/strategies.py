"""Registries of the detection/repair combinations used in the study.

The paper evaluates:

- missing values → 6 imputation variants
  (numeric mean/median/mode × categorical mode/dummy),
- outliers → 3 detectors (sd, iqr, isolation forest) × 3 repairs
  (mean/median/mode replacement),
- mislabels → confident learning detection + label flipping.
"""

from __future__ import annotations

from repro.cleaning.detection import (
    IqrOutlierDetector,
    IsolationForestOutlierDetector,
    SdOutlierDetector,
)
from repro.cleaning.repair import (
    CategoricalImputation,
    MissingValueRepair,
    NumericImputation,
    OutlierRepair,
)


def missing_value_repairs() -> dict[str, MissingValueRepair]:
    """Fresh instances of the six imputation variants, keyed by name."""
    repairs = {}
    for numeric in NumericImputation:
        for categorical in CategoricalImputation:
            repair = MissingValueRepair(numeric=numeric, categorical=categorical)
            repairs[repair.name] = repair
    return repairs


def outlier_detectors(random_state: int = 0) -> dict[str, object]:
    """Fresh instances of the three outlier detectors, keyed by name."""
    return {
        "outliers_sd": SdOutlierDetector(),
        "outliers_iqr": IqrOutlierDetector(),
        "outliers_if": IsolationForestOutlierDetector(random_state=random_state),
    }


def outlier_repairs() -> dict[str, OutlierRepair]:
    """Fresh instances of the three outlier repairs, keyed by name."""
    repairs = {}
    for statistic in NumericImputation:
        repair = OutlierRepair(statistic=statistic)
        repairs[repair.name] = repair
    return repairs


def repair_method_name(detection: str, repair: str) -> str:
    """Canonical result-store name for a (detection, repair) combination."""
    return f"{detection}/{repair}"


# Stable name lists (useful for result-table ordering).
MISSING_VALUE_REPAIRS: tuple[str, ...] = tuple(missing_value_repairs())
OUTLIER_DETECTORS: tuple[str, ...] = ("outliers_sd", "outliers_iqr", "outliers_if")
OUTLIER_REPAIRS: tuple[str, ...] = tuple(outlier_repairs())
