"""Automated repair methods.

Repairs mirror the paper's setup: missing values are imputed with
column statistics (mean/median/mode for numeric, mode or a constant
"dummy" for categorical); outlier cells are replaced by a statistic of
the *non-flagged* values of their column; predicted label errors are
repaired by flipping the label.

Imputation statistics are always *fitted* on a training table and then
applied to both train and test tables, so no test-set information
leaks into the repair.
"""

from __future__ import annotations

import enum

import numpy as np

from repro import obs
from repro.cleaning.detection import DetectionResult
from repro.tabular import Table

DUMMY_VALUE = "__missing__"


class NumericImputation(enum.Enum):
    """Statistic used to impute numeric columns."""

    MEAN = "mean"
    MEDIAN = "median"
    MODE = "mode"


class CategoricalImputation(enum.Enum):
    """Strategy used to impute categorical columns."""

    MODE = "mode"
    DUMMY = "dummy"


def _numeric_statistic(values: np.ndarray, strategy: NumericImputation) -> float:
    """Compute the fill statistic over non-NaN values (0.0 if all missing)."""
    finite = values[~np.isnan(values)]
    if finite.size == 0:
        return 0.0
    if strategy is NumericImputation.MEAN:
        return float(finite.mean())
    if strategy is NumericImputation.MEDIAN:
        return float(np.median(finite))
    uniques, counts = np.unique(finite, return_counts=True)
    return float(uniques[np.argmax(counts)])


def _categorical_mode(column) -> str:
    """Most frequent non-missing category (DUMMY_VALUE if all missing).

    Runs on the dictionary-encoded codes: one ``bincount`` over the
    column's pool, tie-broken to the lexicographically smallest value
    (matching the historical dict-counting implementation).
    """
    mode = column.mode()
    return DUMMY_VALUE if mode is None else mode


class MissingValueRepair:
    """Impute missing values with statistics fitted on a training table.

    Args:
        numeric: Imputation statistic for numeric columns.
        categorical: Imputation strategy for categorical columns.
    """

    def __init__(
        self,
        numeric: NumericImputation = NumericImputation.MEAN,
        categorical: CategoricalImputation = CategoricalImputation.DUMMY,
    ) -> None:
        self.numeric = numeric
        self.categorical = categorical
        self._numeric_fill: dict[str, float] | None = None
        self._categorical_fill: dict[str, str] | None = None

    @property
    def name(self) -> str:
        """CleanML-style repair-method name, e.g. ``impute_mean_dummy``."""
        return f"impute_{self.numeric.value}_{self.categorical.value}"

    def fit(self, table: Table) -> "MissingValueRepair":
        """Learn fill values from ``table``."""
        self._numeric_fill = {
            name: _numeric_statistic(table.column(name), self.numeric)
            for name in table.schema.numeric_names()
        }
        if self.categorical is CategoricalImputation.DUMMY:
            self._categorical_fill = {
                name: DUMMY_VALUE for name in table.schema.categorical_names()
            }
        else:
            self._categorical_fill = {
                name: _categorical_mode(table.categorical(name))
                for name in table.schema.categorical_names()
            }
        return self

    def transform(self, table: Table) -> Table:
        """Return a copy of ``table`` with missing values imputed."""
        if self._numeric_fill is None or self._categorical_fill is None:
            raise RuntimeError("MissingValueRepair is not fitted")
        with obs.span("repair", repair=self.name, rows=table.n_rows):
            return self._transform(table)

    def _transform(self, table: Table) -> Table:
        result = table
        for name, fill in self._numeric_fill.items():
            if name not in table.schema:
                continue
            values = table.column(name)
            mask = np.isnan(values)
            if mask.any():
                values[mask] = fill
                result = result.with_numeric_column(name, values)
        for name, fill in self._categorical_fill.items():
            if name not in table.schema:
                continue
            column = result.categorical(name)
            if column.missing_mask().any():
                result = result.with_categorical_column(
                    name, column.fill_missing(fill)
                )
        return result

    def fit_transform(self, table: Table) -> Table:
        return self.fit(table).transform(table)


class OutlierRepair:
    """Replace flagged outlier cells with a statistic of the clean cells.

    The statistic for each column is fitted from the training table's
    *non-flagged* values, then applied to flagged cells of any table.
    """

    def __init__(self, statistic: NumericImputation = NumericImputation.MEAN) -> None:
        self.statistic = statistic
        self._fill: dict[str, float] | None = None

    @property
    def name(self) -> str:
        """CleanML-style repair-method name, e.g. ``repair_outliers_mean``."""
        return f"repair_outliers_{self.statistic.value}"

    def fit(self, table: Table, detection: DetectionResult) -> "OutlierRepair":
        """Learn replacement statistics from the non-flagged cells."""
        self._fill = {}
        for name in table.schema.numeric_names():
            values = table.column(name)
            flagged = detection.cell_masks.get(
                name, np.zeros(table.n_rows, dtype=bool)
            )
            clean = values[~flagged]
            self._fill[name] = _numeric_statistic(clean, self.statistic)
        return self

    def transform(self, table: Table, detection: DetectionResult) -> Table:
        """Return a copy of ``table`` with flagged cells replaced."""
        if self._fill is None:
            raise RuntimeError("OutlierRepair is not fitted")
        if detection.row_mask.shape != (table.n_rows,):
            raise ValueError(
                f"detection covers {detection.row_mask.shape[0]} rows, "
                f"table has {table.n_rows}"
            )
        with obs.span("repair", repair=self.name, rows=table.n_rows):
            return self._transform(table, detection)

    def _transform(self, table: Table, detection: DetectionResult) -> Table:
        result = table
        for name, fill in self._fill.items():
            if name not in table.schema:
                continue
            flagged = detection.cell_masks.get(name)
            if flagged is None or not flagged.any():
                continue
            values = result.column(name)
            values[flagged] = fill
            result = result.with_numeric_column(name, values)
        return result

    def fit_transform(self, table: Table, detection: DetectionResult) -> Table:
        return self.fit(table, detection).transform(table, detection)


class LabelFlipRepair:
    """Flip the 0/1 labels of flagged examples (training data only)."""

    name = "flip_labels"

    def repair(self, labels: np.ndarray, row_mask: np.ndarray) -> np.ndarray:
        """Return a copy of ``labels`` with flagged entries flipped."""
        labels = np.asarray(labels).astype(np.int64)
        row_mask = np.asarray(row_mask, dtype=bool)
        if labels.shape != row_mask.shape:
            raise ValueError(
                f"shape mismatch: labels {labels.shape} vs mask {row_mask.shape}"
            )
        with obs.span("repair", repair=self.name, rows=labels.size) as span:
            repaired = labels.copy()
            repaired[row_mask] = 1 - repaired[row_mask]
            span.add("flipped", int(row_mask.sum()))
        return repaired
