"""Error detection and automated repair.

Implements the paper's five error-detection strategies (missing
values, outliers via standard-deviation / interquartile / isolation-
forest rules, and predicted label errors via confident learning) and
the standard repair methods applied to flagged tuples.
"""

from repro.cleaning.detection import (
    DetectionResult,
    IqrOutlierDetector,
    IsolationForestOutlierDetector,
    MissingValueDetector,
    SdOutlierDetector,
)
from repro.cleaning.mislabels import ConfidentLearningDetector, MislabelResult
from repro.cleaning.repair import (
    CategoricalImputation,
    LabelFlipRepair,
    MissingValueRepair,
    NumericImputation,
    OutlierRepair,
)
from repro.cleaning.strategies import (
    MISSING_VALUE_REPAIRS,
    OUTLIER_DETECTORS,
    OUTLIER_REPAIRS,
    repair_method_name,
)

__all__ = [
    "DetectionResult",
    "MissingValueDetector",
    "SdOutlierDetector",
    "IqrOutlierDetector",
    "IsolationForestOutlierDetector",
    "ConfidentLearningDetector",
    "MislabelResult",
    "NumericImputation",
    "CategoricalImputation",
    "MissingValueRepair",
    "OutlierRepair",
    "LabelFlipRepair",
    "MISSING_VALUE_REPAIRS",
    "OUTLIER_DETECTORS",
    "OUTLIER_REPAIRS",
    "repair_method_name",
]
