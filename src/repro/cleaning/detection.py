"""Error-detection strategies.

Each detector produces a :class:`DetectionResult` holding a row-level
mask (was this tuple flagged?) and, for cell-level strategies, a
per-column mask of the offending cells. The paper's parameters are the
defaults: 3 standard deviations, IQR factor 1.5, isolation-forest
contamination 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.ml.isolation import IsolationForest
from repro.tabular import Table


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running an error detector over a table.

    Attributes:
        strategy: Name of the detection strategy.
        row_mask: Boolean array, True where the tuple is flagged.
        cell_masks: Per-column boolean masks of flagged cells; empty
            for tuple-level strategies (isolation forest, missing rows).
    """

    strategy: str
    row_mask: np.ndarray
    cell_masks: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_flagged(self) -> int:
        """Number of flagged tuples."""
        return int(self.row_mask.sum())

    def flagged_fraction(self) -> float:
        """Fraction of tuples flagged (NaN on an empty table)."""
        if self.row_mask.size == 0:
            return float("nan")
        return float(self.row_mask.mean())


class MissingValueDetector:
    """Flags tuples containing NULL/NaN in any column."""

    name = "missing_values"

    def detect(self, table: Table) -> DetectionResult:
        with obs.span("detect", detector=self.name, rows=table.n_rows) as span:
            cell_masks = {
                name: table.is_missing(name) for name in table.column_names
            }
            row_mask = np.zeros(table.n_rows, dtype=bool)
            for mask in cell_masks.values():
                row_mask |= mask
            result = DetectionResult(self.name, row_mask, cell_masks)
            span.add("flagged", result.n_flagged)
        return result


class _IntervalOutlierDetector:
    """Shared fit/apply plumbing for interval-based univariate detectors.

    ``fit`` learns per-column [low, high] validity intervals from a
    (training) table; ``apply`` flags cells outside those intervals in
    any table with the same numeric columns. ``detect`` is the one-shot
    fit-and-apply convenience used for single-table analyses (RQ1).
    """

    name = "interval"

    def __init__(self) -> None:
        self._bounds: dict[str, tuple[float, float]] | None = None

    def _column_bounds(self, values: np.ndarray) -> tuple[float, float]:
        raise NotImplementedError

    def fit(self, table: Table) -> "_IntervalOutlierDetector":
        """Learn validity intervals from the table's numeric columns."""
        self._bounds = {}
        for name in table.schema.numeric_names():
            values = table.column(name)
            finite = values[~np.isnan(values)]
            if finite.size == 0:
                self._bounds[name] = (-np.inf, np.inf)
            else:
                self._bounds[name] = self._column_bounds(finite)
        return self

    def apply(self, table: Table) -> DetectionResult:
        """Flag cells outside the fitted intervals."""
        if self._bounds is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        with obs.span("detect", detector=self.name, rows=table.n_rows) as span:
            cell_masks: dict[str, np.ndarray] = {}
            row_mask = np.zeros(table.n_rows, dtype=bool)
            for name in table.schema.numeric_names():
                low, high = self._bounds.get(name, (-np.inf, np.inf))
                values = table.column(name)
                finite = ~np.isnan(values)
                mask = np.zeros(table.n_rows, dtype=bool)
                mask[finite] = (values[finite] < low) | (values[finite] > high)
                cell_masks[name] = mask
                row_mask |= mask
            result = DetectionResult(self.name, row_mask, cell_masks)
            span.add("flagged", result.n_flagged)
        return result

    def detect(self, table: Table) -> DetectionResult:
        """Fit on the table and flag its outliers in one step."""
        return self.fit(table).apply(table)


class SdOutlierDetector(_IntervalOutlierDetector):
    """Univariate outliers: values more than ``n_std`` SDs from the mean."""

    name = "outliers_sd"

    def __init__(self, n_std: float = 3.0) -> None:
        super().__init__()
        if n_std <= 0:
            raise ValueError(f"n_std must be positive, got {n_std}")
        self.n_std = n_std

    def _column_bounds(self, values: np.ndarray) -> tuple[float, float]:
        mean = values.mean()
        std = values.std()
        if std == 0.0:
            return (-np.inf, np.inf)
        return (mean - self.n_std * std, mean + self.n_std * std)


class IqrOutlierDetector(_IntervalOutlierDetector):
    """Univariate outliers outside [p25 - k*iqr, p75 + k*iqr]."""

    name = "outliers_iqr"

    def __init__(self, k: float = 1.5) -> None:
        super().__init__()
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def _column_bounds(self, values: np.ndarray) -> tuple[float, float]:
        p25, p75 = np.percentile(values, [25, 75])
        iqr = p75 - p25
        return (p25 - self.k * iqr, p75 + self.k * iqr)


class IsolationForestOutlierDetector:
    """Multivariate (tuple-level) outliers via an isolation forest.

    Only numeric columns feed the forest; rows with missing numeric
    values are never flagged (they cannot be scored). Cell masks flag
    every numeric cell of a flagged tuple, so cell-level repairs can be
    applied uniformly across detectors.
    """

    name = "outliers_if"

    def __init__(
        self,
        contamination: float = 0.01,
        n_estimators: int = 100,
        random_state: int = 0,
    ) -> None:
        self.contamination = contamination
        self.n_estimators = n_estimators
        self.random_state = random_state
        self._forest: IsolationForest | None = None
        self._numeric_names: tuple[str, ...] = ()

    def fit(self, table: Table) -> "IsolationForestOutlierDetector":
        """Fit the forest on the table's complete numeric rows."""
        self._numeric_names = table.schema.numeric_names()
        self._forest = None
        if self._numeric_names and table.n_rows > 1:
            X = np.column_stack(
                [table.column(name) for name in self._numeric_names]
            )
            complete = ~np.isnan(X).any(axis=1)
            if complete.sum() > 1:
                self._forest = IsolationForest(
                    n_estimators=self.n_estimators,
                    contamination=self.contamination,
                    random_state=self.random_state,
                ).fit(X[complete])
        return self

    def apply(self, table: Table) -> DetectionResult:
        """Flag tuples the fitted forest scores above its threshold.

        Rows with missing numeric values are never flagged (they
        cannot be scored).
        """
        with obs.span("detect", detector=self.name, rows=table.n_rows) as span:
            row_mask = np.zeros(table.n_rows, dtype=bool)
            if self._forest is not None:
                X = np.column_stack(
                    [table.column(name) for name in self._numeric_names]
                )
                complete = ~np.isnan(X).any(axis=1)
                if complete.any():
                    flags = self._forest.predict_outliers(X[complete])
                    row_mask[np.nonzero(complete)[0][flags]] = True
            cell_masks = {}
            for name in self._numeric_names:
                mask = row_mask.copy()
                mask &= ~table.is_missing(name)
                cell_masks[name] = mask
            result = DetectionResult(self.name, row_mask, cell_masks)
            span.add("flagged", result.n_flagged)
        return result

    def detect(self, table: Table) -> DetectionResult:
        """Fit on the table and flag its outliers in one step."""
        return self.fit(table).apply(table)
