"""Synthetic stand-in for the Kaggle cardiovascular-disease dataset.

The real data has *no missing values* (the paper's footnote 8) but is
notorious for blood-pressure data-entry errors: systolic/diastolic
values that are negative, zero, or inflated by a factor of 10-100
(e.g. 16020). We reproduce exactly that: complete data with heavy
sentinel-style outliers in ``ap_hi``/``ap_lo`` and implausible
heights/weights, plus group-dependent label noise. The positive class
follows the paper's convention of the *desirable* outcome — here, a
healthy heart (absence of cardiovascular disease) — so that improved
recall means fewer healthy patients burdened with follow-up care and
the positive class is the beneficial decision.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import synthetic as syn
from repro.tabular import Table


def generate(n_rows: int, seed: int = 0) -> Table:
    """Generate the synthetic heart table with its healthy label."""
    rng = np.random.default_rng(seed)

    sex = syn.categorical(rng, n_rows, ["male", "female"], [0.35, 0.65])
    is_male = sex.eq("male")

    age = syn.clipped_normal(rng, n_rows, 53.0, 6.8, 29, 65).round()
    is_over_45 = age > 45

    height = syn.clipped_normal(rng, n_rows, 161.0, 8.0, 55, 250).round()
    height[is_male] += 11.0
    weight = np.clip(
        rng.normal(74.0 + 6.0 * is_male, 14.0, size=n_rows), 10, 200
    ).round()

    # blood pressure correlated with age and weight
    ap_hi = (
        110.0
        + 0.5 * (age - 50)
        + 0.3 * (weight - 74)
        + rng.normal(0, 14, size=n_rows)
    ).round()
    ap_lo = (ap_hi * 0.65 + rng.normal(0, 8, size=n_rows)).round()

    # the dataset's famous entry errors: x10/x100 inflation, negatives,
    # and swapped-magnitude diastolic values
    inflated = rng.random(n_rows) < 0.01
    ap_hi[inflated] *= rng.choice([10.0, 100.0], size=inflated.sum())
    negative = rng.random(n_rows) < 0.002
    ap_hi[negative] = -np.abs(ap_hi[negative])
    lo_bad = rng.random(n_rows) < 0.012
    ap_lo[lo_bad] = rng.choice([0.0, 1000.0, 8000.0], size=lo_bad.sum())

    cholesterol = syn.categorical(
        rng, n_rows, ["normal", "above_normal", "well_above_normal"],
        [0.75, 0.13, 0.12],
    )
    glucose = syn.categorical(
        rng, n_rows, ["normal", "above_normal", "well_above_normal"],
        [0.85, 0.07, 0.08],
    )
    smoke = (rng.random(n_rows) < (0.05 + 0.13 * is_male)).astype(np.float64)
    alcohol = (rng.random(n_rows) < (0.03 + 0.05 * is_male)).astype(np.float64)
    active = (rng.random(n_rows) < 0.8).astype(np.float64)

    # score each pool value once, then gather through the codes
    chol_levels = {"normal": 0.0, "above_normal": 1.0, "well_above_normal": 2.0}
    chol_score = np.take(
        np.array([chol_levels[value] for value in cholesterol.pool]),
        cholesterol.codes,
    )
    bmi = weight / (height / 100.0) ** 2
    true_ap_hi = np.where((ap_hi > 0) & (ap_hi < 300), ap_hi, 128.0)
    disease_latent = (
        -0.3
        + 0.16 * (age - 50)
        + 0.16 * (true_ap_hi - 120)
        + 1.8 * chol_score
        + 0.16 * (bmi - 26)
        + 0.6 * smoke
        - 0.45 * active
    )
    disease = rng.random(n_rows) < syn.sigmoid(disease_latent)
    healthy = (~disease).astype(np.int64)
    noise = syn.group_dependent_probability(0.045, 1.7, is_male & is_over_45)
    healthy = syn.flip_labels(rng, healthy, noise)

    return Table.from_columns(
        {
            "age": age,
            "sex": sex,
            "height": height,
            "weight": weight,
            "ap_hi": ap_hi,
            "ap_lo": ap_lo,
            "cholesterol": cholesterol,
            "glucose": glucose,
            "smoke": smoke,
            "alcohol": alcohol,
            "active": active,
            "healthy": healthy.astype(np.float64),
        }
    )
