"""Synthetic stand-in for the Statlog German credit dataset.

Follows the paper's preprocessing: the ``sex`` column is *derived*
from ``personal_status`` (which encodes marital status and sex
jointly), and the ill-defined ``foreign_worker`` attribute is omitted
entirely. The real data has no explicit NULLs, but several attributes
("unknown / no savings account") act as de-facto missing values; we
generate a small amount of genuinely missing data in ``savings`` and
``employment_since`` to exercise the missing-value pipeline, skewed
toward the *privileged* group — the paper finds that in german the
large disparities do not systematically burden the disadvantaged
group. The label is creditworthiness (70% positive, as in the real
data).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import synthetic as syn
from repro.tabular import Table

PERSONAL_STATUS = [
    ("male_single", "male", 0.46),
    ("male_married_widowed", "male", 0.09),
    ("male_divorced", "male", 0.05),
    ("female_married_divorced", "female", 0.31),
    ("female_single", "female", 0.09),
]
STATUS = ["lt_0", "0_to_200", "ge_200", "no_account"]
CREDIT_HISTORY = [
    "no_credits",
    "all_paid_duly",
    "existing_paid_duly",
    "past_delays",
    "critical",
]
PURPOSES = [
    "car_new",
    "car_used",
    "furniture",
    "radio_tv",
    "appliances",
    "repairs",
    "education",
    "retraining",
    "business",
    "other",
]
SAVINGS = ["lt_100", "100_to_500", "500_to_1000", "ge_1000", "unknown"]
EMPLOYMENT = ["unemployed", "lt_1y", "1_to_4y", "4_to_7y", "ge_7y"]
PROPERTY = ["real_estate", "savings_insurance", "car_other", "none"]
OTHER_PLANS = ["bank", "stores", "none"]
HOUSING = ["rent", "own", "free"]
JOBS = ["unskilled_nonresident", "unskilled_resident", "skilled", "management"]


def generate(n_rows: int, seed: int = 0) -> Table:
    """Generate the synthetic german table with its credit label."""
    rng = np.random.default_rng(seed)

    status_idx = rng.choice(
        len(PERSONAL_STATUS),
        size=n_rows,
        p=[weight for __, __, weight in PERSONAL_STATUS],
    )
    personal_status = syn.take_categories(
        status_idx, [status for status, __, __ in PERSONAL_STATUS]
    )
    # sex is derived: map each status index to its sex's pool code
    sex_by_status = np.array(
        [0 if sex_value == "male" else 1 for __, sex_value, __ in PERSONAL_STATUS]
    )
    sex = syn.take_categories(sex_by_status[status_idx], ["male", "female"])
    is_male = sex.eq("male")

    age = np.clip(rng.gamma(2.0, 8.0, size=n_rows) + 19, 19, 75).round()
    is_over_25 = age > 25

    checking_status = syn.categorical(rng, n_rows, STATUS, [0.27, 0.27, 0.06, 0.4])
    credit_history = syn.categorical(
        rng, n_rows, CREDIT_HISTORY, [0.04, 0.05, 0.53, 0.09, 0.29]
    )
    purpose = syn.categorical(
        rng,
        n_rows,
        PURPOSES,
        [0.23, 0.1, 0.18, 0.28, 0.02, 0.02, 0.05, 0.01, 0.1, 0.01],
    )
    savings = syn.categorical(rng, n_rows, SAVINGS, [0.6, 0.1, 0.06, 0.06, 0.18])
    employment = syn.categorical(
        rng, n_rows, EMPLOYMENT, [0.06, 0.17, 0.34, 0.17, 0.26]
    )
    property_kind = syn.categorical(rng, n_rows, PROPERTY, [0.28, 0.23, 0.33, 0.15])
    other_plans = syn.categorical(rng, n_rows, OTHER_PLANS, [0.14, 0.05, 0.81])
    housing = syn.categorical(rng, n_rows, HOUSING, [0.18, 0.71, 0.11])
    job = syn.categorical(rng, n_rows, JOBS, [0.02, 0.2, 0.63, 0.15])

    duration = np.clip(rng.gamma(3.0, 7.0, size=n_rows), 4, 72).round()
    credit_amount = syn.lognormal(rng, n_rows, 7.9, 0.8)
    installment_rate = rng.integers(1, 5, size=n_rows).astype(float)
    residence_since = rng.integers(1, 5, size=n_rows).astype(float)
    existing_credits = np.clip(rng.poisson(0.5, size=n_rows) + 1, 1, 4).astype(float)
    num_dependents = np.clip(rng.poisson(0.2, size=n_rows) + 1, 1, 2).astype(float)

    good_history = credit_history.isin(("existing_paid_duly", "all_paid_duly"))
    has_checking = ~checking_status.eq("no_account")
    high_savings = savings.isin(("500_to_1000", "ge_1000"))
    latent = (
        0.9
        - 0.1 * (duration - 20)
        - 0.0004 * (credit_amount - 3000)
        + 2.1 * good_history
        + 1.4 * high_savings
        - 1.6 * has_checking
        + 0.05 * (age - 35)
        + 0.8 * is_male
    )
    credit = (rng.random(n_rows) < syn.sigmoid(latent)).astype(np.int64)
    noise = syn.group_dependent_probability(0.04, 1.8, is_over_25 & is_male)
    credit = syn.flip_labels(rng, credit, noise)

    # sparse missingness, slightly *higher for the privileged* group
    savings_missing = syn.group_dependent_probability(0.02, 2.2, is_over_25)
    employment_missing = syn.group_dependent_probability(0.015, 2.0, is_male)
    savings = syn.inject_missing_categorical(rng, savings, savings_missing)
    employment = syn.inject_missing_categorical(rng, employment, employment_missing)

    return Table.from_columns(
        {
            "checking_status": checking_status,
            "duration": duration,
            "credit_history": credit_history,
            "purpose": purpose,
            "credit_amount": credit_amount,
            "savings": savings,
            "employment_since": employment,
            "installment_rate": installment_rate,
            "personal_status": personal_status,
            "sex": sex,
            "other_debtors": syn.categorical(
                rng, n_rows, ["none", "co_applicant", "guarantor"], [0.91, 0.04, 0.05]
            ),
            "residence_since": residence_since,
            "property": property_kind,
            "age": age,
            "other_installment_plans": other_plans,
            "housing": housing,
            "existing_credits": existing_credits,
            "job": job,
            "num_dependents": num_dependents,
            "credit": credit.astype(np.float64),
        }
    )
