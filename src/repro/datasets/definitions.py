"""Declarative dataset definitions (the paper's Listing 1).

A :class:`DatasetDefinition` bundles everything the benchmark needs to
experiment on a dataset: how to obtain the data, which column is the
label, which attributes to hide from the classifier, which error types
apply, and the privileged-group predicates from which fairness metrics
are computed automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.fairness.groups import GroupPredicate, GroupSpec, IntersectionalSpec
from repro.tabular import Table

#: Error types a dataset can declare.
ERROR_TYPES = ("missing_values", "outliers", "mislabels")


@dataclass(frozen=True)
class DatasetDefinition:
    """Declarative description of a benchmark dataset.

    Attributes:
        name: Dataset identifier, e.g. ``german``.
        source_domain: Domain label from the paper's Table I.
        generator: Callable ``(n_rows, seed) -> Table`` producing the
            data, including the label column.
        default_n_rows: The size reported in Table I (generation
            default; callers may request any size).
        label: Name of the 0/1 label column (1 = desirable outcome).
        error_types: Which of the paper's error types apply.
        drop_variables: Columns hidden from the classifier (always
            includes the sensitive attributes).
        privileged_groups: Single-attribute group definitions.
        intersectional_pairs: Index pairs into ``privileged_groups``
            forming intersectional definitions (empty when the dataset
            has a single sensitive attribute).
        ml_task: Only ``classification`` is supported.
    """

    name: str
    source_domain: str
    generator: Callable[[int, int], Table]
    default_n_rows: int
    label: str
    error_types: tuple[str, ...]
    drop_variables: tuple[str, ...]
    privileged_groups: tuple[GroupPredicate, ...]
    intersectional_pairs: tuple[tuple[int, int], ...] = ()
    ml_task: str = "classification"
    _specs: tuple[GroupSpec, ...] = field(init=False, repr=False, compare=False,
                                          default=())

    def __post_init__(self) -> None:
        unknown = set(self.error_types) - set(ERROR_TYPES)
        if unknown:
            raise ValueError(f"unknown error types: {sorted(unknown)}")
        if self.ml_task != "classification":
            raise ValueError(f"unsupported ml_task {self.ml_task!r}")
        if not self.privileged_groups:
            raise ValueError("at least one privileged group is required")
        for first, second in self.intersectional_pairs:
            if not (
                0 <= first < len(self.privileged_groups)
                and 0 <= second < len(self.privileged_groups)
            ):
                raise ValueError(
                    f"intersectional pair ({first}, {second}) out of range"
                )
        specs = tuple(
            GroupSpec(predicate.attribute, predicate)
            for predicate in self.privileged_groups
        )
        object.__setattr__(self, "_specs", specs)

    @property
    def group_specs(self) -> tuple[GroupSpec, ...]:
        """Single-attribute group specs derived from the predicates."""
        return self._specs

    @property
    def intersectional_specs(self) -> tuple[IntersectionalSpec, ...]:
        """Intersectional specs derived from ``intersectional_pairs``."""
        return tuple(
            IntersectionalSpec(self._specs[first], self._specs[second])
            for first, second in self.intersectional_pairs
        )

    @property
    def sensitive_attributes(self) -> tuple[str, ...]:
        """Names of the sensitive attributes."""
        return tuple(predicate.attribute for predicate in self.privileged_groups)

    def feature_columns(self, table: Table) -> tuple[str, ...]:
        """Columns visible to the classifier for ``table``."""
        hidden = set(self.drop_variables) | {self.label}
        return tuple(
            name for name in table.column_names if name not in hidden
        )

    def generate(self, n_rows: int | None = None, seed: int = 0) -> Table:
        """Generate ``n_rows`` tuples (Table I size by default)."""
        n = n_rows if n_rows is not None else self.default_n_rows
        if n < 1:
            raise ValueError(f"n_rows must be >= 1, got {n}")
        table = self.generator(n, seed)
        self.validate_table(table)
        return table

    def validate_table(self, table: Table) -> None:
        """Check that a table is usable under this definition."""
        if self.label not in table.schema:
            raise ValueError(f"table lacks label column {self.label!r}")
        for predicate in self.privileged_groups:
            if predicate.attribute not in table.schema:
                raise ValueError(
                    f"table lacks sensitive attribute {predicate.attribute!r}"
                )
        for name in self.drop_variables:
            if name not in table.schema:
                raise ValueError(f"table lacks drop variable {name!r}")
