"""Registry of the study's dataset definitions (paper Table I).

| name   | source     | tuples  | sensitive attributes |
|--------|------------|---------|----------------------|
| adult  | census     | 48,844  | sex, race            |
| folk   | census     | 378,817 | sex, race            |
| credit | finance    | 150,000 | age                  |
| german | finance    | 1,000   | age, sex             |
| heart  | healthcare | 70,000  | sex, age             |

Privileged groups follow Section II: male for sex, white for race, and
age over 30 / 25 / 45 in credit / german / heart respectively.
Intersectional pairs: sex×race for adult and folk, sex×age for german
and heart; credit has a single sensitive attribute and is excluded.
"""

from __future__ import annotations

from repro.datasets import adult, credit, folk, german, heart
from repro.datasets.definitions import DatasetDefinition
from repro.fairness.groups import Comparison, GroupPredicate

_DEFINITIONS: dict[str, DatasetDefinition] = {}


def _register(definition: DatasetDefinition) -> None:
    if definition.name in _DEFINITIONS:
        raise ValueError(f"duplicate dataset {definition.name!r}")
    _DEFINITIONS[definition.name] = definition


_register(
    DatasetDefinition(
        name="adult",
        source_domain="census",
        generator=adult.generate,
        default_n_rows=48_844,
        label="income",
        error_types=("missing_values", "outliers", "mislabels"),
        drop_variables=("sex", "race"),
        privileged_groups=(
            GroupPredicate("sex", Comparison.EQ, "male"),
            GroupPredicate("race", Comparison.EQ, "white"),
        ),
        intersectional_pairs=((0, 1),),
    )
)

_register(
    DatasetDefinition(
        name="folk",
        source_domain="census",
        generator=folk.generate,
        default_n_rows=378_817,
        label="income",
        error_types=("missing_values", "outliers", "mislabels"),
        drop_variables=("sex", "race"),
        privileged_groups=(
            GroupPredicate("sex", Comparison.EQ, "male"),
            GroupPredicate("race", Comparison.EQ, "white"),
        ),
        intersectional_pairs=((0, 1),),
    )
)

_register(
    DatasetDefinition(
        name="credit",
        source_domain="finance",
        generator=credit.generate,
        default_n_rows=150_000,
        label="good_credit",
        error_types=("missing_values", "outliers", "mislabels"),
        drop_variables=("age",),
        privileged_groups=(GroupPredicate("age", Comparison.GT, 30),),
    )
)

_register(
    DatasetDefinition(
        name="german",
        source_domain="finance",
        generator=german.generate,
        default_n_rows=1_000,
        label="credit",
        error_types=("missing_values", "outliers", "mislabels"),
        # the paper also drops personal_status (sex is derived from it);
        # foreign_worker is omitted from generation entirely
        drop_variables=("age", "personal_status", "sex"),
        privileged_groups=(
            GroupPredicate("age", Comparison.GT, 25),
            GroupPredicate("sex", Comparison.EQ, "male"),
        ),
        intersectional_pairs=((1, 0),),  # sex x age, as in the paper
    )
)

_register(
    DatasetDefinition(
        name="heart",
        source_domain="healthcare",
        generator=heart.generate,
        default_n_rows=70_000,
        label="healthy",
        # no missing values at all (paper footnote 8)
        error_types=("outliers", "mislabels"),
        drop_variables=("sex", "age"),
        privileged_groups=(
            GroupPredicate("sex", Comparison.EQ, "male"),
            GroupPredicate("age", Comparison.GT, 45),
        ),
        intersectional_pairs=((0, 1),),
    )
)

#: Stable ordering of dataset names.
DATASET_NAMES: tuple[str, ...] = tuple(_DEFINITIONS)


def dataset_definition(name: str) -> DatasetDefinition:
    """Look up a dataset definition by name."""
    try:
        return _DEFINITIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None


def load_dataset(name: str, n_rows: int | None = None, seed: int = 0):
    """Generate a dataset's table; returns ``(definition, table)``."""
    definition = dataset_definition(name)
    return definition, definition.generate(n_rows=n_rows, seed=seed)
