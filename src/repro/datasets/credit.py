"""Synthetic stand-in for the GiveMeSomeCredit dataset.

Reproduces the well-documented pathologies of the real data:
``monthly_income`` is missing for ~20% of applicants (skewed *young*,
i.e. toward the disadvantaged group under the age>30 privilege rule),
``number_of_dependents`` has mild missingness, the past-due counters
carry 96/98 sentinel codes, ``revolving_utilization`` has absurd
outliers (values in the thousands where [0,1] is expected), and
``debt_ratio`` is heavy-tailed. The label is *good credit standing*
(the complement of the original SeriousDlqin2yrs), so the positive
class is the desirable outcome as the paper requires.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import synthetic as syn
from repro.tabular import Table


def generate(n_rows: int, seed: int = 0) -> Table:
    """Generate the synthetic credit table with its good-credit label."""
    rng = np.random.default_rng(seed)

    age = syn.clipped_normal(rng, n_rows, 52.0, 14.5, 21, 100).round()
    is_young = age <= 30  # disadvantaged group under the age>30 rule

    monthly_income = syn.lognormal(rng, n_rows, 8.7, 0.6)
    monthly_income[is_young] *= 0.75

    revolving_utilization = np.clip(rng.beta(1.2, 4.0, size=n_rows), 0, 1)
    # data-entry errors: a small fraction of utilizations in the thousands
    bad_entry = rng.random(n_rows) < 0.003
    revolving_utilization[bad_entry] = rng.uniform(10, 50000, size=bad_entry.sum())

    debt_ratio = syn.lognormal(rng, n_rows, -1.2, 1.1)
    open_credit_lines = np.clip(rng.poisson(8.5, size=n_rows), 0, 58).astype(float)
    real_estate_loans = np.clip(rng.poisson(1.0, size=n_rows), 0, 54).astype(float)
    dependents = np.clip(rng.poisson(0.8, size=n_rows), 0, 20).astype(float)

    late_rate = 0.18 + 0.15 * is_young + 0.9 * np.minimum(revolving_utilization, 1.0)
    past_due_30 = rng.poisson(late_rate).astype(float)
    past_due_60 = rng.poisson(late_rate * 0.35).astype(float)
    past_due_90 = rng.poisson(late_rate * 0.3).astype(float)
    # the infamous 96/98 sentinel codes of the real data
    past_due_30 = syn.sentinel_spike(rng, past_due_30, 98.0, 0.0018)
    past_due_60 = syn.sentinel_spike(rng, past_due_60, 98.0, 0.0018)
    past_due_90 = syn.sentinel_spike(rng, past_due_90, 96.0, 0.0018)

    utilization_capped = np.minimum(revolving_utilization, 1.5)
    latent = (
        4.4
        - 4.2 * utilization_capped
        - 1.8 * np.minimum(past_due_30, 10)
        - 2.6 * np.minimum(past_due_90, 10)
        - 0.6 * np.minimum(debt_ratio, 5)
        + 0.03 * (age - 50)
        + 0.3 * np.log1p(monthly_income / 1000.0)
    )
    good_credit = (rng.random(n_rows) < syn.sigmoid(latent)).astype(np.int64)
    noise = syn.group_dependent_probability(0.03, 1.8, ~is_young)
    good_credit = syn.flip_labels(rng, good_credit, noise)

    income_missing = syn.group_dependent_probability(0.15, 1.8, is_young)
    # informative missingness: applicants in bad standing more often
    # have no verifiable income on file
    income_missing *= 1.0 + 0.8 * (good_credit == 0)
    monthly_income = syn.inject_missing_numeric(rng, monthly_income, income_missing)
    dependents = syn.inject_missing_numeric(rng, dependents, 0.026)

    return Table.from_columns(
        {
            "revolving_utilization": revolving_utilization,
            "age": age,
            "past_due_30_59": past_due_30,
            "debt_ratio": debt_ratio,
            "monthly_income": monthly_income,
            "open_credit_lines": open_credit_lines,
            "past_due_90": past_due_90,
            "real_estate_loans": real_estate_loans,
            "past_due_60_89": past_due_60,
            "dependents": dependents,
            "good_credit": good_credit.astype(np.float64),
        }
    )
