"""Benchmark datasets.

The study's five datasets (adult, folk, credit, german, heart) are
rebuilt as synthetic generators with matching schemas and *organic*
data-quality issues — missingness, outliers and label noise baked into
the data-generating process rather than injected post hoc (see
DESIGN.md for the substitution rationale). Each dataset ships with a
declarative :class:`DatasetDefinition` mirroring the paper's Listing 1.
"""

from repro.datasets.definitions import DatasetDefinition
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_definition,
    load_dataset,
)

__all__ = [
    "DatasetDefinition",
    "DATASET_NAMES",
    "dataset_definition",
    "load_dataset",
]
