"""Synthetic stand-in for the UCI adult census dataset.

Schema and error structure mirror the real data: ``workclass``,
``occupation`` and ``native_country`` contain missing values (the '?'
entries of the original), with higher missingness for non-white and
female respondents; ``capital_gain`` is zero-inflated with a heavy
tail and a 99999 sentinel spike; ``fnlwgt`` is heavy-tailed; labels
(income > 50K, ~24% positive) carry group-dependent noise that is
*higher for the privileged group*, matching the paper's observation
that predicted label errors skew privileged.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import synthetic as syn
from repro.tabular import Table

EDUCATION_LEVELS = [
    ("hs_dropout", 6.0),
    ("hs_grad", 9.0),
    ("some_college", 10.0),
    ("assoc", 12.0),
    ("bachelors", 13.0),
    ("masters", 14.0),
    ("doctorate", 16.0),
]

WORKCLASSES = ["private", "self_emp", "gov", "unemployed"]
OCCUPATIONS = [
    "craft_repair",
    "exec_managerial",
    "prof_specialty",
    "sales",
    "service",
    "clerical",
    "transport",
]
MARITAL = ["married", "never_married", "divorced", "widowed"]
RELATIONSHIPS = ["husband", "wife", "own_child", "unmarried", "not_in_family"]
COUNTRIES = ["united_states", "mexico", "philippines", "germany", "canada"]


def generate(n_rows: int, seed: int = 0) -> Table:
    """Generate the synthetic adult table with its income label."""
    rng = np.random.default_rng(seed)

    sex = syn.categorical(rng, n_rows, ["male", "female"], [0.67, 0.33])
    race = syn.categorical(
        rng,
        n_rows,
        ["white", "black", "asian_pac_islander", "amer_indian", "other"],
        [0.855, 0.096, 0.031, 0.01, 0.008],
    )
    is_male = sex.eq("male")
    is_white = race.eq("white")

    age = syn.clipped_normal(rng, n_rows, 38.5, 13.5, 17, 90).round()

    education_idx = np.clip(
        rng.normal(2.2 + 0.25 * is_white, 1.4, size=n_rows).round().astype(int),
        0,
        len(EDUCATION_LEVELS) - 1,
    )
    education = syn.take_categories(
        education_idx, [name for name, __ in EDUCATION_LEVELS]
    )
    education_num = np.take(
        np.array([years for __, years in EDUCATION_LEVELS]), education_idx
    )

    workclass = syn.categorical(rng, n_rows, WORKCLASSES, [0.69, 0.11, 0.13, 0.07])
    occupation = syn.categorical(
        rng, n_rows, OCCUPATIONS, [0.15, 0.14, 0.14, 0.12, 0.2, 0.13, 0.12]
    )
    marital = syn.categorical(rng, n_rows, MARITAL, [0.47, 0.33, 0.16, 0.04])
    relationship = syn.categorical(
        rng, n_rows, RELATIONSHIPS, [0.3, 0.1, 0.2, 0.15, 0.25]
    )
    country = syn.categorical(
        rng, n_rows, COUNTRIES, [0.895, 0.05, 0.025, 0.015, 0.015]
    )

    fnlwgt = syn.lognormal(rng, n_rows, 12.0, 0.5)
    hours = syn.clipped_normal(rng, n_rows, 40.5, 11.5, 1, 99).round()
    capital_gain = syn.zero_inflated_lognormal(rng, n_rows, 0.92, 8.2, 1.1)
    capital_gain = syn.sentinel_spike(rng, capital_gain, 99999.0, 0.005)
    capital_loss = syn.zero_inflated_lognormal(rng, n_rows, 0.95, 7.4, 0.5)

    married = marital.eq("married")
    latent = (
        -15.3
        + 0.96 * education_num
        + 0.084 * (age - 38)
        + 0.072 * (hours - 40)
        + 2.7 * married
        + 1.65 * is_male
        + 0.75 * is_white
        + 0.0012 * np.minimum(capital_gain, 20000)
    )
    income = (rng.random(n_rows) < syn.sigmoid(latent)).astype(np.int64)

    # group-dependent label noise, higher for the privileged group
    noise = syn.group_dependent_probability(0.04, 2.0, is_male & is_white)
    income = syn.flip_labels(rng, income, noise)

    # missingness skewed toward disadvantaged groups (the real adult's
    # '?' entries concentrate in workclass/occupation/native_country)
    occupation_missing = syn.group_dependent_probability(0.05, 2.6, ~is_white)
    occupation_missing[~is_male] = np.maximum(
        occupation_missing[~is_male], 0.09
    )
    workclass_missing = syn.group_dependent_probability(0.05, 2.2, ~is_white)
    country_missing = syn.group_dependent_probability(0.02, 2.5, ~is_white)
    # missing-not-at-random: occupation/workclass go unrecorded more
    # often for low-income respondents (informative missingness)
    low_income = income == 0
    occupation_missing *= 1.0 + 0.9 * low_income
    workclass_missing *= 1.0 + 0.9 * low_income
    occupation = syn.inject_missing_categorical(rng, occupation, occupation_missing)
    workclass = syn.inject_missing_categorical(rng, workclass, workclass_missing)
    country = syn.inject_missing_categorical(rng, country, country_missing)

    return Table.from_columns(
        {
            "age": age,
            "workclass": workclass,
            "fnlwgt": fnlwgt,
            "education": education,
            "education_num": education_num,
            "marital_status": marital,
            "occupation": occupation,
            "relationship": relationship,
            "race": race,
            "sex": sex,
            "capital_gain": capital_gain,
            "capital_loss": capital_loss,
            "hours_per_week": hours,
            "native_country": country,
            "income": income.astype(np.float64),
        }
    )
