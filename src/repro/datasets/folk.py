"""Synthetic stand-in for the folktables ACS income dataset (CA 2018).

Replicates the mechanism the paper highlights from the ACS datasheet:
``OCCP`` (occupation), ``COW`` (class of worker) and ``WKHP`` (hours
worked) are *structurally* missing for respondents younger than 18 —
a genuine N/A rather than an unrecorded value — plus mild
missing-at-random noise slightly skewed toward disadvantaged groups.
The label replicates the adult task (income above a threshold).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import synthetic as syn
from repro.tabular import Table

OCCUPATION_GROUPS = [
    "management",
    "business_finance",
    "computer_math",
    "healthcare",
    "service",
    "sales",
    "admin_support",
    "construction",
    "production",
    "transportation",
]
CLASSES_OF_WORKER = [
    "private_profit",
    "private_nonprofit",
    "state_gov",
    "federal_gov",
    "self_employed",
]
SCHOOLING = [
    ("no_diploma", 8.0),
    ("hs_diploma", 12.0),
    ("some_college", 13.0),
    ("bachelors", 16.0),
    ("advanced", 18.0),
]
MARITAL = ["married", "never_married", "divorced", "separated", "widowed"]
RELATIONSHIP = ["reference", "spouse", "child", "housemate", "other_relative"]


def generate(n_rows: int, seed: int = 0) -> Table:
    """Generate the synthetic folk table with its income label."""
    rng = np.random.default_rng(seed)

    sex = syn.categorical(rng, n_rows, ["male", "female"], [0.5, 0.5])
    race = syn.categorical(
        rng,
        n_rows,
        ["white", "black", "asian", "other", "two_or_more"],
        [0.60, 0.06, 0.15, 0.14, 0.05],
    )
    is_male = sex.eq("male")
    is_white = race.eq("white")

    # ACS covers minors; AGEP down to 16 in the income task filtering,
    # but we keep a slice under 18 to exercise the structural N/A path
    age = syn.clipped_normal(rng, n_rows, 42.0, 16.0, 16, 95).round()
    is_minor = age < 18

    schooling_idx = np.clip(
        rng.normal(2.0 + 0.3 * is_white, 1.2, size=n_rows).round().astype(int),
        0,
        len(SCHOOLING) - 1,
    )
    schooling = syn.take_categories(
        schooling_idx, [name for name, __ in SCHOOLING]
    )
    school_years = np.take(
        np.array([years for __, years in SCHOOLING]), schooling_idx
    )

    occupation = syn.categorical(
        rng,
        n_rows,
        OCCUPATION_GROUPS,
        [0.12, 0.08, 0.07, 0.09, 0.17, 0.1, 0.12, 0.08, 0.09, 0.08],
    )
    class_of_worker = syn.categorical(
        rng, n_rows, CLASSES_OF_WORKER, [0.66, 0.08, 0.11, 0.04, 0.11]
    )
    marital = syn.categorical(rng, n_rows, MARITAL, [0.46, 0.33, 0.12, 0.03, 0.06])
    relationship = syn.categorical(
        rng, n_rows, RELATIONSHIP, [0.4, 0.22, 0.24, 0.08, 0.06]
    )
    place_of_birth = syn.categorical(
        rng, n_rows, ["california", "other_us", "abroad"], [0.52, 0.2, 0.28]
    )
    hours = syn.clipped_normal(rng, n_rows, 38.0, 12.0, 1, 99).round()
    hours[is_minor] = np.minimum(hours[is_minor], 20.0)

    white_male = is_male & is_white
    latent = (
        -16.4
        + 1.02 * school_years
        + 0.105 * (age - 40)
        - 0.0027 * (age - 50) ** 2 * (age > 50)
        + 0.09 * (hours - 38)
        + 1.5 * is_male
        + 0.9 * is_white
    )
    latent[is_minor] -= 8.0
    income = (rng.random(n_rows) < syn.sigmoid(latent)).astype(np.int64)
    noise = syn.group_dependent_probability(0.035, 1.9, white_male)
    income = syn.flip_labels(rng, income, noise)

    # structural N/A: work variables undefined for minors
    occupation_missing = syn.group_dependent_probability(0.04, 1.8, ~is_white)
    cow_missing = syn.group_dependent_probability(0.035, 1.7, ~is_white)
    hours_missing = syn.group_dependent_probability(0.03, 1.8, ~is_male)
    # informative missingness: work variables are more often blank for
    # low-income respondents (beyond the structural minor N/A)
    low_income = income == 0
    occupation_missing *= 1.0 + 0.9 * low_income
    cow_missing *= 1.0 + 0.9 * low_income
    hours_missing *= 1.0 + 0.9 * low_income
    occupation_missing[is_minor] = 1.0
    cow_missing[is_minor] = 1.0
    hours_missing[is_minor] = 1.0
    occupation = syn.inject_missing_categorical(rng, occupation, occupation_missing)
    class_of_worker = syn.inject_missing_categorical(rng, class_of_worker, cow_missing)
    hours = syn.inject_missing_numeric(rng, hours, hours_missing)

    return Table.from_columns(
        {
            "AGEP": age,
            "COW": class_of_worker,
            "SCHL": schooling,
            "MAR": marital,
            "OCCP": occupation,
            "POBP": place_of_birth,
            "RELP": relationship,
            "WKHP": hours,
            "sex": sex,
            "race": race,
            "income": income.astype(np.float64),
        }
    )
