"""Shared building blocks for the synthetic dataset generators.

The generators bake data-quality issues into the data-generating
process itself:

- *Missingness* is missing-at-random conditioned on group membership
  and covariates (e.g. occupation more often unrecorded for
  disadvantaged groups), or *structural* (a genuine N/A, e.g.
  occupation for children in the folk data).
- *Outliers* arise from heavy-tailed distributions and simulated
  data-entry errors (unit confusion, sentinel codes) — the mechanisms
  documented for the real datasets.
- *Label noise* is feature- and group-dependent flipping of an
  otherwise consistent latent decision function.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.encoding import CategoricalColumn


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def categorical(
    rng: np.random.Generator,
    n: int,
    categories: list[str],
    probabilities: list[float] | np.ndarray,
) -> CategoricalColumn:
    """Sample a dictionary-encoded column with the given probabilities.

    The draws *are* the codes: no per-element Python loop and no string
    objects are created — the category list becomes the column's pool
    directly. The RNG stream is identical to the historical
    object-array sampler (one ``rng.choice`` over category indices).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    probabilities = probabilities / probabilities.sum()
    draws = rng.choice(len(categories), size=n, p=probabilities)
    return CategoricalColumn(
        draws.astype(np.int32), tuple(categories), validate=False
    )


def take_categories(
    indices: np.ndarray, categories: list[str]
) -> CategoricalColumn:
    """Wrap precomputed category indices as an encoded column."""
    return CategoricalColumn(
        np.asarray(indices).astype(np.int32), tuple(categories), validate=False
    )


def clipped_normal(
    rng: np.random.Generator,
    n: int,
    mean: float,
    std: float,
    low: float,
    high: float,
) -> np.ndarray:
    """Normal draws clipped into [low, high]."""
    return np.clip(rng.normal(mean, std, size=n), low, high)


def lognormal(
    rng: np.random.Generator, n: int, mean: float, sigma: float
) -> np.ndarray:
    """Heavy-tailed positive draws."""
    return rng.lognormal(mean, sigma, size=n)


def zero_inflated_lognormal(
    rng: np.random.Generator,
    n: int,
    zero_fraction: float,
    mean: float,
    sigma: float,
) -> np.ndarray:
    """Mostly-zero positive amounts with a heavy tail (capital gains)."""
    values = rng.lognormal(mean, sigma, size=n)
    zeros = rng.random(n) < zero_fraction
    values[zeros] = 0.0
    return values


def inject_missing_numeric(
    rng: np.random.Generator,
    values: np.ndarray,
    probability: np.ndarray | float,
) -> np.ndarray:
    """Return a copy with entries set to NaN with per-row probability."""
    values = np.asarray(values, dtype=np.float64).copy()
    mask = rng.random(len(values)) < probability
    values[mask] = np.nan
    return values


def inject_missing_categorical(
    rng: np.random.Generator,
    values: CategoricalColumn | np.ndarray,
    probability: np.ndarray | float,
) -> CategoricalColumn | np.ndarray:
    """Return a copy with entries marked missing with per-row probability.

    Encoded columns get their hit codes set to ``-1`` in one
    ``np.where``; object arrays (legacy callers) get ``None``.
    """
    mask = rng.random(len(values)) < probability
    if isinstance(values, CategoricalColumn):
        return values.set_missing(mask)
    return np.where(mask, None, values)


def flip_labels(
    rng: np.random.Generator,
    labels: np.ndarray,
    probability: np.ndarray | float,
) -> np.ndarray:
    """Return a copy with labels flipped with per-row probability."""
    labels = np.asarray(labels).astype(np.int64).copy()
    mask = rng.random(len(labels)) < probability
    labels[mask] = 1 - labels[mask]
    return labels


def sentinel_spike(
    rng: np.random.Generator,
    values: np.ndarray,
    sentinel: float,
    probability: float,
) -> np.ndarray:
    """Replace a small fraction of entries with a sentinel code.

    Models the data-entry pathologies of the real datasets (e.g. the
    99999 capital-gain spike in adult, the 96/98 past-due codes in the
    credit data).
    """
    values = np.asarray(values, dtype=np.float64).copy()
    mask = rng.random(len(values)) < probability
    values[mask] = sentinel
    return values


def group_dependent_probability(
    base: float,
    multiplier: float,
    in_group: np.ndarray,
) -> np.ndarray:
    """Per-row probability: ``base`` outside the group, scaled inside."""
    probability = np.full(len(in_group), base, dtype=np.float64)
    probability[in_group] = base * multiplier
    return np.clip(probability, 0.0, 1.0)
