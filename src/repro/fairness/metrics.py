"""Group fairness metrics.

Each metric is a function of the privileged and disadvantaged
confusion matrices, returning a signed disparity (privileged minus
disadvantaged). A value of 0 means the metric is satisfied; the
*unfairness magnitude* is the absolute value. The paper reports
predictive parity (precision disparity) and equal opportunity (recall
disparity); the remaining metrics are provided for follow-up analyses.
"""

from __future__ import annotations

from typing import Callable

from repro.ml.metrics import ConfusionMatrix

FairnessMetric = Callable[[ConfusionMatrix, ConfusionMatrix], float]


def predictive_parity(
    privileged: ConfusionMatrix, disadvantaged: ConfusionMatrix
) -> float:
    """Precision disparity: P(y=1 | ŷ=1, priv) − P(y=1 | ŷ=1, dis)."""
    return privileged.precision - disadvantaged.precision


def equal_opportunity(
    privileged: ConfusionMatrix, disadvantaged: ConfusionMatrix
) -> float:
    """Recall disparity: P(ŷ=1 | y=1, priv) − P(ŷ=1 | y=1, dis)."""
    return privileged.recall - disadvantaged.recall


def demographic_parity(
    privileged: ConfusionMatrix, disadvantaged: ConfusionMatrix
) -> float:
    """Selection-rate disparity: P(ŷ=1 | priv) − P(ŷ=1 | dis)."""
    return privileged.selection_rate - disadvantaged.selection_rate


def false_positive_rate_parity(
    privileged: ConfusionMatrix, disadvantaged: ConfusionMatrix
) -> float:
    """False-positive-rate disparity."""
    return privileged.false_positive_rate - disadvantaged.false_positive_rate


def equalized_odds(
    privileged: ConfusionMatrix, disadvantaged: ConfusionMatrix
) -> float:
    """Worst-case of recall and FPR disparities (signed by the larger)."""
    recall_gap = equal_opportunity(privileged, disadvantaged)
    fpr_gap = false_positive_rate_parity(privileged, disadvantaged)
    return recall_gap if abs(recall_gap) >= abs(fpr_gap) else fpr_gap


def accuracy_parity(
    privileged: ConfusionMatrix, disadvantaged: ConfusionMatrix
) -> float:
    """Accuracy disparity."""
    return privileged.accuracy - disadvantaged.accuracy


#: The metrics the paper's tables report, keyed by their abbreviations.
FAIRNESS_METRICS: dict[str, FairnessMetric] = {
    "PP": predictive_parity,
    "EO": equal_opportunity,
}

#: Extended metric registry for follow-up analyses.
ALL_FAIRNESS_METRICS: dict[str, FairnessMetric] = {
    **FAIRNESS_METRICS,
    "DP": demographic_parity,
    "FPRP": false_positive_rate_parity,
    "EOdds": equalized_odds,
    "AP": accuracy_parity,
}
