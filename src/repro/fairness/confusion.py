"""Group-wise confusion matrices with CleanML-style key naming.

The benchmark records, per cleaning technique, the raw confusion
matrix counts for the privileged and disadvantaged groups. Keys follow
the paper's convention, e.g.::

    impute_mean_dummy__sex_priv__tp
    impute_mean_dummy__sex_priv__age_priv__fp   (intersectional)

Computing raw counts (rather than final metrics) keeps the result
store metric-agnostic, as the paper's Section IV motivates.

The counting itself is vectorised: labels and predictions are combined
into a single ``2 * y_true + y_pred`` code vector whose values map to
(tn, fp, fn, tp) = (0, 1, 2, 3), so each group's four counts come from
one ``np.bincount`` over a boolean mask instead of per-group Python
loops — this runs inside the study's parallel hot path once per model
prediction and group definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.fairness.groups import GroupSpec, IntersectionalSpec
from repro.ml.metrics import ConfusionMatrix
from repro.tabular import Table

#: Masks for one group pair: (key, privileged mask, disadvantaged mask).
GroupMasks = tuple[str, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class GroupConfusion:
    """Confusion matrices for a privileged/disadvantaged group pair."""

    group_key: str
    privileged: ConfusionMatrix
    disadvantaged: ConfusionMatrix

    def metric_value(self, metric) -> float:
        """Evaluate a fairness metric callable on this pair."""
        return metric(self.privileged, self.disadvantaged)


def confusion_codes(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Combine 0/1 labels and predictions into (tn, fp, fn, tp) codes.

    The returned vector holds ``2 * y_true + y_pred`` so that value
    ``0`` is a true negative, ``1`` a false positive, ``2`` a false
    negative and ``3`` a true positive. Validates that both arrays are
    0/1 and share a shape.
    """
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    for name, arr in (("y_true", y_true), ("y_pred", y_pred)):
        bad = np.setdiff1d(np.unique(arr), (0, 1))
        if bad.size:
            raise ValueError(f"{name} must be 0/1, found {bad}")
    return 2 * y_true + y_pred


def _confusion_from_codes(codes: np.ndarray, mask: np.ndarray) -> ConfusionMatrix:
    counts = np.bincount(codes[mask], minlength=4)
    return ConfusionMatrix(
        tn=int(counts[0]), fp=int(counts[1]), fn=int(counts[2]), tp=int(counts[3])
    )


def group_masks(
    table: Table, specs: Sequence[GroupSpec | IntersectionalSpec]
) -> list[GroupMasks]:
    """Precompute the (privileged, disadvantaged) masks for each spec.

    The masks depend only on the table, so callers scoring many models
    on the same test set compute them once and reuse them with
    :func:`group_confusions_from_masks` for every prediction vector.
    """
    return [
        (spec.key, spec.privileged_mask(table), spec.disadvantaged_mask(table))
        for spec in specs
    ]


def group_confusions_from_masks(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    masks: Sequence[GroupMasks],
) -> list[GroupConfusion]:
    """Confusion-matrix pairs for precomputed group masks.

    Validates and encodes the label arrays once, then derives each
    group's counts with a single masked ``np.bincount``.
    """
    codes = confusion_codes(y_true, y_pred)
    return [
        GroupConfusion(
            group_key=key,
            privileged=_confusion_from_codes(codes, privileged),
            disadvantaged=_confusion_from_codes(codes, disadvantaged),
        )
        for key, privileged, disadvantaged in masks
    ]


def group_confusion_matrices(
    table: Table,
    y_true: np.ndarray,
    y_pred: np.ndarray,
    spec: GroupSpec | IntersectionalSpec,
) -> GroupConfusion:
    """Confusion matrices restricted to the spec's two groups."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != table.n_rows or len(y_pred) != table.n_rows:
        raise ValueError(
            f"label arrays must have {table.n_rows} entries, "
            f"got {len(y_true)} / {len(y_pred)}"
        )
    (confusion,) = group_confusions_from_masks(
        y_true, y_pred, group_masks(table, [spec])
    )
    return confusion


def group_key_fragments(group_key: str) -> tuple[str, str]:
    """(privileged, disadvantaged) store-key fragments for a group key.

    ``sex`` → ``("sex_priv", "sex_dis")``; the intersectional
    ``sex_x_age`` → ``("sex_priv__age_priv", "sex_dis__age_dis")``.
    """
    if "_x_" in group_key:
        first, second = group_key.split("_x_", 1)
        return f"{first}_priv__{second}_priv", f"{first}_dis__{second}_dis"
    return f"{group_key}_priv", f"{group_key}_dis"


def confusion_from_store_keys(
    metrics: dict, technique: str, fragment: str
) -> ConfusionMatrix | None:
    """Rebuild one group's confusion matrix from stored metric keys.

    Returns None when any of the four ``{technique}__{fragment}__*``
    count keys is absent (e.g. asking a dirty-only record about a
    repair it never ran).
    """
    cells = {}
    for cell in ("tn", "fp", "fn", "tp"):
        key = f"{technique}__{fragment}__{cell}"
        if key not in metrics:
            return None
        cells[cell] = int(metrics[key])
    return ConfusionMatrix(**cells)


def group_keys_in_metrics(metrics: dict, technique: str) -> list[str]:
    """Recover the group keys a record stored counts for, sorted.

    The inverse of :func:`result_store_keys`'s naming: scans for
    ``{technique}__{fragment}__tp`` keys and maps fragments back to
    group keys (``sex_priv`` → ``sex``, ``sex_priv__age_priv`` →
    ``sex_x_age``).
    """
    keys: set[str] = set()
    prefix = f"{technique}__"
    suffix = "__tp"
    for metric_key in metrics:
        if not metric_key.startswith(prefix) or not metric_key.endswith(suffix):
            continue
        fragment = metric_key[len(prefix) : -len(suffix)]
        parts = fragment.split("__")
        if all(part.endswith("_priv") for part in parts):
            if len(parts) == 1:
                keys.add(parts[0][: -len("_priv")])
            elif len(parts) == 2:
                keys.add("_x_".join(part[: -len("_priv")] for part in parts))
    return sorted(keys)


def result_store_keys(
    technique: str, group: GroupConfusion
) -> dict[str, int]:
    """Flatten a group confusion pair into CleanML-style result keys.

    For a single-attribute spec with key ``sex``::

        {technique}__sex_priv__tn ... {technique}__sex_dis__tp

    For an intersectional spec with key ``sex_x_age`` the fragments
    become ``sex_priv__age_priv`` and ``sex_dis__age_dis``.
    """
    priv_fragment, dis_fragment = group_key_fragments(group.group_key)
    keys: dict[str, int] = {}
    for fragment, matrix in (
        (priv_fragment, group.privileged),
        (dis_fragment, group.disadvantaged),
    ):
        for cell, count in matrix.as_dict().items():
            keys[f"{technique}__{fragment}__{cell}"] = count
    return keys
