"""Group-wise confusion matrices with CleanML-style key naming.

The benchmark records, per cleaning technique, the raw confusion
matrix counts for the privileged and disadvantaged groups. Keys follow
the paper's convention, e.g.::

    impute_mean_dummy__sex_priv__tp
    impute_mean_dummy__sex_priv__age_priv__fp   (intersectional)

Computing raw counts (rather than final metrics) keeps the result
store metric-agnostic, as the paper's Section IV motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fairness.groups import GroupSpec, IntersectionalSpec
from repro.ml.metrics import ConfusionMatrix, confusion_matrix
from repro.tabular import Table


@dataclass(frozen=True)
class GroupConfusion:
    """Confusion matrices for a privileged/disadvantaged group pair."""

    group_key: str
    privileged: ConfusionMatrix
    disadvantaged: ConfusionMatrix

    def metric_value(self, metric) -> float:
        """Evaluate a fairness metric callable on this pair."""
        return metric(self.privileged, self.disadvantaged)


def group_confusion_matrices(
    table: Table,
    y_true: np.ndarray,
    y_pred: np.ndarray,
    spec: GroupSpec | IntersectionalSpec,
) -> GroupConfusion:
    """Confusion matrices restricted to the spec's two groups."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != table.n_rows or len(y_pred) != table.n_rows:
        raise ValueError(
            f"label arrays must have {table.n_rows} entries, "
            f"got {len(y_true)} / {len(y_pred)}"
        )
    privileged = spec.privileged_mask(table)
    disadvantaged = spec.disadvantaged_mask(table)
    return GroupConfusion(
        group_key=spec.key,
        privileged=confusion_matrix(y_true[privileged], y_pred[privileged]),
        disadvantaged=confusion_matrix(y_true[disadvantaged], y_pred[disadvantaged]),
    )


def result_store_keys(
    technique: str, group: GroupConfusion
) -> dict[str, int]:
    """Flatten a group confusion pair into CleanML-style result keys.

    For a single-attribute spec with key ``sex``::

        {technique}__sex_priv__tn ... {technique}__sex_dis__tp

    For an intersectional spec with key ``sex_x_age`` the fragments
    become ``sex_priv__age_priv`` and ``sex_dis__age_dis``.
    """
    if "_x_" in group.group_key:
        first, second = group.group_key.split("_x_", 1)
        priv_fragment = f"{first}_priv__{second}_priv"
        dis_fragment = f"{first}_dis__{second}_dis"
    else:
        priv_fragment = f"{group.group_key}_priv"
        dis_fragment = f"{group.group_key}_dis"
    keys: dict[str, int] = {}
    for fragment, matrix in (
        (priv_fragment, group.privileged),
        (dis_fragment, group.disadvantaged),
    ):
        for cell, count in matrix.as_dict().items():
            keys[f"{technique}__{fragment}__{cell}"] = count
    return keys
