"""Group fairness: protected-group definitions and fairness metrics.

Groups are defined by binary predicates over sensitive attributes
(Listing 1 in the paper); intersectional groups combine two predicates
and deliberately do *not* partition the data (tuples privileged along
one axis and disadvantaged along the other are excluded, as in the
paper's Section II).
"""

from repro.fairness.groups import (
    GroupPredicate,
    GroupSpec,
    IntersectionalSpec,
    Comparison,
)
from repro.fairness.confusion import (
    GroupConfusion,
    confusion_from_store_keys,
    group_confusion_matrices,
    group_confusions_from_masks,
    group_key_fragments,
    group_keys_in_metrics,
    group_masks,
    result_store_keys,
)
from repro.fairness.metrics import (
    ALL_FAIRNESS_METRICS,
    FAIRNESS_METRICS,
    accuracy_parity,
    demographic_parity,
    equal_opportunity,
    equalized_odds,
    false_positive_rate_parity,
    predictive_parity,
)

__all__ = [
    "GroupPredicate",
    "GroupSpec",
    "IntersectionalSpec",
    "Comparison",
    "GroupConfusion",
    "confusion_from_store_keys",
    "group_confusion_matrices",
    "group_confusions_from_masks",
    "group_key_fragments",
    "group_keys_in_metrics",
    "group_masks",
    "result_store_keys",
    "predictive_parity",
    "equal_opportunity",
    "demographic_parity",
    "equalized_odds",
    "false_positive_rate_parity",
    "accuracy_parity",
    "FAIRNESS_METRICS",
    "ALL_FAIRNESS_METRICS",
]
