"""Protected-group definitions.

A :class:`GroupPredicate` is the declarative building block from the
paper's Listing 1: ``("age", operator.gt, 25)`` marks the privileged
group. A :class:`GroupSpec` names a single sensitive attribute and its
privileged predicate; the disadvantaged group is its complement. An
:class:`IntersectionalSpec` combines two specs: intersectionally
privileged tuples satisfy both privileged predicates, intersectionally
disadvantaged tuples satisfy neither — mixed tuples are excluded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.tabular import ColumnKind, Table


class Comparison(enum.Enum):
    """Comparison operators available in group predicates."""

    EQ = "eq"
    GT = "gt"
    GE = "ge"
    LT = "lt"
    LE = "le"


@dataclass(frozen=True)
class GroupPredicate:
    """A binary predicate over one sensitive attribute.

    Attributes:
        attribute: Sensitive-attribute column name.
        comparison: Comparison operator.
        value: Comparison constant (str for categorical, number for numeric).
    """

    attribute: str
    comparison: Comparison
    value: str | float | int

    def evaluate(self, table: Table) -> np.ndarray:
        """Boolean mask of tuples satisfying the predicate.

        Tuples with a missing sensitive attribute satisfy neither a
        predicate nor its complement and evaluate to False here; use
        :meth:`defined` to identify them.
        """
        if self.attribute not in table.schema:
            raise KeyError(
                f"sensitive attribute {self.attribute!r} not in table; "
                f"available: {', '.join(table.column_names)}"
            )
        kind = table.kind_of(self.attribute)
        if kind is ColumnKind.CATEGORICAL:
            if self.comparison is not Comparison.EQ:
                raise ValueError(
                    f"categorical attribute {self.attribute!r} only supports EQ"
                )
            # one vectorised code comparison; missing (-1) never matches
            return table.categorical(self.attribute).eq(str(self.value))
        values = table.column(self.attribute)
        numeric = values.astype(np.float64)
        defined = ~np.isnan(numeric)
        constant = float(self.value)  # raises for non-numeric constants
        result = np.zeros(len(values), dtype=bool)
        if self.comparison is Comparison.EQ:
            result[defined] = numeric[defined] == constant
        elif self.comparison is Comparison.GT:
            result[defined] = numeric[defined] > constant
        elif self.comparison is Comparison.GE:
            result[defined] = numeric[defined] >= constant
        elif self.comparison is Comparison.LT:
            result[defined] = numeric[defined] < constant
        else:
            result[defined] = numeric[defined] <= constant
        return result

    def defined(self, table: Table) -> np.ndarray:
        """Boolean mask of tuples whose sensitive attribute is present."""
        return ~table.is_missing(self.attribute)


@dataclass(frozen=True)
class GroupSpec:
    """A single-attribute protected-group definition.

    Attributes:
        attribute: Human-readable sensitive-attribute name (used in
            result-store keys, e.g. ``sex``).
        privileged: Predicate marking the privileged group.
    """

    attribute: str
    privileged: GroupPredicate

    def privileged_mask(self, table: Table) -> np.ndarray:
        """Tuples in the privileged group."""
        return self.privileged.evaluate(table)

    def disadvantaged_mask(self, table: Table) -> np.ndarray:
        """Tuples in the disadvantaged group (complement among defined)."""
        return ~self.privileged.evaluate(table) & self.privileged.defined(table)

    @property
    def key(self) -> str:
        """Result-store key fragment, e.g. ``sex``."""
        return self.attribute


@dataclass(frozen=True)
class IntersectionalSpec:
    """An intersectional group definition over two sensitive attributes.

    Privileged = privileged on both axes; disadvantaged = disadvantaged
    on both axes. Mixed tuples belong to neither group.
    """

    first: GroupSpec
    second: GroupSpec

    def privileged_mask(self, table: Table) -> np.ndarray:
        """Tuples privileged along both axes."""
        return self.first.privileged_mask(table) & self.second.privileged_mask(table)

    def disadvantaged_mask(self, table: Table) -> np.ndarray:
        """Tuples disadvantaged along both axes."""
        return self.first.disadvantaged_mask(table) & self.second.disadvantaged_mask(
            table
        )

    @property
    def key(self) -> str:
        """Result-store key fragment, e.g. ``sex_x_age``."""
        return f"{self.first.attribute}_x_{self.second.attribute}"
