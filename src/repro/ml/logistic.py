"""L2-regularised logistic regression.

Fitted by minimising the penalised negative log-likelihood

    L(w, b) = -sum_i log p_i + ||w||^2 / (2 C)

with scipy's L-BFGS-B and an analytic gradient. The intercept is not
penalised, matching scikit-learn's behaviour for the paper's tuned ``C``.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseClassifier


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegressionClassifier(BaseClassifier):
    """Binary logistic regression with inverse regularisation strength C.

    Args:
        C: Inverse of the L2 penalty weight (larger C = weaker penalty).
        max_iter: L-BFGS iteration budget.
        tol: Optimiser convergence tolerance.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200, tol: float = 1e-6) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        X, y = self._check_fit_inputs(X, y)
        n_samples, n_features = X.shape
        y_float = y.astype(np.float64)
        penalty = 1.0 / (2.0 * self.C)

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = theta[:n_features], theta[n_features]
            z = X @ w + b
            p = _sigmoid(z)
            # log-likelihood via the numerically stable log1p formulation
            loss = float(
                np.sum(np.logaddexp(0.0, z) - y_float * z) + penalty * (w @ w)
            )
            residual = p - y_float
            grad_w = X.T @ residual + 2.0 * penalty * w
            grad_b = float(np.sum(residual))
            return loss, np.concatenate([grad_w, [grad_b]])

        theta0 = np.zeros(n_features + 1)
        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_ = result.x[:n_features]
        self.intercept_ = float(result.x[n_features])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits."""
        if self.coef_ is None:
            raise RuntimeError("LogisticRegressionClassifier is not fitted")
        X = self._check_predict_inputs(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])
