"""L2-regularised logistic regression.

Fitted by minimising the penalised negative log-likelihood

    L(w, b) = -sum_i log p_i + ||w||^2 / (2 C)

with scipy's L-BFGS-B and an analytic gradient. The intercept is not
penalised, matching scikit-learn's behaviour for the paper's tuned ``C``.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import optimize

from repro.ml import incremental
from repro.ml.base import BaseClassifier, clone, split_single_parameter_grid

#: Safety factor on the warm-start logit error band (see ``fit``).
_WARM_GUARD_SAFETY = 8.0


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegressionClassifier(BaseClassifier):
    """Binary logistic regression with inverse regularisation strength C.

    Args:
        C: Inverse of the L2 penalty weight (larger C = weaker penalty).
        max_iter: L-BFGS iteration budget.
        tol: Optimiser convergence tolerance.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200, tol: float = 1e-6) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        # (fit X, fit y as float, logit error-band coefficient) while a
        # warm-started solution awaits its prediction-time identity guard
        self._warm_pending: tuple[np.ndarray, np.ndarray, float] | None = None

    def _solve(self, X: np.ndarray, y_float: np.ndarray, theta0: np.ndarray) -> np.ndarray:
        """Minimise the penalised NLL from ``theta0`` via L-BFGS-B."""
        n_features = X.shape[1]
        penalty = 1.0 / (2.0 * self.C)

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = theta[:n_features], theta[n_features]
            z = X @ w + b
            p = _sigmoid(z)
            # log-likelihood via the numerically stable log1p formulation
            loss = float(
                np.sum(np.logaddexp(0.0, z) - y_float * z) + penalty * (w @ w)
            )
            residual = p - y_float
            grad_w = X.T @ residual + 2.0 * penalty * w
            grad_b = float(np.sum(residual))
            return loss, np.concatenate([grad_w, [grad_b]])

        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        return result.x

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        """Fit from zeros — or warm-start inside an incremental scope.

        When a :mod:`repro.ml.incremental` scope is active and holds a
        converged solution of matching dimension and ``C`` (typically
        the parent dataset version's refit), L-BFGS starts there
        instead of at zeros. Warm and cold runs both stop within the
        ``gtol`` band of the optimum, so their parameter gap is
        bounded by strong convexity (the L2 penalty gives curvature
        ≥ 1/C): ``||Δθ|| ≤ 2·√(d+1)·tol·C``, times a safety factor
        for the unpenalised intercept direction. Predictions can only
        differ from a cold fit if a test logit falls inside that band
        — :meth:`decision_function` checks exactly that and re-solves
        from zeros when any logit is too close to the boundary, so
        *returned predictions* are always identical to the cold fit's.
        """
        X, y = self._check_fit_inputs(X, y)
        n_features = X.shape[1]
        y_float = y.astype(np.float64)
        self._warm_pending = None
        scope = incremental.active()
        warm = None
        if scope is not None:
            warm = scope.warm_get(("logreg", n_features, self.C))
        if warm is not None:
            theta = self._solve(X, y_float, warm.copy())
            band = (
                _WARM_GUARD_SAFETY
                * 2.0
                * np.sqrt(n_features + 1.0)
                * self.tol
                * self.C
            )
            self._warm_pending = (X, y_float, float(band))
            scope.record("logreg_warm", hit=True)
        else:
            theta = self._solve(X, y_float, np.zeros(n_features + 1))
            if scope is not None:
                scope.record("logreg_warm", hit=False)
        if scope is not None:
            scope.warm_put(("logreg", n_features, self.C), theta.copy())
        self.coef_ = theta[:n_features]
        self.intercept_ = float(theta[n_features])
        return self

    def score_grid(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        candidates: "list[dict[str, Any]]",
    ) -> np.ndarray | None:
        """Evaluate a ``C`` grid by warm-starting along the sorted path.

        Candidates are solved from the most regularised ``C`` upward,
        each L-BFGS run starting from the previous solution, which
        typically converges in a fraction of the cold-start
        iterations. Unlike the kNN and boosting fast paths this is not
        identical by construction — warm and cold starts can stop at
        slightly different points within the optimiser tolerance — but
        predictions only differ if a test logit crosses zero inside
        that tolerance band, which the identity tests pin down on the
        study's data. Returns ``None`` for anything but a pure
        positive ``C`` grid.
        """
        spec = split_single_parameter_grid(candidates)
        if spec is None or spec[1] != "C":
            return None
        fixed, __, values = spec
        if any(
            not isinstance(value, (int, float, np.integer, np.floating))
            or value <= 0
            for value in values
        ):
            return None
        model = clone(self).set_params(**fixed)
        X, y = model._check_fit_inputs(X_train, y_train)
        X_eval = model._check_predict_inputs(X_test)
        y_float = y.astype(np.float64)
        order = sorted(range(len(values)), key=lambda index: values[index])
        predictions = np.empty((len(values), X_eval.shape[0]), dtype=np.int64)
        theta = np.zeros(X.shape[1] + 1)
        for index in order:
            model.C = values[index]
            theta = model._solve(X, y_float, theta.copy())
            logits = X_eval @ theta[: X.shape[1]] + float(theta[X.shape[1]])
            predictions[index] = _sigmoid(logits) >= 0.5
        return predictions

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits, with the warm-start identity guard.

        While a warm-started solution is pending, every logit is
        checked against the analytic warm-vs-cold error band scaled by
        its row norm; if any logit could plausibly sit on the other
        side of zero under a cold fit, the model re-solves from zeros
        (the byte-identity fallback) before answering.
        """
        if self.coef_ is None:
            raise RuntimeError("LogisticRegressionClassifier is not fitted")
        X = self._check_predict_inputs(X)
        logits = X @ self.coef_ + self.intercept_
        pending = self._warm_pending
        if pending is not None:
            fit_X, fit_y, band = pending
            margins = band * (np.sqrt(np.sum(X * X, axis=1)) + 1.0)
            scope = incremental.active()
            if np.any(np.abs(logits) <= margins):
                n_features = fit_X.shape[1]
                theta = self._solve(fit_X, fit_y, np.zeros(n_features + 1))
                self.coef_ = theta[:n_features]
                self.intercept_ = float(theta[n_features])
                self._warm_pending = None
                if scope is not None:
                    scope.record("logreg_warm_guard", hit=False)
                    scope.warm_put(("logreg", n_features, self.C), theta.copy())
                logits = X @ self.coef_ + self.intercept_
            elif scope is not None:
                scope.record("logreg_warm_guard", hit=True)
        return logits

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])
