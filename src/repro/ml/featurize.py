"""Table-to-matrix featurisation.

The :class:`TabularFeaturizer` turns a :class:`~repro.tabular.Table`
into a dense float matrix: numeric columns are standardised, and
categorical columns are one-hot encoded straight from their
dictionary codes (no string materialisation, no per-call
string→index dict). It is always fitted on the training table and
applied to both train and test tables, mirroring the paper's
pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.tabular import Table


class TabularFeaturizer(BaseEstimator):
    """Featurise tables for the study's classifiers.

    Args:
        feature_columns: The columns to featurise; defaults to every
            column of the table passed to :meth:`fit`.

    Numeric columns must not contain NaN at fit/transform time (the
    benchmark repairs or drops missing values first); categorical
    missing values (None) are tolerated and encoded as their own
    indicator when present during fit.
    """

    def __init__(self, feature_columns: tuple[str, ...] | None = None) -> None:
        self.feature_columns = feature_columns
        self._numeric_names: tuple[str, ...] = ()
        self._categorical_names: tuple[str, ...] = ()
        self._scaler: StandardScaler | None = None
        self._encoder: OneHotEncoder | None = None

    def fit(self, table: Table) -> "TabularFeaturizer":
        names = self.feature_columns or table.column_names
        missing = [name for name in names if name not in table.schema]
        if missing:
            raise KeyError(f"feature columns not in table: {missing}")
        self._numeric_names = tuple(
            name for name in names if name in set(table.schema.numeric_names())
        )
        self._categorical_names = tuple(
            name for name in names if name in set(table.schema.categorical_names())
        )
        if self._numeric_names:
            numeric = np.column_stack(
                [table.column(name) for name in self._numeric_names]
            )
            if np.isnan(numeric).any():
                raise ValueError(
                    "numeric feature columns contain NaN; repair missing values first"
                )
            self._scaler = StandardScaler().fit(numeric)
        self._encoder = OneHotEncoder().fit(
            [table.categorical(name) for name in self._categorical_names]
        )
        return self

    def transform(self, table: Table) -> np.ndarray:
        """Return the dense feature matrix for ``table``."""
        if self._encoder is None:
            raise RuntimeError("TabularFeaturizer is not fitted")
        blocks = []
        if self._numeric_names:
            numeric = np.column_stack(
                [table.column(name) for name in self._numeric_names]
            )
            if np.isnan(numeric).any():
                raise ValueError(
                    "numeric feature columns contain NaN; repair missing values first"
                )
            assert self._scaler is not None
            blocks.append(self._scaler.transform(numeric))
        if self._categorical_names:
            blocks.append(
                self._encoder.transform(
                    [table.categorical(name) for name in self._categorical_names]
                )
            )
        if not blocks:
            return np.zeros((table.n_rows, 0), dtype=np.float64)
        return np.hstack(blocks)

    def fit_transform(self, table: Table) -> np.ndarray:
        return self.fit(table).transform(table)

    @property
    def n_output_features(self) -> int:
        """Width of the produced feature matrix."""
        if self._encoder is None:
            raise RuntimeError("TabularFeaturizer is not fitted")
        width = len(self._numeric_names)
        width += self._encoder.n_output_features
        return width
