"""Feature preprocessing: standardisation and one-hot encoding."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.tabular.encoding import CategoricalColumn, encode_values


class StandardScaler(BaseEstimator):
    """Standardise numeric features to zero mean and unit variance.

    Constant columns are left centred (their standard deviation is
    treated as 1 to avoid division by zero).
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-d, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class OneHotEncoder(BaseEstimator):
    """One-hot encode dictionary-encoded (or object-array) columns.

    Categories are learned at fit time; unseen categories at transform
    time map to the all-zeros vector (the "ignore" strategy). ``None``
    (missing) values also map to all-zeros unless they were present at
    fit time, in which case missingness gets its own indicator — this
    is what lets downstream models exploit "dummy"-imputed columns.

    The native input is a list of
    :class:`~repro.tabular.encoding.CategoricalColumn`: fitting counts
    codes with ``bincount`` and transforming scatters ones through a
    per-column code→position table — no per-cell Python work and no
    string materialisation. Object arrays of ``str | None`` are still
    accepted (they are encoded on entry) and produce identical
    ``categories_`` and blocks.
    """

    def __init__(self) -> None:
        self.categories_: list[list[str | None]] | None = None

    @staticmethod
    def _as_encoded(values: np.ndarray | CategoricalColumn) -> CategoricalColumn:
        if isinstance(values, CategoricalColumn):
            return values
        return encode_values(values)

    def fit(
        self, columns: list[np.ndarray | CategoricalColumn]
    ) -> "OneHotEncoder":
        """Fit on a list of columns (one per categorical feature)."""
        self.categories_ = []
        for values in columns:
            column = self._as_encoded(values)
            # categories are the *present* values, sorted, with None
            # last when missingness was observed at fit time
            ordered: list[str | None] = list(column.present_values())
            if column.missing_mask().any():
                ordered.append(None)
            self.categories_.append(ordered)
        return self

    def transform(
        self, columns: list[np.ndarray | CategoricalColumn]
    ) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"expected {len(self.categories_)} columns, got {len(columns)}"
            )
        if not columns:
            return np.zeros((0, 0), dtype=np.float64)
        encoded = [self._as_encoded(values) for values in columns]
        n_rows = len(encoded[0])
        width = self.n_output_features
        # absolute output position per (row, column); -1 = all-zeros row
        absolute = np.empty((n_rows, len(encoded)), dtype=np.intp)
        offset = 0
        for slot, (column, categories) in enumerate(
            zip(encoded, self.categories_)
        ):
            position_of = {
                category: i
                for i, category in enumerate(categories)
                if category is not None
            }
            # code→category position; -1 = not fitted → all-zeros row
            mapping = np.full(len(column.pool) + 1, -1, dtype=np.intp)
            for code, value in enumerate(column.pool):
                mapping[code] = position_of.get(value, -1)
            if categories and categories[-1] is None:
                mapping[-1] = len(categories) - 1
            positions = mapping[column.codes]  # missing (-1) hits the tail
            np.add(positions, offset, where=positions >= 0, out=positions)
            absolute[:, slot] = positions
            offset += len(categories)
        # one allocation, one scatter: flat indices laid out row-major
        # are already sorted, so the write pass is sequential instead
        # of one sparse sweep over the matrix per column
        block = np.zeros((n_rows, width), dtype=np.float64)
        indices = (
            np.arange(n_rows, dtype=np.intp)[:, None] * width + absolute
        ).reshape(-1)
        valid = absolute.reshape(-1) >= 0
        if not valid.all():
            indices = indices[valid]
        block.reshape(-1)[indices] = 1.0
        return block

    def fit_transform(
        self, columns: list[np.ndarray | CategoricalColumn]
    ) -> np.ndarray:
        return self.fit(columns).transform(columns)

    @property
    def n_output_features(self) -> int:
        """Total width of the encoded block."""
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        return sum(len(categories) for categories in self.categories_)
