"""Feature preprocessing: standardisation and one-hot encoding."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator


class StandardScaler(BaseEstimator):
    """Standardise numeric features to zero mean and unit variance.

    Constant columns are left centred (their standard deviation is
    treated as 1 to avoid division by zero).
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-d, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class OneHotEncoder(BaseEstimator):
    """One-hot encode columns of string categories.

    Categories are learned at fit time; unseen categories at transform
    time map to the all-zeros vector (the "ignore" strategy). ``None``
    (missing) values also map to all-zeros unless they were present at
    fit time, in which case missingness gets its own indicator — this
    is what lets downstream models exploit "dummy"-imputed columns.
    """

    def __init__(self) -> None:
        self.categories_: list[list[str | None]] | None = None

    def fit(self, columns: list[np.ndarray]) -> "OneHotEncoder":
        """Fit on a list of object arrays (one per categorical column)."""
        self.categories_ = []
        for values in columns:
            seen: set[str | None] = set()
            for value in values:
                seen.add(value)
            # None sorts last; strings sort lexicographically.
            ordered = sorted(
                (value for value in seen if value is not None)
            ) + ([None] if None in seen else [])
            self.categories_.append(ordered)
        return self

    def transform(self, columns: list[np.ndarray]) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"expected {len(self.categories_)} columns, got {len(columns)}"
            )
        blocks = []
        for values, categories in zip(columns, self.categories_):
            index = {category: i for i, category in enumerate(categories)}
            block = np.zeros((len(values), len(categories)), dtype=np.float64)
            for row, value in enumerate(values):
                position = index.get(value)
                if position is not None:
                    block[row, position] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((0, 0), dtype=np.float64)
        return np.hstack(blocks)

    def fit_transform(self, columns: list[np.ndarray]) -> np.ndarray:
        return self.fit(columns).transform(columns)

    @property
    def n_output_features(self) -> int:
        """Total width of the encoded block."""
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        return sum(len(categories) for categories in self.categories_)
