"""Isolation forest for multivariate outlier detection.

Direct implementation of Liu, Ting & Zhou's iForest: an ensemble of
random isolation trees built on small subsamples; the anomaly score of
a point is ``2^(-E[h(x)] / c(n))`` where ``h`` is the path length to
isolation and ``c(n)`` the average BST path length. Points whose score
exceeds the ``contamination`` quantile are flagged — matching
scikit-learn's contamination semantics used in the paper (0.01).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator


def _average_path_length(n: float) -> float:
    """Expected path length of an unsuccessful BST search among n points."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1.0) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1.0) / n


@dataclass
class _ITreeNode:
    feature: int
    threshold: float
    size: int
    left: "_ITreeNode | None" = None
    right: "_ITreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _build_itree(
    X: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator
) -> _ITreeNode:
    n = X.shape[0]
    if depth >= max_depth or n <= 1:
        return _ITreeNode(feature=-1, threshold=0.0, size=n)
    spans = X.max(axis=0) - X.min(axis=0)
    splittable = np.nonzero(spans > 0)[0]
    if splittable.size == 0:
        return _ITreeNode(feature=-1, threshold=0.0, size=n)
    feature = int(rng.choice(splittable))
    low, high = X[:, feature].min(), X[:, feature].max()
    threshold = float(rng.uniform(low, high))
    goes_left = X[:, feature] < threshold
    return _ITreeNode(
        feature=feature,
        threshold=threshold,
        size=n,
        left=_build_itree(X[goes_left], depth + 1, max_depth, rng),
        right=_build_itree(X[~goes_left], depth + 1, max_depth, rng),
    )


class _FlatTree:
    """An isolation tree flattened to struct-of-arrays for traversal.

    Node ``i`` is internal iff ``feature[i] >= 0``; its children are
    ``left[i]``/``right[i]``. For leaves, ``leaf_value[i]`` holds the
    fully-resolved path length ``depth + c(size)`` — precomputed with
    the same scalar addition the recursive walk performed, so scores
    are bit-identical to a pointer-chasing descent.
    """

    __slots__ = ("feature", "threshold", "left", "right", "leaf_value")

    def __init__(self, root: _ITreeNode) -> None:
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        leaf_value: list[float] = []
        # preorder walk assigning indices; stack holds (node, depth)
        stack: list[tuple[_ITreeNode, int, int]] = [(root, 0, -1)]
        # (node, depth, parent slot): parent slot >= 0 patches right[]
        while stack:
            node, depth, patch = stack.pop()
            index = len(feature)
            if patch >= 0:
                right[patch] = index
            if node.is_leaf:
                feature.append(-1)
                threshold.append(0.0)
                left.append(-1)
                right.append(-1)
                leaf_value.append(depth + _average_path_length(node.size))
            else:
                assert node.left is not None and node.right is not None
                feature.append(node.feature)
                threshold.append(node.threshold)
                left.append(index + 1)  # preorder: left child is next
                right.append(-1)  # patched when the right child is emitted
                leaf_value.append(0.0)
                stack.append((node.right, depth + 1, index))
                stack.append((node.left, depth + 1, -1))
        self.feature = np.array(feature, dtype=np.int32)
        self.threshold = np.array(threshold, dtype=np.float64)
        self.left = np.array(left, dtype=np.int32)
        self.right = np.array(right, dtype=np.int32)
        self.leaf_value = np.array(leaf_value, dtype=np.float64)

    def path_lengths(self, X: np.ndarray, out: np.ndarray) -> None:
        """Iterative batch descent over the flattened arrays.

        An explicit worklist replaces the recursive partitioning: each
        entry routes a whole row batch through one node with a single
        column compare, so no Python recursion (or per-leaf
        ``_average_path_length`` recomputation) happens on the hot
        scoring path.
        """
        feature, threshold = self.feature, self.threshold
        left, right, leaf_value = self.left, self.right, self.leaf_value
        stack = [(0, np.arange(X.shape[0]))]
        while stack:
            index, rows = stack.pop()
            f = feature[index]
            if f < 0:
                out[rows] = leaf_value[index]
                continue
            goes_left = X[rows, f] < threshold[index]
            stack.append((right[index], rows[~goes_left]))
            stack.append((left[index], rows[goes_left]))


class IsolationForest(BaseEstimator):
    """Isolation forest anomaly detector.

    Args:
        n_estimators: Number of isolation trees.
        max_samples: Subsample size per tree (capped at dataset size).
        contamination: Expected fraction of outliers; sets the decision
            threshold on the fitted scores.
        random_state: Seed.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 0.01,
        random_state: int = 0,
    ) -> None:
        if not 0.0 < contamination < 0.5:
            raise ValueError(
                f"contamination must be in (0, 0.5), got {contamination}"
            )
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self.random_state = random_state
        self._trees: list[_FlatTree] = []
        self._subsample_size: int = 0
        self.threshold_: float | None = None

    def fit(self, X: np.ndarray) -> "IsolationForest":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError(f"X must be a non-empty 2-d array, got shape {X.shape}")
        if np.isnan(X).any():
            raise ValueError("X contains NaN; isolation forest needs complete rows")
        rng = np.random.default_rng(self.random_state)
        self._subsample_size = min(self.max_samples, X.shape[0])
        max_depth = int(np.ceil(np.log2(max(2, self._subsample_size))))
        self._trees = []
        for __ in range(self.n_estimators):
            rows = rng.choice(X.shape[0], size=self._subsample_size, replace=False)
            # recursive build keeps the historical RNG stream; the node
            # tree is flattened immediately and discarded
            self._trees.append(_FlatTree(_build_itree(X[rows], 0, max_depth, rng)))
        scores = self.score_samples(X)
        # contamination-quantile threshold, as in scikit-learn
        self.threshold_ = float(
            np.quantile(scores, 1.0 - self.contamination, method="lower")
        )
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); higher = more anomalous."""
        if not self._trees:
            raise RuntimeError("IsolationForest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        depths = np.zeros(X.shape[0], dtype=np.float64)
        buffer = np.empty(X.shape[0], dtype=np.float64)
        for tree in self._trees:
            tree.path_lengths(X, buffer)
            depths += buffer
        mean_depth = depths / len(self._trees)
        normaliser = _average_path_length(self._subsample_size)
        return np.power(2.0, -mean_depth / max(normaliser, 1e-12))

    def predict_outliers(self, X: np.ndarray) -> np.ndarray:
        """Boolean mask: True where a row is flagged as an outlier."""
        if self.threshold_ is None:
            raise RuntimeError("IsolationForest is not fitted")
        return self.score_samples(X) > self.threshold_
