"""Isolation forest for multivariate outlier detection.

Direct implementation of Liu, Ting & Zhou's iForest: an ensemble of
random isolation trees built on small subsamples; the anomaly score of
a point is ``2^(-E[h(x)] / c(n))`` where ``h`` is the path length to
isolation and ``c(n)`` the average BST path length. Points whose score
exceeds the ``contamination`` quantile are flagged — matching
scikit-learn's contamination semantics used in the paper (0.01).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator


def _average_path_length(n: float) -> float:
    """Expected path length of an unsuccessful BST search among n points."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1.0) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1.0) / n


@dataclass
class _ITreeNode:
    feature: int
    threshold: float
    size: int
    left: "_ITreeNode | None" = None
    right: "_ITreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _build_itree(
    X: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator
) -> _ITreeNode:
    n = X.shape[0]
    if depth >= max_depth or n <= 1:
        return _ITreeNode(feature=-1, threshold=0.0, size=n)
    spans = X.max(axis=0) - X.min(axis=0)
    splittable = np.nonzero(spans > 0)[0]
    if splittable.size == 0:
        return _ITreeNode(feature=-1, threshold=0.0, size=n)
    feature = int(rng.choice(splittable))
    low, high = X[:, feature].min(), X[:, feature].max()
    threshold = float(rng.uniform(low, high))
    goes_left = X[:, feature] < threshold
    return _ITreeNode(
        feature=feature,
        threshold=threshold,
        size=n,
        left=_build_itree(X[goes_left], depth + 1, max_depth, rng),
        right=_build_itree(X[~goes_left], depth + 1, max_depth, rng),
    )


def _path_lengths(node: _ITreeNode, X: np.ndarray, rows: np.ndarray, depth: int,
                  out: np.ndarray) -> None:
    if node.is_leaf:
        out[rows] = depth + _average_path_length(node.size)
        return
    assert node.left is not None and node.right is not None
    goes_left = X[rows, node.feature] < node.threshold
    _path_lengths(node.left, X, rows[goes_left], depth + 1, out)
    _path_lengths(node.right, X, rows[~goes_left], depth + 1, out)


class IsolationForest(BaseEstimator):
    """Isolation forest anomaly detector.

    Args:
        n_estimators: Number of isolation trees.
        max_samples: Subsample size per tree (capped at dataset size).
        contamination: Expected fraction of outliers; sets the decision
            threshold on the fitted scores.
        random_state: Seed.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 0.01,
        random_state: int = 0,
    ) -> None:
        if not 0.0 < contamination < 0.5:
            raise ValueError(
                f"contamination must be in (0, 0.5), got {contamination}"
            )
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self.random_state = random_state
        self._trees: list[_ITreeNode] = []
        self._subsample_size: int = 0
        self.threshold_: float | None = None

    def fit(self, X: np.ndarray) -> "IsolationForest":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError(f"X must be a non-empty 2-d array, got shape {X.shape}")
        if np.isnan(X).any():
            raise ValueError("X contains NaN; isolation forest needs complete rows")
        rng = np.random.default_rng(self.random_state)
        self._subsample_size = min(self.max_samples, X.shape[0])
        max_depth = int(np.ceil(np.log2(max(2, self._subsample_size))))
        self._trees = []
        for __ in range(self.n_estimators):
            rows = rng.choice(X.shape[0], size=self._subsample_size, replace=False)
            self._trees.append(_build_itree(X[rows], 0, max_depth, rng))
        scores = self.score_samples(X)
        # contamination-quantile threshold, as in scikit-learn
        self.threshold_ = float(
            np.quantile(scores, 1.0 - self.contamination, method="lower")
        )
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); higher = more anomalous."""
        if not self._trees:
            raise RuntimeError("IsolationForest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        depths = np.zeros(X.shape[0], dtype=np.float64)
        buffer = np.empty(X.shape[0], dtype=np.float64)
        rows = np.arange(X.shape[0])
        for tree in self._trees:
            _path_lengths(tree, X, rows, 0, buffer)
            depths += buffer
        mean_depth = depths / len(self._trees)
        normaliser = _average_path_length(self._subsample_size)
        return np.power(2.0, -mean_depth / max(normaliser, 1e-12))

    def predict_outliers(self, X: np.ndarray) -> np.ndarray:
        """Boolean mask: True where a row is flagged as an outlier."""
        if self.threshold_ is None:
            raise RuntimeError("IsolationForest is not fitted")
        return self.score_samples(X) > self.threshold_
