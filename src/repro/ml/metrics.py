"""Classification metrics for binary tasks.

All functions take 0/1 integer arrays. The confusion-matrix layout
follows the (tn, fp, fn, tp) convention the paper's result store uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion-matrix counts."""

    tn: int
    fp: int
    fn: int
    tp: int

    @property
    def total(self) -> int:
        """Total number of scored examples."""
        return self.tn + self.fp + self.fn + self.tp

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (NaN when empty)."""
        if self.total == 0:
            return float("nan")
        return (self.tp + self.tn) / self.total

    @property
    def precision(self) -> float:
        """TP / (TP + FP); NaN when no positive predictions."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else float("nan")

    @property
    def recall(self) -> float:
        """TP / (TP + FN); NaN when no positive examples."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else float("nan")

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN); NaN when no negative examples."""
        denominator = self.fp + self.tn
        return self.fp / denominator if denominator else float("nan")

    @property
    def selection_rate(self) -> float:
        """Fraction of positive predictions (NaN when empty)."""
        if self.total == 0:
            return float("nan")
        return (self.tp + self.fp) / self.total

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall; 0 when undefined."""
        precision, recall = self.precision, self.recall
        if np.isnan(precision) or np.isnan(recall) or precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def as_dict(self) -> dict[str, int]:
        """Counts in the result-store key order."""
        return {"tn": self.tn, "fp": self.fp, "fn": self.fn, "tp": self.tp}

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            self.tn + other.tn,
            self.fp + other.fp,
            self.fn + other.fn,
            self.tp + other.tp,
        )


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    for name, arr in (("y_true", y_true), ("y_pred", y_pred)):
        bad = np.setdiff1d(np.unique(arr), (0, 1))
        if bad.size:
            raise ValueError(f"{name} must be 0/1, found {bad}")
    return y_true, y_pred


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionMatrix:
    """Compute the binary confusion matrix."""
    y_true, y_pred = _validate(y_true, y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return ConfusionMatrix(tn=tn, fp=fp, fn=fn, tp=tp)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.size == 0:
        return float("nan")
    return float(np.mean(y_true == y_pred))


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Precision of the positive class."""
    return confusion_matrix(y_true, y_pred).precision


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Recall of the positive class."""
    return confusion_matrix(y_true, y_pred).recall


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """F1 of the positive class."""
    return confusion_matrix(y_true, y_pred).f1


def log_loss(y_true: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean negative log-likelihood of the positive-class probabilities.

    ``probabilities`` is the P(y=1) vector; values are clipped away from
    0 and 1 for numerical stability.
    """
    y_true = np.asarray(y_true).astype(np.float64)
    p = np.clip(np.asarray(probabilities, dtype=np.float64), 1e-12, 1 - 1e-12)
    if y_true.shape != p.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {p.shape}")
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve, computed from the rank statistic.

    Equivalent to the probability that a random positive example
    receives a higher score than a random negative one (ties count 1/2).
    """
    y_true = np.asarray(y_true).astype(np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {scores.shape}")
    n_pos = int(np.sum(y_true == 1))
    n_neg = int(np.sum(y_true == 0))
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    n = len(scores)
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum_pos = float(np.sum(ranks[y_true == 1]))
    return (rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
