"""Estimator protocol and cloning.

Estimators follow the scikit-learn convention: all hyperparameters are
keyword arguments of ``__init__`` stored under the same attribute name,
``fit`` returns ``self``, and fitted state lives in attributes with a
trailing underscore. :func:`clone` builds an unfitted copy from the
constructor parameters.
"""

from __future__ import annotations

import inspect
from typing import Any, TypeVar

import numpy as np

EstimatorT = TypeVar("EstimatorT", bound="BaseEstimator")


class BaseEstimator:
    """Shared parameter plumbing for all estimators."""

    @classmethod
    def _param_names(cls) -> tuple[str, ...]:
        signature = inspect.signature(cls.__init__)
        return tuple(
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        )

    def get_params(self) -> dict[str, Any]:
        """Return the constructor hyperparameters of this estimator."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self: EstimatorT, **params: Any) -> EstimatorT:
        """Set hyperparameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no hyperparameter {name!r}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: EstimatorT) -> EstimatorT:
    """Return an unfitted copy of ``estimator`` with identical hyperparameters."""
    return type(estimator)(**estimator.get_params())


def split_single_parameter_grid(
    candidates: "list[dict[str, Any]]",
) -> tuple[dict[str, Any], str, list[Any]] | None:
    """Decompose a candidate list that varies in exactly one parameter.

    Returns ``(fixed_params, varying_name, values)`` where ``values``
    preserves candidate order, or ``None`` when the candidates do not
    share a key set or vary in zero or more than one key. This is the
    shape the single-parameter ``score_grid`` fast paths accept.
    """
    if len(candidates) < 2:
        return None
    keys = set(candidates[0])
    if any(set(candidate) != keys for candidate in candidates):
        return None
    first = candidates[0]
    varying = [
        key
        for key in first
        if any(candidate[key] != first[key] for candidate in candidates[1:])
    ]
    if len(varying) != 1:
        return None
    name = varying[0]
    fixed = {key: value for key, value in first.items() if key != name}
    return fixed, name, [candidate[name] for candidate in candidates]


class BaseClassifier(BaseEstimator):
    """Base class for binary classifiers.

    Subclasses implement ``fit(X, y)`` and ``predict_proba(X)``;
    ``predict`` thresholds the positive-class probability at 0.5.
    Labels are expected to be 0/1 integers.
    """

    classes_: np.ndarray

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return an (n, 2) array of class probabilities [P(y=0), P(y=1)]."""
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return hard 0/1 predictions."""
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)

    def score_grid(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        candidates: "list[dict[str, Any]]",
    ) -> np.ndarray | None:
        """Optional shared-computation fast path for grid search.

        Given a list of hyperparameter candidates, return an
        ``(n_candidates, n_test)`` int64 array whose row ``i`` is
        bitwise identical to::

            clone(self).set_params(**candidates[i]).fit(
                X_train, y_train).predict(X_test)

        but computed from one shared pass over the fold instead of one
        cold fit per candidate. Implementations must return ``None``
        for any grid they cannot evaluate with that exact-equivalence
        guarantee (the caller then falls back to the naive
        clone-per-candidate loop). ``y_test`` is provided for
        estimators that score internally; the bundled implementations
        ignore it. The base implementation supports nothing.
        """
        return None

    def _check_fit_inputs(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-d, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(
                f"y must have shape ({X.shape[0]},), got {y.shape}"
            )
        if np.isnan(X).any():
            raise ValueError(
                "X contains NaN; impute or drop missing values before fitting"
            )
        y = y.astype(np.int64)
        labels = np.unique(y)
        if not np.isin(labels, (0, 1)).all():
            raise ValueError(f"labels must be 0/1, got {labels}")
        self.classes_ = np.array([0, 1], dtype=np.int64)
        return X, y

    def _check_predict_inputs(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-d, got shape {X.shape}")
        if np.isnan(X).any():
            raise ValueError(
                "X contains NaN; impute or drop missing values before predicting"
            )
        return X
