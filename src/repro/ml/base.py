"""Estimator protocol and cloning.

Estimators follow the scikit-learn convention: all hyperparameters are
keyword arguments of ``__init__`` stored under the same attribute name,
``fit`` returns ``self``, and fitted state lives in attributes with a
trailing underscore. :func:`clone` builds an unfitted copy from the
constructor parameters.
"""

from __future__ import annotations

import inspect
from typing import Any, TypeVar

import numpy as np

EstimatorT = TypeVar("EstimatorT", bound="BaseEstimator")


class BaseEstimator:
    """Shared parameter plumbing for all estimators."""

    @classmethod
    def _param_names(cls) -> tuple[str, ...]:
        signature = inspect.signature(cls.__init__)
        return tuple(
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        )

    def get_params(self) -> dict[str, Any]:
        """Return the constructor hyperparameters of this estimator."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self: EstimatorT, **params: Any) -> EstimatorT:
        """Set hyperparameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no hyperparameter {name!r}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: EstimatorT) -> EstimatorT:
    """Return an unfitted copy of ``estimator`` with identical hyperparameters."""
    return type(estimator)(**estimator.get_params())


class BaseClassifier(BaseEstimator):
    """Base class for binary classifiers.

    Subclasses implement ``fit(X, y)`` and ``predict_proba(X)``;
    ``predict`` thresholds the positive-class probability at 0.5.
    Labels are expected to be 0/1 integers.
    """

    classes_: np.ndarray

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return an (n, 2) array of class probabilities [P(y=0), P(y=1)]."""
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return hard 0/1 predictions."""
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)

    def _check_fit_inputs(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-d, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(
                f"y must have shape ({X.shape[0]},), got {y.shape}"
            )
        if np.isnan(X).any():
            raise ValueError(
                "X contains NaN; impute or drop missing values before fitting"
            )
        y = y.astype(np.int64)
        labels = np.unique(y)
        if not np.isin(labels, (0, 1)).all():
            raise ValueError(f"labels must be 0/1, got {labels}")
        self.classes_ = np.array([0, 1], dtype=np.int64)
        return X, y

    def _check_predict_inputs(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-d, got shape {X.shape}")
        if np.isnan(X).any():
            raise ValueError(
                "X contains NaN; impute or drop missing values before predicting"
            )
        return X
