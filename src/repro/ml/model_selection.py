"""Cross-validation and hyperparameter search.

Provides seeded K-fold splitters, an array-level train/test split,
grid search over a single metric (accuracy), and out-of-fold
probability prediction (the building block of confident learning).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import accuracy_score


class KFold:
    """Shuffled K-fold splitter."""

    def __init__(self, n_splits: int = 5, random_state: int = 0) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.random_state)
        permutation = rng.permutation(n_samples)
        folds = np.array_split(permutation, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class StratifiedKFold:
    """Shuffled K-fold preserving the 0/1 label ratio per fold."""

    def __init__(self, n_splits: int = 5, random_state: int = 0) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs stratified on y."""
        y = np.asarray(y).astype(np.int64)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.empty(len(y), dtype=np.int64)
        for label in np.unique(y):
            members = np.nonzero(y == label)[0]
            if len(members) < self.n_splits:
                raise ValueError(
                    f"class {label} has only {len(members)} examples for "
                    f"{self.n_splits} folds"
                )
            members = rng.permutation(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for i in range(self.n_splits):
            test = np.nonzero(fold_of == i)[0]
            train = np.nonzero(fold_of != i)[0]
            yield train, test


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split arrays into train/test partitions."""
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError(f"length mismatch: X {len(X)} vs y {len(y)}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n_test = int(round(len(X) * test_fraction))
    if n_test == 0 or n_test == len(X):
        raise ValueError("split leaves an empty partition")
    permutation = rng.permutation(len(X))
    test_idx, train_idx = permutation[:n_test], permutation[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class GridSearchCV:
    """Exhaustive grid search maximising cross-validated accuracy.

    Args:
        estimator: Prototype classifier (cloned per fit).
        param_grid: Mapping from hyperparameter name to candidate values.
        n_splits: Cross-validation folds.
        random_state: Seed for fold assignment (the paper evaluates
            several tuning seeds per split).
    """

    def __init__(
        self,
        estimator: BaseClassifier,
        param_grid: dict[str, Sequence[Any]],
        n_splits: int = 5,
        random_state: int = 0,
    ) -> None:
        if not param_grid:
            raise ValueError("param_grid must not be empty")
        self.estimator = estimator
        self.param_grid = param_grid
        self.n_splits = n_splits
        self.random_state = random_state
        self.best_params_: dict[str, Any] | None = None
        self.best_score_: float = float("nan")
        self.best_estimator_: BaseClassifier | None = None
        self.cv_results_: list[dict[str, Any]] = []

    def _candidates(self) -> Iterator[dict[str, Any]]:
        names = list(self.param_grid)
        counts = [len(self.param_grid[name]) for name in names]
        total = int(np.prod(counts))
        for flat in range(total):
            candidate = {}
            remainder = flat
            for name, count in zip(names, counts):
                candidate[name] = self.param_grid[name][remainder % count]
                remainder //= count
            yield candidate

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        splitter = StratifiedKFold(self.n_splits, self.random_state)
        folds = list(splitter.split(y))
        self.cv_results_ = []
        best_score = -np.inf
        best_params: dict[str, Any] | None = None
        for candidate in self._candidates():
            scores = []
            for train_idx, test_idx in folds:
                model = clone(self.estimator).set_params(**candidate)
                model.fit(X[train_idx], y[train_idx])
                scores.append(accuracy_score(y[test_idx], model.predict(X[test_idx])))
            mean_score = float(np.mean(scores))
            self.cv_results_.append({"params": dict(candidate), "score": mean_score})
            if mean_score > best_score:
                best_score = mean_score
                best_params = dict(candidate)
        assert best_params is not None
        self.best_params_ = best_params
        self.best_score_ = best_score
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("GridSearchCV is not fitted")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("GridSearchCV is not fitted")
        return self.best_estimator_.predict_proba(X)


def cross_val_predict_proba(
    estimator: BaseClassifier,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    random_state: int = 0,
) -> np.ndarray:
    """Out-of-fold positive-class probabilities for every example.

    Each example's probability comes from a model that never saw it
    during training — the estimate confident learning requires.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    out = np.empty(len(y), dtype=np.float64)
    splitter = StratifiedKFold(n_splits, random_state)
    for train_idx, test_idx in splitter.split(y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        out[test_idx] = model.predict_proba(X[test_idx])[:, 1]
    return out
