"""Cross-validation and hyperparameter search.

Provides seeded K-fold splitters, an array-level train/test split,
grid search over a single metric (accuracy), and out-of-fold
probability prediction (the building block of confident learning).

Grid search dispatches to an estimator's :meth:`~repro.ml.base.\
BaseClassifier.score_grid` fast path when one is available: the whole
candidate grid is then evaluated from one shared computation per fold
(one distance matrix for every ``k`` of a kNN grid, one boosting run
for every ``n_estimators`` budget, one warm-started solver path for a
``C`` grid) instead of one cold fit per candidate. The fast path is
required to reproduce the naive clone-per-candidate loop bit for bit
— same predictions, same scores, same tie-breaking — so selected
hyperparameters and downstream study records are identical either way.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Sequence

import numpy as np

from repro import obs
from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import accuracy_score


class KFold:
    """Shuffled K-fold splitter."""

    def __init__(self, n_splits: int = 5, random_state: int = 0) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.random_state)
        permutation = rng.permutation(n_samples)
        folds = np.array_split(permutation, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class StratifiedKFold:
    """Shuffled K-fold preserving the 0/1 label ratio per fold."""

    def __init__(self, n_splits: int = 5, random_state: int = 0) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs stratified on y."""
        y = np.asarray(y).astype(np.int64)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.empty(len(y), dtype=np.int64)
        for label in np.unique(y):
            members = np.nonzero(y == label)[0]
            if len(members) < self.n_splits:
                raise ValueError(
                    f"class {label} has only {len(members)} examples for "
                    f"{self.n_splits} folds"
                )
            members = rng.permutation(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for i in range(self.n_splits):
            test = np.nonzero(fold_of == i)[0]
            train = np.nonzero(fold_of != i)[0]
            yield train, test


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split arrays into train/test partitions."""
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError(f"length mismatch: X {len(X)} vs y {len(y)}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n_test = int(round(len(X) * test_fraction))
    if n_test == 0 or n_test == len(X):
        raise ValueError("split leaves an empty partition")
    permutation = rng.permutation(len(X))
    test_idx, train_idx = permutation[:n_test], permutation[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def iter_grid_candidates(
    param_grid: dict[str, Sequence[Any]],
) -> Iterator[dict[str, Any]]:
    """Enumerate grid candidates in odometer order (first name fastest).

    The shared candidate enumeration of :class:`GridSearchCV` and
    :class:`repro.ml.fair_search.FairnessConstrainedSearch`; the fast
    path's first-candidate-wins tie-breaking guarantee is defined over
    this order.
    """
    names = list(param_grid)
    counts = [len(param_grid[name]) for name in names]
    total = int(np.prod(counts))
    for flat in range(total):
        candidate = {}
        remainder = flat
        for name, count in zip(names, counts):
            candidate[name] = param_grid[name][remainder % count]
            remainder //= count
        yield candidate


def grid_fold_predictions(
    estimator: BaseClassifier,
    X: np.ndarray,
    y: np.ndarray,
    folds: "list[tuple[np.ndarray, np.ndarray]]",
    candidates: "list[dict[str, Any]]",
) -> tuple[list[np.ndarray], list[float]] | None:
    """Evaluate every candidate on every fold via the fast-path protocol.

    Returns ``(predictions, seconds)`` where ``predictions[f]`` is the
    ``(n_candidates, n_test_f)`` array produced by the estimator's
    ``score_grid`` for fold ``f`` and ``seconds[f]`` the wall-clock
    spent on it, or ``None`` when the estimator declines the grid (the
    caller then runs the naive clone-per-candidate loop).
    """
    if len(candidates) < 2:
        return None
    fold_predictions: list[np.ndarray] = []
    fold_seconds: list[float] = []
    for train_idx, test_idx in folds:
        model = clone(estimator)
        started = time.perf_counter()
        predictions = model.score_grid(
            X[train_idx], y[train_idx], X[test_idx], y[test_idx], candidates
        )
        if predictions is None:
            return None
        predictions = np.asarray(predictions)
        if predictions.shape != (len(candidates), len(test_idx)):
            raise ValueError(
                f"{type(model).__name__}.score_grid returned shape "
                f"{predictions.shape}, expected "
                f"{(len(candidates), len(test_idx))}"
            )
        fold_predictions.append(predictions)
        fold_seconds.append(time.perf_counter() - started)
    return fold_predictions, fold_seconds


class GridSearchCV:
    """Exhaustive grid search maximising cross-validated accuracy.

    When the estimator implements the ``score_grid`` fast path for the
    grid, all candidates of a fold are evaluated from one shared
    computation; otherwise each candidate is cloned and fitted cold.
    Both routes produce byte-identical ``best_params_``,
    ``cv_results_`` scores and tie-breaking (strict ``>`` — the first
    candidate in odometer order wins on equal mean scores).

    Each ``cv_results_`` entry also carries a lightweight timing hook:
    ``fit_seconds`` (naive: summed fit time across folds; fast path:
    the shared grid evaluation apportioned equally over candidates)
    and ``score_seconds`` (prediction scoring time), so benches can
    attribute tuning cost without a profiler. Timings never enter
    study records.

    Args:
        estimator: Prototype classifier (cloned per fit).
        param_grid: Mapping from hyperparameter name to candidate values.
        n_splits: Cross-validation folds.
        random_state: Seed for fold assignment (the paper evaluates
            several tuning seeds per split).
        use_fast_path: Dispatch to ``score_grid`` when available
            (``False`` forces the naive loop, e.g. for benchmarking).
    """

    def __init__(
        self,
        estimator: BaseClassifier,
        param_grid: dict[str, Sequence[Any]],
        n_splits: int = 5,
        random_state: int = 0,
        use_fast_path: bool = True,
    ) -> None:
        if not param_grid:
            raise ValueError("param_grid must not be empty")
        self.estimator = estimator
        self.param_grid = param_grid
        self.n_splits = n_splits
        self.random_state = random_state
        self.use_fast_path = use_fast_path
        self.best_params_: dict[str, Any] | None = None
        self.best_score_: float = float("nan")
        self.best_estimator_: BaseClassifier | None = None
        self.cv_results_: list[dict[str, Any]] = []
        self.used_fast_path_: bool = False

    def _candidates(self) -> Iterator[dict[str, Any]]:
        return iter_grid_candidates(self.param_grid)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        with obs.span(
            "tune", model=type(self.estimator).__name__
        ) as tune_span:
            self._fit(X, y, tune_span)
        return self

    def _fit(self, X: np.ndarray, y: np.ndarray, tune_span) -> None:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        splitter = StratifiedKFold(self.n_splits, self.random_state)
        folds = list(splitter.split(y))
        candidates = list(self._candidates())
        self.cv_results_ = []
        fast = (
            grid_fold_predictions(self.estimator, X, y, folds, candidates)
            if self.use_fast_path
            else None
        )
        self.used_fast_path_ = fast is not None
        if fast is not None:
            fold_predictions, fold_seconds = fast
            shared_fit_seconds = float(sum(fold_seconds)) / len(candidates)
            for index, candidate in enumerate(candidates):
                scores = []
                started = time.perf_counter()
                for fold, (__, test_idx) in enumerate(folds):
                    scores.append(
                        accuracy_score(y[test_idx], fold_predictions[fold][index])
                    )
                score_seconds = time.perf_counter() - started
                self._record_result(
                    candidate, scores, shared_fit_seconds, score_seconds
                )
        else:
            for candidate in candidates:
                scores = []
                fit_seconds = 0.0
                score_seconds = 0.0
                for train_idx, test_idx in folds:
                    model = clone(self.estimator).set_params(**candidate)
                    started = time.perf_counter()
                    model.fit(X[train_idx], y[train_idx])
                    fit_seconds += time.perf_counter() - started
                    started = time.perf_counter()
                    scores.append(
                        accuracy_score(y[test_idx], model.predict(X[test_idx]))
                    )
                    score_seconds += time.perf_counter() - started
                self._record_result(candidate, scores, fit_seconds, score_seconds)
        best_score = -np.inf
        best_params: dict[str, Any] | None = None
        for entry in self.cv_results_:
            if entry["score"] > best_score:
                best_score = entry["score"]
                best_params = dict(entry["params"])
        assert best_params is not None
        self.best_params_ = best_params
        self.best_score_ = best_score
        if obs.is_enabled():
            # export the per-candidate timings that cv_results_ accumulates
            # (previously CLI-invisible) into the trace sink
            tune_span.set(
                fast_path=self.used_fast_path_, n_candidates=len(candidates)
            )
            for entry in self.cv_results_:
                tune_span.add("fit_seconds", entry["fit_seconds"])
                tune_span.add("score_seconds", entry["score_seconds"])
                obs.histogram("candidate_fit_seconds", entry["fit_seconds"])
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)

    def _record_result(
        self,
        candidate: dict[str, Any],
        scores: "list[float]",
        fit_seconds: float,
        score_seconds: float,
    ) -> None:
        self.cv_results_.append(
            {
                "params": dict(candidate),
                "score": float(np.mean(scores)),
                "fit_seconds": fit_seconds,
                "score_seconds": score_seconds,
            }
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("GridSearchCV is not fitted")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("GridSearchCV is not fitted")
        return self.best_estimator_.predict_proba(X)


def cross_val_predict_proba(
    estimator: BaseClassifier,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    random_state: int = 0,
) -> np.ndarray:
    """Out-of-fold positive-class probabilities for every example.

    Each example's probability comes from a model that never saw it
    during training — the estimate confident learning requires.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    out = np.empty(len(y), dtype=np.float64)
    splitter = StratifiedKFold(n_splits, random_state)
    for train_idx, test_idx in splitter.split(y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        out[test_idx] = model.predict_proba(X[test_idx])[:, 1]
    return out
