"""CART-style regression trees.

The tree core works on per-example gradient/hessian pairs with the
second-order gain rule used by gradient-boosting libraries:

    gain = 1/2 [ G_L^2/(H_L+lam) + G_R^2/(H_R+lam) - G^2/(H+lam) ]
    leaf value = -G / (H + lam)

Split finding presorts every feature once at the root (stable
mergesort) and filters the sorted index lists down the tree: filtering
a stable order by a membership mask *is* the stable sort of the
subset, so each node reuses the root ordering instead of re-sorting —
O(n) per node and feature rather than O(n log n) — while producing
bit-for-bit the same splits, thresholds and leaf values as sorting at
every node.

:class:`DecisionTreeRegressor` exposes the squared-error special case
(g = -y, h = 1, leaf = mean of y) as a standalone public estimator;
:mod:`repro.ml.boosting` drives the same core with logistic-loss
gradients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator


def presort_orders(X: np.ndarray) -> "list[np.ndarray]":
    """Per-column stable sort orders of ``X`` — the root presort.

    Deterministic (mergesort) and a pure function of ``X``'s bytes,
    which is what makes the orders shareable across trees, grid
    candidates and dataset versions with byte-equal matrices.
    """
    return [
        np.argsort(X[:, feature], kind="mergesort") for feature in range(X.shape[1])
    ]


@dataclass
class _Node:
    """A tree node; leaves have ``feature`` = -1."""

    feature: int
    threshold: float
    value: float
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _best_split(
    X: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    rows: np.ndarray,
    orders: "list[np.ndarray]",
    lam: float,
    min_child_weight: float,
) -> tuple[int, float, float] | None:
    """Return ``(feature, threshold, gain)`` of the best split, or None.

    ``rows`` holds the node's row indices in original relative order
    (the summation order of the parent totals); ``orders[f]`` holds
    the same rows stably sorted by feature ``f``.
    """
    total_g = gradients[rows].sum()
    total_h = hessians[rows].sum()
    parent_score = total_g**2 / (total_h + lam)
    best: tuple[int, float, float] | None = None
    for feature, order in enumerate(orders):
        sorted_values = X[order, feature]
        g_cum = np.cumsum(gradients[order])
        h_cum = np.cumsum(hessians[order])
        # candidate split after position i (left = first i+1 examples);
        # only valid where the value actually changes
        boundaries = np.nonzero(sorted_values[:-1] < sorted_values[1:])[0]
        if boundaries.size == 0:
            continue
        g_left = g_cum[boundaries]
        h_left = h_cum[boundaries]
        g_right = total_g - g_left
        h_right = total_h - h_left
        valid = (h_left >= min_child_weight) & (h_right >= min_child_weight)
        if not valid.any():
            continue
        gains = (
            g_left**2 / (h_left + lam)
            + g_right**2 / (h_right + lam)
            - parent_score
        )
        gains[~valid] = -np.inf
        pick = int(np.argmax(gains))
        gain = float(gains[pick]) / 2.0
        if gain <= 0:
            continue
        boundary = boundaries[pick]
        threshold = float(
            (sorted_values[boundary] + sorted_values[boundary + 1]) / 2.0
        )
        if best is None or gain > best[2]:
            best = (feature, threshold, gain)
    return best


def _build(
    X: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    rows: np.ndarray,
    orders: "list[np.ndarray]",
    in_left: np.ndarray,
    depth: int,
    max_depth: int,
    lam: float,
    min_child_weight: float,
    min_split_gain: float,
) -> _Node:
    node_g = gradients[rows]
    node_h = hessians[rows]
    value = float(-node_g.sum() / (node_h.sum() + lam))
    if depth >= max_depth or rows.shape[0] < 2:
        return _Node(feature=-1, threshold=0.0, value=value)
    split = _best_split(X, gradients, hessians, rows, orders, lam, min_child_weight)
    if split is None or split[2] < min_split_gain:
        return _Node(feature=-1, threshold=0.0, value=value)
    feature, threshold, __ = split
    goes_left = X[rows, feature] <= threshold
    left_rows = rows[goes_left]
    right_rows = rows[~goes_left]
    # membership scratch buffer: valid only until the recursive calls,
    # so both children's orders are materialised first
    in_left[left_rows] = True
    left_orders = [order[in_left[order]] for order in orders]
    right_orders = [order[~in_left[order]] for order in orders]
    in_left[left_rows] = False
    left = _build(
        X,
        gradients,
        hessians,
        left_rows,
        left_orders,
        in_left,
        depth + 1,
        max_depth,
        lam,
        min_child_weight,
        min_split_gain,
    )
    right = _build(
        X,
        gradients,
        hessians,
        right_rows,
        right_orders,
        in_left,
        depth + 1,
        max_depth,
        lam,
        min_child_weight,
        min_split_gain,
    )
    return _Node(feature=feature, threshold=threshold, value=value, left=left, right=right)


def _predict_node(node: _Node, X: np.ndarray, out: np.ndarray, rows: np.ndarray) -> None:
    if node.is_leaf:
        out[rows] = node.value
        return
    assert node.left is not None and node.right is not None
    goes_left = X[rows, node.feature] <= node.threshold
    _predict_node(node.left, X, out, rows[goes_left])
    _predict_node(node.right, X, out, rows[~goes_left])


class _GradientTree:
    """A single fitted tree over gradient/hessian targets."""

    def __init__(
        self,
        max_depth: int,
        lam: float,
        min_child_weight: float,
        min_split_gain: float,
    ) -> None:
        self._max_depth = max_depth
        self._lam = lam
        self._min_child_weight = min_child_weight
        self._min_split_gain = min_split_gain
        self._root: _Node | None = None

    def fit(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        orders: "list[np.ndarray] | None" = None,
    ) -> "_GradientTree":
        """Fit the tree; ``orders`` optionally supplies the root presort.

        The presort is a pure function of ``X`` (stable argsort per
        column), so a caller fitting many trees on the same matrix —
        the boosting loop — may compute it once and pass it in. The
        lists are only read here (each node materialises filtered
        copies), never mutated.
        """
        rows = np.arange(X.shape[0])
        if orders is None:
            orders = presort_orders(X)
        self._root = _build(
            X,
            gradients,
            hessians,
            rows,
            orders,
            np.zeros(X.shape[0], dtype=bool),
            depth=0,
            max_depth=self._max_depth,
            lam=self._lam,
            min_child_weight=self._min_child_weight,
            min_split_gain=self._min_split_gain,
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        out = np.empty(X.shape[0], dtype=np.float64)
        _predict_node(self._root, X, out, np.arange(X.shape[0]))
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)


class DecisionTreeRegressor(BaseEstimator):
    """Squared-error regression tree (public CART interface).

    Args:
        max_depth: Maximum tree depth (0 = a single leaf).
        min_samples_leaf: Minimum examples per leaf.
        min_split_gain: Minimum gain required to split.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        min_split_gain: float = 1e-12,
    ) -> None:
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_split_gain = min_split_gain
        self._tree: _GradientTree | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError(
                f"bad shapes: X {X.shape}, y {y.shape}"
            )
        # squared error: g_i = -y_i, h_i = 1 gives leaf value = mean(y)
        self._tree = _GradientTree(
            max_depth=self.max_depth,
            lam=0.0,
            min_child_weight=float(self.min_samples_leaf),
            min_split_gain=self.min_split_gain,
        ).fit(X, -y, np.ones_like(y))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._tree is None:
            raise RuntimeError("DecisionTreeRegressor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return self._tree.predict(X)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._tree is None:
            raise RuntimeError("DecisionTreeRegressor is not fitted")
        return self._tree.depth()
