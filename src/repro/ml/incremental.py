"""Delta-aware computation reuse across cleaned dataset versions.

The study's workload is dominated by near-duplicate training sets: a
repaired version differs from its parent (the dirty version, or an
earlier repair of the same split) in only the rows a cleaning strategy
touched. This module lets the runner exploit that structure without
ever changing a result byte:

- :func:`table_delta` / :class:`VersionDelta` — the row-delta manifest:
  which rows and columns of a child version's train/test tables (and
  which train labels) differ from an aligned parent version.
- :class:`ReuseScope` — a content-addressed memo store scoped to one
  repetition. Estimators consult the active scope (a thread-local set
  by ``runner.run_repetition_cells``) for cached pure-function results
  keyed by the *bytes* of their inputs: kNN training norms and
  prediction distance blocks, booster presort orders, converged
  logistic solutions, and whole tuned-model evaluations.
- :func:`featurize_version` / :func:`incremental_featurize` — cold and
  delta-patched featurisation. The incremental path re-encodes only
  the changed rows of the one-hot block and splices them into a copy
  of the parent's block; the numeric block is always recomputed (the
  scaler refit is vectorised and cheap, and any changed numeric cell
  shifts every standardised value in its column anyway).

Identity discipline (the PR 3 contract): every reuse path either
produces output byte-identical to the cold computation or declines and
falls back. Content-addressed memo hits are identical by construction
— equal input bytes into a deterministic function give equal output
bytes. Incremental featurisation is identical by construction because
one-hot encoding is row-independent and the encoder's fitted
categories are verified equal before any block is reused. The one
tolerance-bound path — warm-starting the final logistic refit from a
parent's converged weights — guards itself at prediction time: if any
test logit falls inside the analytic error band of the two L-BFGS
stopping points, the classifier re-solves from zeros and the warm
start is discarded (see ``LogisticRegressionClassifier``).

Nothing here activates outside a scope: ``active()`` returns ``None``
unless the runner opened one, so standalone estimator use — and every
study run with ``StudyConfig.incremental`` off — is untouched.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.ml.featurize import TabularFeaturizer
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.tabular import ColumnKind, Table, aligned_codes

__all__ = [
    "ReuseScope",
    "TableDelta",
    "VersionDelta",
    "FeatureArtifacts",
    "active",
    "reuse_scope",
    "table_delta",
    "version_delta",
    "featurize_version",
    "incremental_featurize",
    "masks_reusable",
]


# -- row-delta manifests -------------------------------------------------


@dataclass(frozen=True)
class TableDelta:
    """Cell-level difference between two aligned tables.

    Attributes:
        n_rows: Row count of both tables.
        changed_rows: Sorted indices of rows with at least one changed
            cell (in any column).
        changed_columns: Names of columns with at least one changed
            cell, in schema order.
        changed_categorical: The categorical subset of
            ``changed_columns`` (these gate one-hot block reuse).
    """

    n_rows: int
    changed_rows: np.ndarray
    changed_columns: tuple[str, ...]
    changed_categorical: tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        return self.changed_rows.size == 0


def _column_changed(kind: ColumnKind, a, b) -> np.ndarray:
    """Elementwise changed mask; NaN==NaN and missing==missing count as equal."""
    if kind is ColumnKind.NUMERIC:
        return (a != b) & ~(np.isnan(a) & np.isnan(b))
    # dictionary-encoded columns: compare int32 codes over a common
    # pool (zero-copy when the pools already match, which they do
    # along a version lineage); -1 == -1 keeps missing unchanged
    codes_a, codes_b = aligned_codes(a, b)
    return codes_a != codes_b


def table_delta(parent: Table, child: Table) -> TableDelta | None:
    """Delta manifest of ``child`` relative to ``parent``.

    Returns ``None`` when the tables are not aligned — different row
    counts, column names or column kinds — in which case no row-level
    reuse is meaningful (e.g. the missing-values dirty baseline, which
    drops incomplete train tuples).
    """
    if parent.n_rows != child.n_rows:
        return None
    if parent.column_names != child.column_names:
        return None
    if any(
        parent.kind_of(name) is not child.kind_of(name)
        for name in child.column_names
    ):
        return None
    changed = np.zeros(child.n_rows, dtype=bool)
    columns: list[str] = []
    categorical: list[str] = []
    for name in child.column_names:
        kind = child.kind_of(name)
        if kind is ColumnKind.NUMERIC:
            a = parent._column_view(name)
            b = child._column_view(name)
        else:
            a = parent.categorical(name)
            b = child.categorical(name)
        if a is b:
            continue
        diff = _column_changed(kind, a, b)
        if diff.any():
            changed |= diff
            columns.append(name)
            if kind is ColumnKind.CATEGORICAL:
                categorical.append(name)
    return TableDelta(
        n_rows=child.n_rows,
        changed_rows=np.nonzero(changed)[0],
        changed_columns=tuple(columns),
        changed_categorical=tuple(categorical),
    )


@dataclass(frozen=True)
class VersionDelta:
    """Row-delta manifest of one cleaned version against a parent.

    ``parent`` is the runner's parent ``_Version`` object (held
    opaquely to keep this module independent of the runner); ``train``
    and ``test`` are its table deltas and ``label_rows`` the train
    rows whose label changed (mislabel flips).
    """

    parent: Any
    train: TableDelta
    test: TableDelta
    label_rows: np.ndarray

    @property
    def cost(self) -> int:
        """Parent-selection heuristic: fewer changed cells is better.

        Categorical train changes are weighted by the table size
        because they force a fresh encoder fit plus a category-equality
        audit before any block can be patched.
        """
        penalty = self.train.n_rows if self.train.changed_categorical else 0
        return int(
            self.train.changed_rows.size
            + self.test.changed_rows.size
            + self.label_rows.size
            + penalty
        )


def version_delta(
    parent_train: Table,
    parent_train_labels: np.ndarray,
    parent_test: Table,
    child_train: Table,
    child_train_labels: np.ndarray,
    child_test: Table,
    parent: Any = None,
) -> VersionDelta | None:
    """Build a :class:`VersionDelta`, or ``None`` if not aligned."""
    if parent_train_labels.shape != child_train_labels.shape:
        return None
    train = table_delta(parent_train, child_train)
    if train is None:
        return None
    test = table_delta(parent_test, child_test)
    if test is None:
        return None
    label_rows = np.nonzero(parent_train_labels != child_train_labels)[0]
    return VersionDelta(parent=parent, train=train, test=test, label_rows=label_rows)


# -- the reuse scope ------------------------------------------------------

_Fingerprint = tuple


class ReuseScope:
    """Content-addressed memoisation for one repetition.

    Cached values are keyed by the exact bytes of their input arrays
    (shape, dtype, length, CRC-32 and Adler-32 of the raw buffer), so a
    hit is sound by construction: the same deterministic function
    applied to byte-equal inputs returns byte-equal output. Fingerprints
    are cached per array object (the scope keeps the array alive so its
    ``id`` cannot be recycled), making repeat lookups on the versions'
    long-lived matrices O(1).

    Memoised values are treated as immutable by all consumers; the
    scope hands back the same object on every hit.
    """

    def __init__(self) -> None:
        self._memo: dict[tuple, Any] = {}
        self._fingerprints: dict[int, tuple[np.ndarray, _Fingerprint]] = {}
        self._warm: dict[tuple, np.ndarray] = {}
        self.stats: dict[str, list[int]] = {}

    # -- fingerprinting ----------------------------------------------

    def fingerprint(self, array: np.ndarray) -> _Fingerprint:
        """Stable content key of a numeric ndarray."""
        cached = self._fingerprints.get(id(array))
        if cached is not None and cached[0] is array:
            return cached[1]
        data = np.ascontiguousarray(array)
        buffer = memoryview(data).cast("B")
        fingerprint = (
            array.shape,
            str(array.dtype),
            len(buffer),
            zlib.crc32(buffer),
            zlib.adler32(buffer),
        )
        self._fingerprints[id(array)] = (array, fingerprint)
        return fingerprint

    # -- memoisation -------------------------------------------------

    def memo(
        self,
        kind: str,
        arrays: Sequence[np.ndarray],
        extra: tuple,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached value for (kind, extra, array bytes) or compute it."""
        key = (kind, extra, tuple(self.fingerprint(array) for array in arrays))
        if key in self._memo:
            self._count(kind, hit=True)
            return self._memo[key]
        self._count(kind, hit=False)
        value = compute()
        self._memo[key] = value
        return value

    def _count(self, kind: str, hit: bool) -> None:
        entry = self.stats.setdefault(kind, [0, 0])
        entry[0 if hit else 1] += 1
        obs.counter("reuse_hit" if hit else "reuse_miss", kind=kind)

    def record(self, kind: str, hit: bool) -> None:
        """Count a reuse decision made outside :meth:`memo` (e.g. patches)."""
        self._count(kind, hit)

    def hits(self) -> int:
        """Total reuse hits so far (all kinds)."""
        return sum(entry[0] for entry in self.stats.values())

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-kind ``{"hits", "misses"}`` snapshot."""
        return {
            kind: {"hits": entry[0], "misses": entry[1]}
            for kind, entry in sorted(self.stats.items())
        }

    # -- warm-start parameter store ----------------------------------

    def warm_get(self, key: tuple) -> np.ndarray | None:
        """Last converged parameter vector stored under ``key``."""
        return self._warm.get(key)

    def warm_put(self, key: tuple, value: np.ndarray) -> None:
        self._warm[key] = value


_LOCAL = threading.local()


def active() -> ReuseScope | None:
    """The thread's active scope, or ``None`` outside a runner repetition."""
    return getattr(_LOCAL, "scope", None)


@contextmanager
def reuse_scope(scope: ReuseScope) -> Iterator[ReuseScope]:
    """Install ``scope`` as the thread's active scope for the block."""
    previous = active()
    _LOCAL.scope = scope
    try:
        yield scope
    finally:
        _LOCAL.scope = previous


# -- featurisation --------------------------------------------------------


@dataclass
class FeatureArtifacts:
    """A fitted featurisation with its block structure exposed.

    ``X_train``/``X_test`` are the matrices the models consume
    (identical to ``TabularFeaturizer.fit(train).transform(...)``);
    ``numeric_width`` is the column offset where the one-hot block
    starts, which is what lets a child version splice re-encoded rows
    into a copy of the parent's block.
    """

    featurizer: TabularFeaturizer
    X_train: np.ndarray
    X_test: np.ndarray
    numeric_width: int = field(default=0)


def featurize_version(
    feature_columns: tuple[str, ...] | None, train: Table, test: Table
) -> FeatureArtifacts:
    """Cold featurisation: fit on train, transform train and test."""
    featurizer = TabularFeaturizer(feature_columns=feature_columns).fit(train)
    return FeatureArtifacts(
        featurizer=featurizer,
        X_train=featurizer.transform(train),
        X_test=featurizer.transform(test),
        numeric_width=len(featurizer._numeric_names),
    )


def _numeric_block(
    scaler: StandardScaler, names: tuple[str, ...], table: Table
) -> np.ndarray | None:
    """Standardised numeric block, or ``None`` when a column has NaN
    (the cold path raises on NaN; declining routes the tables back
    through it so the error surfaces identically)."""
    numeric = np.column_stack([table.column(name) for name in names])
    if np.isnan(numeric).any():
        return None
    return scaler.transform(numeric)


def _patched_categorical_block(
    encoder: OneHotEncoder,
    names: tuple[str, ...],
    table: Table,
    parent_block: np.ndarray,
    changed_rows: np.ndarray,
) -> np.ndarray:
    """Parent's one-hot block with the changed rows re-encoded.

    One-hot encoding is row-independent, so re-encoding exactly the
    changed rows and splicing them over a copy of the parent's block
    reproduces the full transform byte for byte. ``changed_rows`` may
    be a superset of the rows whose categorical cells changed (rows
    with only numeric changes re-encode to their parent bytes).
    """
    if changed_rows.size == 0:
        return parent_block
    block = parent_block.copy()
    columns = [table.categorical(name).take(changed_rows) for name in names]
    block[changed_rows] = encoder.transform(columns)
    return block


def incremental_featurize(
    feature_columns: tuple[str, ...] | None,
    parent: FeatureArtifacts,
    delta: VersionDelta,
    train: Table,
    test: Table,
) -> FeatureArtifacts | None:
    """Featurise a child version by patching its parent's artifacts.

    The numeric block is recomputed (vectorised, cheap, and its scaler
    statistics shift whenever any numeric cell changes); the one-hot
    block — the per-row Python loop that dominates featurisation — is
    reused: wholesale when no categorical cell changed, by splicing
    re-encoded changed rows when the refitted encoder's categories
    match the parent's. Declines (``None``) when there is nothing
    categorical to reuse, when the fitted categories differ, or when
    the parent was fitted over different feature columns.
    """
    parent_featurizer = parent.featurizer
    if tuple(feature_columns or ()) != tuple(parent_featurizer.feature_columns or ()):
        return None
    numeric_names = parent_featurizer._numeric_names
    categorical_names = parent_featurizer._categorical_names
    if not categorical_names:
        # numeric-only featurisation has no expensive part to reuse
        return None
    encoder = parent_featurizer._encoder
    assert encoder is not None
    scaler: StandardScaler | None = None
    numeric_train: np.ndarray | None = None
    numeric_test: np.ndarray | None = None
    if numeric_names:
        raw = np.column_stack([train.column(name) for name in numeric_names])
        if np.isnan(raw).any():
            return None
        scaler = StandardScaler().fit(raw)
        numeric_train = scaler.transform(raw)
        numeric_test = _numeric_block(scaler, numeric_names, test)
        if numeric_test is None:
            return None
    if delta.train.changed_categorical:
        refitted = OneHotEncoder().fit(
            [train.categorical(name) for name in categorical_names]
        )
        if refitted.categories_ != encoder.categories_:
            return None
        encoder = refitted
    cat_train_parent = parent.X_train[:, parent.numeric_width :]
    cat_test_parent = parent.X_test[:, parent.numeric_width :]
    cat_train = (
        _patched_categorical_block(
            encoder,
            categorical_names,
            train,
            cat_train_parent,
            delta.train.changed_rows,
        )
        if delta.train.changed_categorical
        else cat_train_parent
    )
    cat_test = (
        _patched_categorical_block(
            encoder,
            categorical_names,
            test,
            cat_test_parent,
            delta.test.changed_rows,
        )
        if delta.test.changed_categorical
        else cat_test_parent
    )
    featurizer = TabularFeaturizer(feature_columns=parent_featurizer.feature_columns)
    featurizer._numeric_names = numeric_names
    featurizer._categorical_names = categorical_names
    featurizer._scaler = scaler
    featurizer._encoder = encoder
    if numeric_names:
        assert numeric_train is not None and numeric_test is not None
        X_train = np.hstack([numeric_train, cat_train])
        X_test = np.hstack([numeric_test, cat_test])
    else:
        X_train = np.hstack([cat_train])
        X_test = np.hstack([cat_test])
    return FeatureArtifacts(
        featurizer=featurizer,
        X_train=X_train,
        X_test=X_test,
        numeric_width=len(numeric_names),
    )


def masks_reusable(
    spec_attributes: Sequence[str], test_delta: TableDelta
) -> bool:
    """True when no changed test column is referenced by a group spec.

    Group masks are a pure function of the test table's sensitive
    columns; if the delta manifest shows those columns untouched, the
    parent's masks are the child's masks.
    """
    changed = set(test_delta.changed_columns)
    return not any(attribute in changed for attribute in spec_attributes)
