"""Gradient-boosted decision trees with logistic loss.

A compact xgboost-style booster: each round fits a second-order
regression tree to the logistic-loss gradients/hessians and adds the
shrunken leaf values to the running logit. Supports row subsampling
for stochastic boosting. This is the study's stand-in for xgboost —
same model family, same tuned ``max_depth`` hyperparameter.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier
from repro.ml.logistic import _sigmoid
from repro.ml.tree import _GradientTree


class GradientBoostedTreesClassifier(BaseClassifier):
    """Binary gradient boosting on logistic loss.

    Args:
        n_estimators: Number of boosting rounds.
        max_depth: Depth of each tree (the paper's tuned parameter).
        learning_rate: Shrinkage applied to each tree's contribution.
        reg_lambda: L2 penalty on leaf values.
        min_child_weight: Minimum hessian mass per leaf.
        subsample: Row subsampling fraction per round (1.0 = off).
        random_state: Seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 3,
        learning_rate: float = 0.15,
        reg_lambda: float = 1.0,
        min_child_weight: float = 1.0,
        subsample: float = 1.0,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.random_state = random_state
        self._trees: list[_GradientTree] = []
        self._base_logit: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTreesClassifier":
        X, y = self._check_fit_inputs(X, y)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        rng = np.random.default_rng(self.random_state)
        y_float = y.astype(np.float64)
        positive_rate = float(np.clip(y_float.mean(), 1e-6, 1 - 1e-6))
        self._base_logit = float(np.log(positive_rate / (1.0 - positive_rate)))
        logits = np.full(X.shape[0], self._base_logit)
        self._trees = []
        for __ in range(self.n_estimators):
            p = _sigmoid(logits)
            gradients = p - y_float
            hessians = np.maximum(p * (1.0 - p), 1e-6)
            if self.subsample < 1.0:
                n_rows = max(1, int(round(self.subsample * X.shape[0])))
                rows = rng.choice(X.shape[0], size=n_rows, replace=False)
            else:
                rows = np.arange(X.shape[0])
            tree = _GradientTree(
                max_depth=self.max_depth,
                lam=self.reg_lambda,
                min_child_weight=self.min_child_weight,
                min_split_gain=0.0,
            ).fit(X[rows], gradients[rows], hessians[rows])
            update = tree.predict(X)
            logits = logits + self.learning_rate * update
            self._trees.append(tree)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw boosted logits."""
        if not self._trees:
            raise RuntimeError("GradientBoostedTreesClassifier is not fitted")
        X = self._check_predict_inputs(X)
        logits = np.full(X.shape[0], self._base_logit)
        for tree in self._trees:
            logits = logits + self.learning_rate * tree.predict(X)
        return logits

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])

    @property
    def n_fitted_trees(self) -> int:
        """Number of trees in the fitted ensemble."""
        return len(self._trees)
