"""Gradient-boosted decision trees with logistic loss.

A compact xgboost-style booster: each round fits a second-order
regression tree to the logistic-loss gradients/hessians and adds the
shrunken leaf values to the running logit. Supports row subsampling
for stochastic boosting. This is the study's stand-in for xgboost —
same model family, same tuned ``max_depth`` hyperparameter.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml import incremental
from repro.ml.base import BaseClassifier, clone
from repro.ml.logistic import _sigmoid
from repro.ml.tree import _GradientTree, presort_orders


class GradientBoostedTreesClassifier(BaseClassifier):
    """Binary gradient boosting on logistic loss.

    Args:
        n_estimators: Number of boosting rounds.
        max_depth: Depth of each tree (the paper's tuned parameter).
        learning_rate: Shrinkage applied to each tree's contribution.
        reg_lambda: L2 penalty on leaf values.
        min_child_weight: Minimum hessian mass per leaf.
        subsample: Row subsampling fraction per round (1.0 = off).
        random_state: Seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 3,
        learning_rate: float = 0.15,
        reg_lambda: float = 1.0,
        min_child_weight: float = 1.0,
        subsample: float = 1.0,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.random_state = random_state
        self._trees: list[_GradientTree] = []
        self._base_logit: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTreesClassifier":
        X, y = self._check_fit_inputs(X, y)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        self._boost(X, y, self.n_estimators)
        return self

    def _boost(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_rounds: int,
        X_eval: np.ndarray | None = None,
        eval_rounds: "set[int] | None" = None,
    ) -> dict[int, np.ndarray]:
        """Run the boosting loop, optionally snapshotting staged logits.

        The single training loop behind both :meth:`fit` and
        :meth:`score_grid`. When ``X_eval`` is given, its logits are
        accumulated round by round — the same additions in the same
        order as :meth:`decision_function` performs after the fact —
        and copies are captured after each round listed in
        ``eval_rounds``. Returns the captured ``{round: logits}``
        snapshots (empty when ``X_eval`` is None).
        """
        rng = np.random.default_rng(self.random_state)
        y_float = y.astype(np.float64)
        positive_rate = float(np.clip(y_float.mean(), 1e-6, 1 - 1e-6))
        self._base_logit = float(np.log(positive_rate / (1.0 - positive_rate)))
        logits = np.full(X.shape[0], self._base_logit)
        eval_logits = (
            np.full(X_eval.shape[0], self._base_logit) if X_eval is not None else None
        )
        snapshots: dict[int, np.ndarray] = {}
        scope = incremental.active()
        shared_orders: "list[np.ndarray] | None" = None
        if scope is not None and self.subsample == 1.0:
            # without subsampling every round's tree sorts the same X:
            # the presort is a pure function of its bytes, so one
            # computation serves all rounds — and, via the scope memo,
            # every other fit on a byte-equal matrix (other grid shape
            # groups on the same fold, other versions sharing features)
            shared_orders = scope.memo(
                "tree_presort", (X,), (), lambda: presort_orders(X)
            )
        self._trees = []
        for round_index in range(n_rounds):
            p = _sigmoid(logits)
            gradients = p - y_float
            hessians = np.maximum(p * (1.0 - p), 1e-6)
            if self.subsample < 1.0:
                n_rows = max(1, int(round(self.subsample * X.shape[0])))
                rows = rng.choice(X.shape[0], size=n_rows, replace=False)
            else:
                rows = np.arange(X.shape[0])
            tree = _GradientTree(
                max_depth=self.max_depth,
                lam=self.reg_lambda,
                min_child_weight=self.min_child_weight,
                min_split_gain=0.0,
            )
            if shared_orders is not None:
                # rows is arange here: X[rows] would be a byte-equal
                # copy of X, so fitting on X with the shared presort is
                # bit-identical while skipping the copy and the sorts
                tree.fit(X, gradients, hessians, orders=shared_orders)
            else:
                tree.fit(X[rows], gradients[rows], hessians[rows])
            update = tree.predict(X)
            logits = logits + self.learning_rate * update
            self._trees.append(tree)
            if eval_logits is not None:
                eval_logits = eval_logits + self.learning_rate * tree.predict(X_eval)
                if eval_rounds is not None and round_index + 1 in eval_rounds:
                    snapshots[round_index + 1] = eval_logits.copy()
        return snapshots

    def score_grid(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        candidates: "list[dict[str, Any]]",
    ) -> np.ndarray | None:
        """Evaluate the grid with one boosting run per distinct tree shape.

        Candidates are grouped by every parameter except
        ``n_estimators``; each group trains once to its largest round
        budget while staged test logits are snapshotted at every
        requested budget. Because each round's tree (and the
        subsampling RNG draw) depends only on the preceding rounds, an
        ``m``-round prefix of a longer run is bitwise identical to an
        ``m``-round fit, and the staged logits replay
        ``decision_function``'s accumulation exactly — so every
        candidate's predictions match a cold clone-fit bit for bit.
        """
        if len(candidates) < 2:
            return None
        valid_names = set(self._param_names())
        key_set = set(candidates[0])
        if any(set(candidate) != key_set for candidate in candidates):
            return None
        if not key_set <= valid_names:
            return None
        budgets = [
            candidate.get("n_estimators", self.n_estimators)
            for candidate in candidates
        ]
        if any(
            not isinstance(budget, (int, np.integer)) or budget < 1
            for budget in budgets
        ):
            return None
        groups: dict[tuple, list[int]] = {}
        try:
            for index, candidate in enumerate(candidates):
                key = tuple(
                    sorted(
                        (name, value)
                        for name, value in candidate.items()
                        if name != "n_estimators"
                    )
                )
                groups.setdefault(key, []).append(index)
        except TypeError:
            return None
        if all(len(members) == 1 for members in groups.values()):
            # every candidate needs its own training run: nothing shared,
            # so the naive loop is just as fast
            return None
        predictions: np.ndarray | None = None
        for key, members in groups.items():
            model = clone(self).set_params(**dict(key))
            X, y = model._check_fit_inputs(X_train, y_train)
            if X.shape[0] == 0:
                return None
            X_eval = model._check_predict_inputs(X_test)
            if predictions is None:
                predictions = np.empty(
                    (len(candidates), X_eval.shape[0]), dtype=np.int64
                )
            rounds = {int(budgets[index]) for index in members}
            snapshots = model._boost(
                X, y, max(rounds), X_eval=X_eval, eval_rounds=rounds
            )
            for index in members:
                predictions[index] = _sigmoid(snapshots[int(budgets[index])]) >= 0.5
        return predictions

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw boosted logits."""
        if not self._trees:
            raise RuntimeError("GradientBoostedTreesClassifier is not fitted")
        X = self._check_predict_inputs(X)
        logits = np.full(X.shape[0], self._base_logit)
        for tree in self._trees:
            logits = logits + self.learning_rate * tree.predict(X)
        return logits

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])

    @property
    def n_fitted_trees(self) -> int:
        """Number of trees in the fitted ensemble."""
        return len(self._trees)
