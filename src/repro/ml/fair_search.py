"""Fairness-constrained hyperparameter search (the paper's §VII).

Standard cross-validated selection maximises accuracy alone; the paper
proposes extending the selection procedure to "adhere to fairness
constraints". :class:`FairnessConstrainedSearch` implements that: it
evaluates each hyperparameter candidate with cross-validation and
selects the most accurate candidate whose mean absolute fairness
disparity on the validation folds stays within ``max_disparity``.
When no candidate satisfies the constraint, the candidate with the
smallest disparity is selected instead (fail-safe mode).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.fairness.metrics import FairnessMetric
from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.model_selection import (
    StratifiedKFold,
    grid_fold_predictions,
    iter_grid_candidates,
)


class FairnessConstrainedSearch:
    """Grid search maximising accuracy subject to a fairness constraint.

    Args:
        estimator: Prototype classifier (cloned per fit).
        param_grid: Hyperparameter candidates.
        metric: Fairness metric evaluated on each validation fold.
        max_disparity: Constraint on the mean |disparity| across folds.
        n_splits: Cross-validation folds.
        random_state: Seed for fold assignment.
        use_fast_path: Dispatch candidate evaluation to the
            estimator's ``score_grid`` shared-computation kernel when
            available (predictions, and therefore every accuracy and
            disparity, are byte-identical to the naive loop).
    """

    def __init__(
        self,
        estimator: BaseClassifier,
        param_grid: dict[str, Sequence[Any]],
        metric: FairnessMetric,
        max_disparity: float = 0.1,
        n_splits: int = 3,
        random_state: int = 0,
        use_fast_path: bool = True,
    ) -> None:
        if not param_grid:
            raise ValueError("param_grid must not be empty")
        if max_disparity < 0:
            raise ValueError(f"max_disparity must be >= 0, got {max_disparity}")
        self.estimator = estimator
        self.param_grid = param_grid
        self.metric = metric
        self.max_disparity = max_disparity
        self.n_splits = n_splits
        self.random_state = random_state
        self.use_fast_path = use_fast_path
        self.best_params_: dict[str, Any] | None = None
        self.best_estimator_: BaseClassifier | None = None
        self.best_accuracy_: float = float("nan")
        self.best_disparity_: float = float("nan")
        self.constraint_satisfied_: bool = False
        self.cv_results_: list[dict[str, Any]] = []
        self.used_fast_path_: bool = False

    def _candidates(self):
        return iter_grid_candidates(self.param_grid)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        privileged: np.ndarray,
        disadvantaged: np.ndarray,
    ) -> "FairnessConstrainedSearch":
        """Search with group masks aligned to the training rows."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        privileged = np.asarray(privileged, dtype=bool)
        disadvantaged = np.asarray(disadvantaged, dtype=bool)
        if privileged.shape != y.shape or disadvantaged.shape != y.shape:
            raise ValueError("group masks must align with the training rows")
        folds = list(StratifiedKFold(self.n_splits, self.random_state).split(y))
        candidates = list(self._candidates())
        fast = (
            grid_fold_predictions(self.estimator, X, y, folds, candidates)
            if self.use_fast_path
            else None
        )
        fold_predictions = fast[0] if fast is not None else None
        self.used_fast_path_ = fast is not None
        obs.event(
            "fair_search",
            model=type(self.estimator).__name__,
            fast_path=self.used_fast_path_,
            n_candidates=len(candidates),
        )
        self.cv_results_ = []
        for index, candidate in enumerate(candidates):
            accuracies = []
            disparities = []
            for fold, (train_idx, valid_idx) in enumerate(folds):
                if fold_predictions is not None:
                    predictions = fold_predictions[fold][index]
                else:
                    model = clone(self.estimator).set_params(**candidate)
                    model.fit(X[train_idx], y[train_idx])
                    predictions = model.predict(X[valid_idx])
                accuracies.append(accuracy_score(y[valid_idx], predictions))
                priv_mask = privileged[valid_idx]
                dis_mask = disadvantaged[valid_idx]
                if priv_mask.any() and dis_mask.any():
                    disparity = self.metric(
                        confusion_matrix(y[valid_idx][priv_mask], predictions[priv_mask]),
                        confusion_matrix(y[valid_idx][dis_mask], predictions[dis_mask]),
                    )
                else:
                    disparity = float("nan")
                disparities.append(abs(disparity))
            mean_disparity = (
                float(np.nanmean(disparities))
                if not np.isnan(disparities).all()
                else float("inf")
            )
            self.cv_results_.append(
                {
                    "params": dict(candidate),
                    "accuracy": float(np.mean(accuracies)),
                    "disparity": mean_disparity,
                }
            )
        feasible = [
            entry
            for entry in self.cv_results_
            if entry["disparity"] <= self.max_disparity
        ]
        if feasible:
            best = max(feasible, key=lambda entry: entry["accuracy"])
            self.constraint_satisfied_ = True
        else:
            best = min(self.cv_results_, key=lambda entry: entry["disparity"])
            self.constraint_satisfied_ = False
        self.best_params_ = dict(best["params"])
        self.best_accuracy_ = best["accuracy"]
        self.best_disparity_ = best["disparity"]
        self.best_estimator_ = clone(self.estimator).set_params(**best["params"])
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("FairnessConstrainedSearch is not fitted")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("FairnessConstrainedSearch is not fitted")
        return self.best_estimator_.predict_proba(X)
