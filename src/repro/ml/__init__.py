"""Machine-learning substrate.

A from-scratch, numpy-based replacement for the scikit-learn / xgboost
functionality the study depends on: three classifier families
(logistic regression, k-nearest-neighbours, gradient-boosted trees),
an isolation forest for multivariate outlier detection, feature
preprocessing, cross-validation based model selection, and
classification metrics.
"""

from repro.ml.base import BaseClassifier, clone, split_single_parameter_grid
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.ml.featurize import TabularFeaturizer
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.knn import KNearestNeighborsClassifier
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.boosting import GradientBoostedTreesClassifier
from repro.ml.isolation import IsolationForest
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    StratifiedKFold,
    cross_val_predict_proba,
    grid_fold_predictions,
    iter_grid_candidates,
    train_test_split,
)
from repro.ml.fair_search import FairnessConstrainedSearch
from repro.ml import incremental, metrics

__all__ = [
    "BaseClassifier",
    "clone",
    "OneHotEncoder",
    "StandardScaler",
    "TabularFeaturizer",
    "LogisticRegressionClassifier",
    "KNearestNeighborsClassifier",
    "DecisionTreeRegressor",
    "GradientBoostedTreesClassifier",
    "IsolationForest",
    "FairnessConstrainedSearch",
    "GridSearchCV",
    "KFold",
    "StratifiedKFold",
    "cross_val_predict_proba",
    "grid_fold_predictions",
    "iter_grid_candidates",
    "split_single_parameter_grid",
    "train_test_split",
    "metrics",
]
