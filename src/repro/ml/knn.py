"""Brute-force k-nearest-neighbours classification.

Exact euclidean kNN. Distances are computed in memory-bounded chunks
so that large test sets do not materialise an n_test × n_train matrix
at once.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier

_CHUNK_TARGET_CELLS = 4_000_000


class KNearestNeighborsClassifier(BaseClassifier):
    """kNN classifier with probability = fraction of positive neighbours.

    Args:
        n_neighbors: Number of neighbours to vote (capped at the
            training-set size at fit time).
    """

    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighborsClassifier":
        X, y = self._check_fit_inputs(X, y)
        if X.shape[0] == 0:
            raise ValueError("cannot fit kNN on an empty training set")
        self._X = X
        self._y = y
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("KNearestNeighborsClassifier is not fitted")
        X = self._check_predict_inputs(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"expected {self._X.shape[1]} features, got {X.shape[1]}"
            )
        k = min(self.n_neighbors, self._X.shape[0])
        n_train = self._X.shape[0]
        chunk_rows = max(1, _CHUNK_TARGET_CELLS // max(1, n_train))
        train_sq = np.sum(self._X**2, axis=1)
        positives = np.empty(X.shape[0], dtype=np.float64)
        for start in range(0, X.shape[0], chunk_rows):
            chunk = X[start : start + chunk_rows]
            # squared euclidean distance; constant ||x||^2 term omitted
            distances = train_sq[None, :] - 2.0 * (chunk @ self._X.T)
            neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            positives[start : start + chunk_rows] = self._y[neighbor_idx].mean(axis=1)
        return np.column_stack([1.0 - positives, positives])
