"""Brute-force k-nearest-neighbours classification.

Exact euclidean kNN. Distances are computed in memory-bounded chunks
so that large test sets do not materialise an n_test × n_train matrix
at once. The squared training norms are cached at fit time, and a
``score_grid`` fast path evaluates a whole ``n_neighbors`` grid from
one distance matrix per chunk: one ``argpartition`` up to
``max(k) + 1``, one sort of the top block, then prefix votes per
``k`` — with an exact per-row fallback wherever a distance tie at the
``k``-boundary could make the selected neighbour set ambiguous.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml import incremental
from repro.ml.base import BaseClassifier, split_single_parameter_grid

_CHUNK_TARGET_CELLS = 4_000_000


class KNearestNeighborsClassifier(BaseClassifier):
    """kNN classifier with probability = fraction of positive neighbours.

    Args:
        n_neighbors: Number of neighbours to vote (capped at the
            training-set size at fit time).
    """

    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._train_sq: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighborsClassifier":
        X, y = self._check_fit_inputs(X, y)
        if X.shape[0] == 0:
            raise ValueError("cannot fit kNN on an empty training set")
        self._X = X
        self._y = y
        scope = incremental.active()
        if scope is not None:
            # pure function of X's bytes: safe to share across versions
            # whose training matrices coincide (e.g. mislabel repairs)
            self._train_sq = scope.memo(
                "knn_train_sq", (X,), (), lambda: np.sum(X**2, axis=1)
            )
        else:
            self._train_sq = np.sum(X**2, axis=1)
        return self

    def _check_test_matrix(self, X: np.ndarray) -> np.ndarray:
        assert self._X is not None
        X = self._check_predict_inputs(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"expected {self._X.shape[1]} features, got {X.shape[1]}"
            )
        return X

    def _chunk_distances(self, chunk: np.ndarray) -> np.ndarray:
        """Squared euclidean distance; constant ||x||^2 term omitted."""
        assert self._X is not None and self._train_sq is not None
        return self._train_sq[None, :] - 2.0 * (chunk @ self._X.T)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("KNearestNeighborsClassifier is not fitted")
        X = self._check_test_matrix(X)
        k = min(self.n_neighbors, self._X.shape[0])
        n_train = self._X.shape[0]
        chunk_rows = max(1, _CHUNK_TARGET_CELLS // max(1, n_train))
        scope = incremental.active()
        positives = np.empty(X.shape[0], dtype=np.float64)
        for start in range(0, X.shape[0], chunk_rows):
            chunk = X[start : start + chunk_rows]
            if scope is not None:
                # distances depend only on (chunk, training matrix) bytes;
                # hits fire when a repaired version shares its parent's
                # feature matrices (identical query against identical X)
                distances = scope.memo(
                    "knn_distances",
                    (chunk, self._X),
                    (),
                    lambda: self._chunk_distances(chunk),
                )
            else:
                distances = self._chunk_distances(chunk)
            neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            positives[start : start + chunk_rows] = self._y[neighbor_idx].mean(axis=1)
        return np.column_stack([1.0 - positives, positives])

    def score_grid(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        candidates: "list[dict[str, Any]]",
    ) -> np.ndarray | None:
        """Evaluate an ``n_neighbors`` grid from one distance pass per chunk.

        Byte-identical to fitting and predicting one clone per
        candidate. The neighbour vote is the mean of 0/1 labels over
        the ``k`` nearest training points; whenever the ``k``-th and
        ``(k+1)``-th smallest distances differ strictly, that
        neighbour *set* is unique, so the prefix vote over the sorted
        top block equals the naive ``argpartition`` vote exactly
        (integer label sums are order-independent in float64). Rows
        with a boundary tie are recomputed with the naive per-``k``
        ``argpartition`` on the same distance row, which reproduces
        the naive index selection bit for bit.
        """
        spec = split_single_parameter_grid(candidates)
        if spec is None or spec[1] != "n_neighbors":
            return None
        fixed, __, values = spec
        if fixed:
            # n_neighbors is this model's only hyperparameter
            return None
        if any(
            not isinstance(value, (int, np.integer)) or value < 1 for value in values
        ):
            return None
        self.fit(X_train, y_train)
        assert self._X is not None and self._y is not None
        X = self._check_test_matrix(X_test)
        n_train = self._X.shape[0]
        ks = [min(int(value), n_train) for value in values]
        kmax = max(ks)
        block = min(kmax + 1, n_train)
        chunk_rows = max(1, _CHUNK_TARGET_CELLS // max(1, n_train))
        positives = np.empty((len(ks), X.shape[0]), dtype=np.float64)
        for start in range(0, X.shape[0], chunk_rows):
            chunk = X[start : start + chunk_rows]
            distances = self._chunk_distances(chunk)
            if block < n_train:
                block_idx = np.argpartition(distances, block - 1, axis=1)[:, :block]
            else:
                block_idx = np.broadcast_to(
                    np.arange(n_train), (chunk.shape[0], n_train)
                )
            block_vals = np.take_along_axis(distances, block_idx, axis=1)
            order = np.argsort(block_vals, axis=1, kind="stable")
            sorted_vals = np.take_along_axis(block_vals, order, axis=1)
            sorted_labels = np.take_along_axis(
                self._y[block_idx], order, axis=1
            )
            prefix = np.cumsum(sorted_labels, axis=1)
            for index, k in enumerate(ks):
                votes = prefix[:, k - 1] / k
                if k < n_train:
                    # boundary tie: the k nearest are ambiguous as a set —
                    # replay the naive selection on the same distance row
                    tied_rows = np.nonzero(
                        sorted_vals[:, k] == sorted_vals[:, k - 1]
                    )[0]
                    for row in tied_rows:
                        neighbor_idx = np.argpartition(distances[row], k - 1)[:k]
                        votes[row] = self._y[neighbor_idx].mean()
                positives[index, start : start + chunk_rows] = votes
        return (positives >= 0.5).astype(np.int64)
