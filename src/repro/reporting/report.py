"""Full study report generation.

Builds a single markdown document from a populated result store: all
twelve impact matrices, the model table, the case analysis and the
technique analyses — the machine-written counterpart of the paper's
Section V and VI. Used by ``python -m repro`` consumers and the
EXPERIMENTS.md workflow.
"""

from __future__ import annotations

from repro.benchmark.deepdive import DeepDive
from repro.benchmark.impact import ImpactAnalysis, ImpactMatrix
from repro.benchmark.results import ResultStore
from repro.reporting.tables import (
    render_case_counts,
    render_impact_matrix,
    render_model_table,
)
from repro.stats.impact import Impact

#: (table number, error type, metric, intersectional) in paper order.
TABLE_PLAN: tuple[tuple[str, str, str, bool], ...] = (
    ("II", "missing_values", "PP", False),
    ("III", "missing_values", "EO", False),
    ("IV", "missing_values", "PP", True),
    ("V", "missing_values", "EO", True),
    ("VI", "outliers", "PP", False),
    ("VII", "outliers", "EO", False),
    ("VIII", "outliers", "PP", True),
    ("IX", "outliers", "EO", True),
    ("X", "mislabels", "PP", False),
    ("XI", "mislabels", "EO", False),
    ("XII", "mislabels", "PP", True),
    ("XIII", "mislabels", "EO", True),
)


def _matrix_headline(matrix: ImpactMatrix) -> str:
    """One-sentence summary of a 3x3 matrix's fairness margins."""
    if matrix.total == 0:
        return "no configurations evaluated."
    worse = matrix.fairness_marginal(Impact.WORSE)
    better = matrix.fairness_marginal(Impact.BETTER)
    accuracy_worse = matrix.accuracy_marginal(Impact.WORSE)
    accuracy_better = matrix.accuracy_marginal(Impact.BETTER)
    return (
        f"fairness worse in {100 * worse / matrix.total:.1f}% / better in "
        f"{100 * better / matrix.total:.1f}% of configurations; accuracy "
        f"worse in {100 * accuracy_worse / matrix.total:.1f}% / better in "
        f"{100 * accuracy_better / matrix.total:.1f}%."
    )


def build_study_report(store: ResultStore, title: str = "Study report") -> str:
    """Render a complete markdown report from a result store."""
    analysis = ImpactAnalysis(store)
    sections = [f"# {title}", ""]
    sections.append(f"Result store: {len(store)} run records.")
    sections.append("")

    for number, error_type, metric, intersectional in TABLE_PLAN:
        matrix = analysis.matrix(error_type, metric, intersectional=intersectional)
        if matrix.total == 0:
            continue
        group = "intersectional" if intersectional else "single-attribute"
        sections.append(
            f"## Table {number}: {error_type}, {group} groups, {metric}"
        )
        sections.append("")
        sections.append("```")
        sections.append(
            render_impact_matrix(matrix, f"Table {number}")
        )
        sections.append("```")
        sections.append("")
        sections.append(f"Headline: {_matrix_headline(matrix)}")
        sections.append("")

    impacts = []
    for error_type in ("missing_values", "outliers", "mislabels"):
        for metric in ("PP", "EO"):
            impacts.extend(
                analysis.configuration_impacts(error_type, metric, intersectional=False)
            )
    if impacts:
        deepdive = DeepDive(impacts)
        sections.append("## Table XIV: model choice")
        sections.append("")
        sections.append("```")
        sections.append(
            render_model_table(deepdive.model_summaries(), "Table XIV")
        )
        sections.append("```")
        sections.append("")
        sections.append("## Section VI deep dive")
        sections.append("")
        sections.append("```")
        sections.append(render_case_counts(deepdive.case_counts(), "Cases"))
        sections.append("```")
        sections.append("")
        dummy = deepdive.dummy_vs_mode_imputation()
        sections.append(
            f"- Categorical imputation: dummy improves fairness in "
            f"{dummy['dummy']} configurations vs {dummy['other']} for mode."
        )
        rates = deepdive.detection_worsening_rates()
        for name in ("outliers_sd", "outliers_iqr", "outliers_if"):
            if name in rates:
                sections.append(
                    f"- {name}: worsens fairness in {100 * rates[name]:.1f}% "
                    "of its configurations."
                )
        leaderboard = deepdive.accuracy_leaderboard()
        from collections import Counter

        winner_counts = Counter(leaderboard.values())
        ranked = ", ".join(
            f"{model} ({count})" for model, count in winner_counts.most_common()
        )
        sections.append(
            f"- Best-accuracy model per dataset/error pair: {ranked}."
        )
    return "\n".join(sections)
