"""Text rendering of the RQ1 disparity figures (Figures 1 and 2).

The paper's figures show, per dataset and detector, the fraction of
flagged tuples in the privileged vs disadvantaged group. We render the
same data as aligned text bars, marking significant disparities.
"""

from __future__ import annotations

from repro.benchmark.disparity import DisparityFinding

_BAR_WIDTH = 32


def _bar(fraction: float) -> str:
    if fraction != fraction:  # NaN
        return "n/a"
    filled = int(round(min(max(fraction, 0.0), 1.0) * _BAR_WIDTH))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def render_disparity_figure(
    findings: list[DisparityFinding], title: str
) -> str:
    """Render a Figure-1/2-style disparity chart as text.

    Findings are grouped by dataset and group key; each detector shows
    privileged (priv) and disadvantaged (dis) flagged fractions, with a
    ``*`` marking G²-significant disparities.
    """
    lines = [title]
    current_header = None
    for finding in findings:
        header = f"{finding.dataset} / {finding.group_key}"
        if header != current_header:
            current_header = header
            lines.append("")
            lines.append(header)
        marker = "*" if finding.significant else " "
        lines.append(
            f"  {finding.detector:<16}{marker} "
            f"priv {_bar(finding.privileged_fraction)} "
            f"{100 * finding.privileged_fraction:5.1f}%  "
            f"({finding.privileged_flagged}/{finding.privileged_total})"
        )
        lines.append(
            f"  {'':<16}{' '} "
            f"dis  {_bar(finding.disadvantaged_fraction)} "
            f"{100 * finding.disadvantaged_fraction:5.1f}%  "
            f"({finding.disadvantaged_flagged}/{finding.disadvantaged_total})"
        )
    if current_header is None:
        lines.append("  (no findings)")
    return "\n".join(lines)
