"""Markdown fairness-audit report (CI artifact + human review).

Renders a :class:`repro.obs.FairnessAudit` — optionally with a
baseline :class:`repro.obs.AuditDiff` and fired alert payloads — as a
standalone markdown document. Everything is duck-typed on the audit
objects' public attributes so this module never imports
:mod:`repro.obs` (reporting stays a leaf package).
"""

from __future__ import annotations

from typing import Any, Iterable


def _fmt(value: float | None, digits: int = 3) -> str:
    if value is None:
        return "—"
    return f"{value:+.{digits}f}" if value < 0 else f"{value:.{digits}f}"


def _fmt_delta(value: float | None, digits: int = 3) -> str:
    if value is None:
        return "—"
    return f"{value:+.{digits}f}"


def _alert_json(alert: Any) -> dict[str, Any]:
    if isinstance(alert, dict):
        return alert
    return alert.to_json()


def render_fairness_audit(
    audit: Any,
    diff: Any | None = None,
    alerts: Iterable[Any] = (),
    title: str = "Fairness audit",
    top: int = 15,
) -> str:
    """Render an audit (and optional baseline diff) as markdown.

    ``audit`` needs ``metrics``, ``n_records`` and ``groups`` (each
    group exposing ``coordinate``, ``n_runs``, ``dirty_acc``,
    ``repaired_acc``, ``gaps`` and ``widening(metric)``); ``diff``
    needs ``regressions`` / ``improvements`` / ``findings`` (see
    :class:`repro.obs.AuditDiff`); ``alerts`` are
    :class:`repro.obs.Alert` objects or their ``to_json`` payloads.
    """
    alerts = [_alert_json(alert) for alert in alerts]
    metrics = list(audit.metrics)
    lines = [f"# {title}", ""]
    lines.append(
        f"{audit.n_records} records, {len(audit.groups)} audited "
        f"(dataset, error type, detection, repair, model, group) "
        f"coordinates, metrics: {', '.join(metrics)}."
    )
    lines.append("")

    if diff is not None:
        regressions = diff.regressions
        improvements = diff.improvements
        verdict = (
            f"**{len(regressions)} fairness regression(s)** vs baseline"
            if regressions
            else "**No fairness regressions** vs baseline"
        )
        lines.append(
            f"{verdict} (|Δgap| ≥ {diff.min_gap:g} and relative ≥ "
            f"{diff.threshold:g} and G² significant at α={diff.alpha:g}); "
            f"{len(improvements)} significant improvement(s)."
        )
        lines.append("")
        if regressions:
            lines.append("## Regressions")
            lines.append("")
            lines.append(
                "| coordinate | baseline gap | candidate gap | Δ | G² | p |"
            )
            lines.append("|---|---|---|---|---|---|")
            for finding in regressions:
                lines.append(
                    f"| `{finding.coordinate}` "
                    f"| {_fmt(finding.baseline_gap)} "
                    f"| {_fmt(finding.candidate_gap)} "
                    f"| {_fmt_delta(finding.delta)} "
                    f"| {finding.g_statistic:.2f} "
                    f"| {finding.p_value:.4f} |"
                )
            lines.append("")
        if improvements:
            lines.append("## Improvements")
            lines.append("")
            lines.append("| coordinate | baseline gap | candidate gap | Δ |")
            lines.append("|---|---|---|---|")
            for finding in improvements:
                lines.append(
                    f"| `{finding.coordinate}` "
                    f"| {_fmt(finding.baseline_gap)} "
                    f"| {_fmt(finding.candidate_gap)} "
                    f"| {_fmt_delta(finding.delta)} |"
                )
            lines.append("")

    if alerts:
        lines.append(f"## Alerts ({len(alerts)})")
        lines.append("")
        for alert in alerts:
            lines.append(
                f"- **{alert['rule']}** at `{alert['coordinate']}`: "
                f"{alert['message']}"
            )
        lines.append("")

    # worst widenings across the whole audit: cleaning hurt these most
    widenings = []
    for group in audit.groups:
        for metric in metrics:
            widening = group.widening(metric)
            if widening is not None and widening > 0:
                widenings.append((widening, group, metric))
    widenings.sort(key=lambda item: (-item[0], item[1].coordinate, item[2]))
    lines.append("## Worst widenings (repair widened the disparity)")
    lines.append("")
    if widenings:
        lines.append(
            "| coordinate | metric | dirty gap | repaired gap | widening |"
        )
        lines.append("|---|---|---|---|---|")
        for widening, group, metric in widenings[:top]:
            dirty, repaired = group.gaps[metric]
            lines.append(
                f"| `{group.coordinate}` | {metric} "
                f"| {_fmt(dirty)} | {_fmt(repaired)} "
                f"| {_fmt_delta(widening)} |"
            )
        if len(widenings) > top:
            lines.append("")
            lines.append(f"… and {len(widenings) - top} more.")
    else:
        lines.append("No repair widened any audited disparity.")
    lines.append("")

    lines.append("## Audited coordinates")
    lines.append("")
    header = "| coordinate | runs | dirty acc | repaired acc |"
    divider = "|---|---|---|---|"
    for metric in metrics:
        header += f" {metric} dirty→repaired |"
        divider += "---|"
    lines.append(header)
    lines.append(divider)
    for group in audit.groups:
        row = (
            f"| `{group.coordinate}` | {group.n_runs} "
            f"| {_fmt(group.dirty_acc)} | {_fmt(group.repaired_acc)} |"
        )
        for metric in metrics:
            dirty, repaired = group.gaps.get(metric, (None, None))
            row += f" {_fmt(dirty)}→{_fmt(repaired)} |"
        lines.append(row)
    lines.append("")
    return "\n".join(lines)
