"""Renderers for the paper's tables.

Each renderer returns a plain-text table whose rows and columns match
the corresponding table in the paper, so paper-vs-measured comparison
is a side-by-side read.
"""

from __future__ import annotations

from repro.benchmark.deepdive import ModelSummary
from repro.benchmark.impact import ImpactMatrix
from repro.stats.impact import Impact

_IMPACT_ORDER = (Impact.WORSE, Impact.INSIGNIFICANT, Impact.BETTER)
_IMPACT_LABELS = {
    Impact.WORSE: "worse",
    Impact.INSIGNIFICANT: "insignificant",
    Impact.BETTER: "better",
}


def _cell(matrix: ImpactMatrix, fairness: Impact, accuracy: Impact) -> str:
    if matrix.total == 0:
        return "-"
    fraction = matrix.fraction(fairness, accuracy)
    return f"{100 * fraction:.1f}% ({matrix.count(fairness, accuracy)})"


def render_impact_matrix(matrix: ImpactMatrix, title: str) -> str:
    """Render a 3x3 fairness × accuracy impact matrix (Tables II-XIII)."""
    header = ["fair. \\ acc."] + [_IMPACT_LABELS[a] for a in _IMPACT_ORDER] + ["total"]
    rows = [header]
    for fairness in _IMPACT_ORDER:
        row = [_IMPACT_LABELS[fairness]]
        for accuracy in _IMPACT_ORDER:
            row.append(_cell(matrix, fairness, accuracy))
        marginal = matrix.fairness_marginal(fairness)
        share = 100 * marginal / matrix.total if matrix.total else 0.0
        row.append(f"{share:.1f}% ({marginal})")
        rows.append(row)
    footer = ["total"]
    for accuracy in _IMPACT_ORDER:
        marginal = matrix.accuracy_marginal(accuracy)
        share = 100 * marginal / matrix.total if matrix.total else 0.0
        footer.append(f"{share:.1f}% ({marginal})")
    footer.append(f"100% ({matrix.total})")
    rows.append(footer)
    return f"{title}\n{_render_grid(rows)}"


def render_model_table(summaries: list[ModelSummary], title: str) -> str:
    """Render Table XIV (per-model impact of auto-cleaning)."""
    rows = [
        ["model", "fairness worse", "fairness better", "fairness & accuracy better"]
    ]
    for summary in summaries:
        rows.append(
            [
                summary.model,
                f"{100 * summary.fairness_worse_fraction:.1f}% "
                f"({summary.fairness_worse})",
                f"{100 * summary.fairness_better_fraction:.1f}% "
                f"({summary.fairness_better})",
                f"{100 * summary.both_better_fraction:.1f}% "
                f"({summary.both_better})",
            ]
        )
    return f"{title}\n{_render_grid(rows)}"


def render_dataset_table(rows: list[dict], title: str) -> str:
    """Render Table I (dataset summary).

    Each row dict needs: name, source, n_tuples, sensitive_attributes.
    """
    grid = [["name", "source", "number of tuples", "sensitive attributes"]]
    for row in rows:
        grid.append(
            [
                row["name"],
                row["source"],
                f"{row['n_tuples']:,}",
                ", ".join(row["sensitive_attributes"]),
            ]
        )
    return f"{title}\n{_render_grid(grid)}"


def render_case_counts(counts: dict[str, int], title: str) -> str:
    """Render the §VI case-analysis counts (the 37/40-style numbers)."""
    total = counts["total"]
    lines = [
        title,
        f"  cases analysed:                      {total}",
        f"  with a non-worsening technique:      {counts['non_worsening']} / {total}",
        f"  with a fairness-improving technique: {counts['fairness_improving']} / {total}",
        f"  with a fairness & accuracy win-win:  {counts['win_win']} / {total}",
    ]
    return "\n".join(lines)


def _render_grid(rows: list[list[str]]) -> str:
    widths = [
        max(len(str(row[i])) for row in rows) for i in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
