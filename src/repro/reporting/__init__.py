"""Text renderers for the paper's tables and figures."""

from repro.reporting.audit_report import render_fairness_audit
from repro.reporting.tables import (
    render_case_counts,
    render_dataset_table,
    render_impact_matrix,
    render_model_table,
)
from repro.reporting.figures import render_disparity_figure
from repro.reporting.report import build_study_report

__all__ = [
    "build_study_report",
    "render_fairness_audit",
    "render_impact_matrix",
    "render_model_table",
    "render_dataset_table",
    "render_case_counts",
    "render_disparity_figure",
]
