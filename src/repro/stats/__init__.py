"""Statistical machinery.

- :func:`g_test` — the G² likelihood-ratio independence test the
  paper uses to decide whether error incidence differs significantly
  between groups (RQ1).
- :func:`classify_impact` — the CleanML paired-t-test protocol with
  Bonferroni correction used to classify a cleaning technique's impact
  on a score as worse / insignificant / better (RQ2).
"""

from repro.stats.gtest import GTestResult, g_test, g_test_counts
from repro.stats.impact import (
    Impact,
    classify_impact,
    paired_t_test,
)

__all__ = [
    "GTestResult",
    "g_test",
    "g_test_counts",
    "Impact",
    "classify_impact",
    "paired_t_test",
]
