"""G² likelihood-ratio test of independence for 2x2 tables.

Used in the paper's RQ1 analysis: does the *flagged / not flagged*
status of a tuple depend on its *privileged / disadvantaged* group
membership? The statistic is

    G² = 2 * sum_ij O_ij * ln(O_ij / E_ij)

which is asymptotically chi-squared with 1 degree of freedom for a
2x2 table. The paper's significance threshold (p = .05) is the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class GTestResult:
    """Outcome of a G² independence test.

    Attributes:
        statistic: The G² statistic.
        p_value: Chi-squared (df from table shape) tail probability.
        dof: Degrees of freedom.
        significant: Whether p < alpha.
    """

    statistic: float
    p_value: float
    dof: int
    significant: bool


def g_test(observed: np.ndarray, alpha: float = 0.05) -> GTestResult:
    """G² test of independence on a contingency table.

    Args:
        observed: A 2-d array of non-negative counts.
        alpha: Significance threshold.

    Rows or columns with a zero marginal contribute no information and
    are dropped before testing; if fewer than 2 rows and columns
    remain, the result is "not significant" with p = 1.
    """
    observed = np.asarray(observed, dtype=np.float64)
    if observed.ndim != 2:
        raise ValueError(f"contingency table must be 2-d, got shape {observed.shape}")
    if (observed < 0).any():
        raise ValueError("counts must be non-negative")
    observed = observed[observed.sum(axis=1) > 0][:, observed.sum(axis=0) > 0]
    if observed.shape[0] < 2 or observed.shape[1] < 2:
        return GTestResult(statistic=0.0, p_value=1.0, dof=0, significant=False)
    total = observed.sum()
    expected = np.outer(observed.sum(axis=1), observed.sum(axis=0)) / total
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = observed * np.log(observed / expected)
    terms = np.where(observed > 0, terms, 0.0)
    statistic = float(2.0 * terms.sum())
    dof = (observed.shape[0] - 1) * (observed.shape[1] - 1)
    p_value = float(scipy_stats.chi2.sf(statistic, dof))
    return GTestResult(
        statistic=statistic,
        p_value=p_value,
        dof=dof,
        significant=p_value < alpha,
    )


def g_test_counts(
    flagged_privileged: int,
    total_privileged: int,
    flagged_disadvantaged: int,
    total_disadvantaged: int,
    alpha: float = 0.05,
) -> GTestResult:
    """G² test from the four counts the RQ1 analysis produces."""
    if flagged_privileged > total_privileged:
        raise ValueError("flagged_privileged exceeds total_privileged")
    if flagged_disadvantaged > total_disadvantaged:
        raise ValueError("flagged_disadvantaged exceeds total_disadvantaged")
    table = np.array(
        [
            [flagged_privileged, total_privileged - flagged_privileged],
            [flagged_disadvantaged, total_disadvantaged - flagged_disadvantaged],
        ],
        dtype=np.float64,
    )
    return g_test(table, alpha=alpha)
