"""Impact classification via paired t-tests (CleanML protocol).

For each configuration the benchmark produces two vectors of scores —
one from the "dirty" baseline models and one from the models trained
after cleaning. Following CleanML, the impact of cleaning on a score
is classified with a paired t-test at threshold p = .05, adjusted by a
Bonferroni correction for the number of simultaneous hypotheses:

- *better*  — significant difference in the improving direction,
- *worse*   — significant difference in the degrading direction,
- *insignificant* — otherwise.

For accuracy, "improving" means a larger value. For fairness
disparities, "improving" means a smaller absolute disparity.
"""

from __future__ import annotations

import enum

import numpy as np
from scipy import stats as scipy_stats


class Impact(enum.Enum):
    """Direction of a cleaning technique's effect on a score."""

    WORSE = "worse"
    INSIGNIFICANT = "insignificant"
    BETTER = "better"


def paired_t_test(baseline: np.ndarray, treated: np.ndarray) -> float:
    """Two-sided paired t-test p-value (1.0 for degenerate inputs).

    NaN pairs (which occur when a fairness metric is undefined on some
    run, e.g. no positive predictions in a group) are dropped.
    """
    baseline = np.asarray(baseline, dtype=np.float64)
    treated = np.asarray(treated, dtype=np.float64)
    if baseline.shape != treated.shape:
        raise ValueError(
            f"shape mismatch: baseline {baseline.shape} vs treated {treated.shape}"
        )
    keep = ~(np.isnan(baseline) | np.isnan(treated))
    baseline, treated = baseline[keep], treated[keep]
    if baseline.size < 2:
        return 1.0
    differences = treated - baseline
    if np.allclose(differences, 0.0):
        return 1.0
    result = scipy_stats.ttest_rel(treated, baseline)
    p_value = float(result.pvalue)
    return 1.0 if np.isnan(p_value) else p_value


def classify_impact(
    baseline: np.ndarray,
    treated: np.ndarray,
    higher_is_better: bool,
    use_magnitude: bool = False,
    alpha: float = 0.05,
    n_hypotheses: int = 1,
) -> Impact:
    """Classify cleaning impact on a score vector pair.

    Args:
        baseline: Scores of the dirty baseline (one per run).
        treated: Scores after cleaning (paired with baseline).
        higher_is_better: True for accuracy-like scores.
        use_magnitude: Compare |score| instead of the signed score —
            used for fairness disparities, where values closer to zero
            are fairer regardless of sign.
        alpha: Base significance threshold (.05 in the paper).
        n_hypotheses: Bonferroni divisor for multiple testing.
    """
    if n_hypotheses < 1:
        raise ValueError(f"n_hypotheses must be >= 1, got {n_hypotheses}")
    baseline = np.asarray(baseline, dtype=np.float64)
    treated = np.asarray(treated, dtype=np.float64)
    if use_magnitude:
        baseline = np.abs(baseline)
        treated = np.abs(treated)
        higher_is_better = False
    p_value = paired_t_test(baseline, treated)
    threshold = alpha / n_hypotheses
    if p_value >= threshold:
        return Impact.INSIGNIFICANT
    keep = ~(np.isnan(baseline) | np.isnan(treated))
    mean_change = float(np.mean(treated[keep] - baseline[keep]))
    improved = mean_change > 0 if higher_is_better else mean_change < 0
    return Impact.BETTER if improved else Impact.WORSE
