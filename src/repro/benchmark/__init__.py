"""The experimentation framework (the paper's core contribution).

Extends the CleanML design with declarative sensitive-attribute
definitions and automatic computation of group-wise confusion matrices
per cleaning technique (Section IV), an impact analysis based on
paired t-tests with Bonferroni correction (Section V), the RQ1
disparity analysis (Section III) and the Section VI deep dive.
"""

from repro.benchmark.config import StudyConfig
from repro.benchmark.models import MODEL_NAMES, model_search
from repro.benchmark.results import (
    JournalWriter,
    ResultStore,
    RunRecord,
    record_checksum,
)
from repro.benchmark.runner import ExperimentRunner
from repro.benchmark.parallel import (
    CellTimeoutError,
    ExecutorOptions,
    StudyAborted,
    WorkUnit,
    backoff_delay,
    plan_work_units,
    run_parallel_study,
)
from repro.benchmark.impact import (
    ConfigurationImpact,
    ImpactAnalysis,
    ImpactMatrix,
)
from repro.benchmark.disparity import DisparityAnalysis, DisparityFinding
from repro.benchmark.deepdive import DeepDive
from repro.benchmark.selection import FairnessAwareSelector

__all__ = [
    "StudyConfig",
    "MODEL_NAMES",
    "model_search",
    "JournalWriter",
    "ResultStore",
    "RunRecord",
    "record_checksum",
    "ExperimentRunner",
    "CellTimeoutError",
    "ExecutorOptions",
    "StudyAborted",
    "WorkUnit",
    "backoff_delay",
    "plan_work_units",
    "run_parallel_study",
    "ConfigurationImpact",
    "ImpactAnalysis",
    "ImpactMatrix",
    "DisparityAnalysis",
    "DisparityFinding",
    "DeepDive",
    "FairnessAwareSelector",
]
