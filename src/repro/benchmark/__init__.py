"""The experimentation framework (the paper's core contribution).

Extends the CleanML design with declarative sensitive-attribute
definitions and automatic computation of group-wise confusion matrices
per cleaning technique (Section IV), an impact analysis based on
paired t-tests with Bonferroni correction (Section V), the RQ1
disparity analysis (Section III) and the Section VI deep dive.
"""

from repro.benchmark.config import StudyConfig
from repro.benchmark.models import MODEL_NAMES, model_search
from repro.benchmark.results import (
    STORE_FORMAT,
    JournalWriter,
    ResultStore,
    RunRecord,
    record_checksum,
    write_legacy_store,
)
from repro.benchmark.runner import ExperimentRunner
from repro.benchmark.parallel import (
    BACKENDS,
    TRANSPORTS,
    CellTimeoutError,
    ExecutorOptions,
    StudyAborted,
    WorkUnit,
    backoff_delay,
    plan_work_units,
    run_parallel_study,
)
from repro.benchmark.transport import (
    ShmRegistry,
    TableRef,
    attach_table,
    publish_table,
    shared_memory_available,
)
from repro.benchmark.impact import (
    ConfigurationImpact,
    ImpactAnalysis,
    ImpactMatrix,
)
from repro.benchmark.disparity import DisparityAnalysis, DisparityFinding
from repro.benchmark.deepdive import DeepDive
from repro.benchmark.selection import FairnessAwareSelector

__all__ = [
    "StudyConfig",
    "MODEL_NAMES",
    "model_search",
    "STORE_FORMAT",
    "JournalWriter",
    "ResultStore",
    "RunRecord",
    "record_checksum",
    "write_legacy_store",
    "ExperimentRunner",
    "BACKENDS",
    "TRANSPORTS",
    "CellTimeoutError",
    "ExecutorOptions",
    "ShmRegistry",
    "TableRef",
    "attach_table",
    "publish_table",
    "shared_memory_available",
    "StudyAborted",
    "WorkUnit",
    "backoff_delay",
    "plan_work_units",
    "run_parallel_study",
    "ConfigurationImpact",
    "ImpactAnalysis",
    "ImpactMatrix",
    "DisparityAnalysis",
    "DisparityFinding",
    "DeepDive",
    "FairnessAwareSelector",
]
