"""The resumable result store.

Every run (one trained-and-evaluated model pair) is stored as a flat
JSON-serialisable record under a deterministic key::

    {dataset}/{error_type}/{repair}/{model}/rep{repetition}/seed{seed}

The store can persist to a JSON file and *resume*: re-running a study
skips every key already present. The key→value mapping is stable by
construction — each record embeds its own configuration fields — which
is precisely the reproducibility property whose violation the paper
reported (and fixed) in the original CleanML codebase.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass(frozen=True)
class RunRecord:
    """One evaluated model pair (dirty vs repaired) for one run.

    Attributes:
        dataset: Dataset name.
        error_type: ``missing_values`` / ``outliers`` / ``mislabels``.
        detection: Detection-strategy name.
        repair: Repair-method name.
        model: Model name.
        repetition: Split index.
        tuning_seed: Hyperparameter-search seed index.
        metrics: Flat mapping of metric keys to values. Contains
            ``dirty_test_acc``, ``{repair}_test_acc``, the matching
            ``*_test_f1`` entries, ``best_params`` entries and the
            group-wise confusion counts in CleanML key style for both
            the dirty baseline (prefixed ``dirty``) and the repair.
    """

    dataset: str
    error_type: str
    detection: str
    repair: str
    model: str
    repetition: int
    tuning_seed: int
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Deterministic store key for this record."""
        return (
            f"{self.dataset}/{self.error_type}/{self.detection}/{self.repair}"
            f"/{self.model}/rep{self.repetition}/seed{self.tuning_seed}"
        )

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "dataset": self.dataset,
            "error_type": self.error_type,
            "detection": self.detection,
            "repair": self.repair,
            "model": self.model,
            "repetition": self.repetition,
            "tuning_seed": self.tuning_seed,
            "metrics": self.metrics,
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return RunRecord(
            dataset=payload["dataset"],
            error_type=payload["error_type"],
            detection=payload["detection"],
            repair=payload["repair"],
            model=payload["model"],
            repetition=payload["repetition"],
            tuning_seed=payload["tuning_seed"],
            metrics=dict(payload["metrics"]),
        )


class ResultStore:
    """In-memory result store with optional JSON persistence."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._records: dict[str, RunRecord] = {}
        if self._path is not None and self._path.exists():
            self._load()

    def _load(self) -> None:
        assert self._path is not None
        with self._path.open("r") as handle:
            payload = json.load(handle)
        for record_payload in payload["records"]:
            record = RunRecord.from_json(record_payload)
            self._records[record.key] = record

    def save(self) -> None:
        """Persist all records to the store's JSON path."""
        if self._path is None:
            raise RuntimeError("this ResultStore has no backing path")
        payload = {
            "records": [
                record.to_json()
                for __, record in sorted(self._records.items())
            ]
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self._path.with_suffix(".tmp")
        with tmp_path.open("w") as handle:
            json.dump(payload, handle, indent=1)
        tmp_path.replace(self._path)

    def add(self, record: RunRecord) -> None:
        """Insert a record; duplicate keys are rejected."""
        if record.key in self._records:
            raise ValueError(f"duplicate record key {record.key!r}")
        self._records[record.key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> RunRecord:
        """Fetch a record by key."""
        try:
            return self._records[key]
        except KeyError:
            raise KeyError(f"no record {key!r}") from None

    def records(self, **filters: Any) -> Iterator[RunRecord]:
        """Iterate records matching the given field filters.

        Example: ``store.records(dataset="german", error_type="outliers")``.
        """
        valid = {
            "dataset",
            "error_type",
            "detection",
            "repair",
            "model",
            "repetition",
            "tuning_seed",
        }
        unknown = set(filters) - valid
        if unknown:
            raise ValueError(f"unknown filters: {sorted(unknown)}")
        for __, record in sorted(self._records.items()):
            if all(getattr(record, name) == value for name, value in filters.items()):
                yield record

    def distinct(self, fieldname: str) -> list[Any]:
        """Sorted distinct values of a record field."""
        return sorted({getattr(record, fieldname) for record in self._records.values()})
