"""The resumable result store.

Every run (one trained-and-evaluated model pair) is stored as a flat
JSON-serialisable record under a deterministic key::

    {dataset}/{error_type}/{repair}/{model}/rep{repetition}/seed{seed}

The store can persist to a JSON file and *resume*: re-running a study
skips every key already present. The key→value mapping is stable by
construction — each record embeds its own configuration fields — which
is precisely the reproducibility property whose violation the paper
reported (and fixed) in the original CleanML codebase.

Incremental persistence uses an append-only JSONL journal: writers
(e.g. parallel study workers) append one record per line to shard
files named ``{stem}.jsonl`` or ``{stem}.{shard}.jsonl`` next to the
store's ``{stem}.json``. Loading a store replays any journal shards on
top of the compacted JSON, so a killed run resumes mid-shard without
losing completed records; :meth:`ResultStore.save` compacts everything
back into the single JSON file and removes the shards.

Every persisted payload — journal lines and compacted records alike —
carries a ``checksum`` field (CRC-32 of the canonical record JSON), so
torn writes and bit rot are detectable: replay skips lines whose
checksum does not match, and :meth:`ResultStore.verify` audits the
whole on-disk state (duplicate keys, conflicting payloads, orphan
shards, checksum mismatches, poisoned units) after a run.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass(frozen=True)
class RunRecord:
    """One evaluated model pair (dirty vs repaired) for one run.

    Attributes:
        dataset: Dataset name.
        error_type: ``missing_values`` / ``outliers`` / ``mislabels``.
        detection: Detection-strategy name.
        repair: Repair-method name.
        model: Model name.
        repetition: Split index.
        tuning_seed: Hyperparameter-search seed index.
        metrics: Flat mapping of metric keys to values. Contains
            ``dirty_test_acc``, ``{repair}_test_acc``, the matching
            ``*_test_f1`` entries, ``best_params`` entries and the
            group-wise confusion counts in CleanML key style for both
            the dirty baseline (prefixed ``dirty``) and the repair.
    """

    dataset: str
    error_type: str
    detection: str
    repair: str
    model: str
    repetition: int
    tuning_seed: int
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Deterministic store key for this record."""
        return (
            f"{self.dataset}/{self.error_type}/{self.detection}/{self.repair}"
            f"/{self.model}/rep{self.repetition}/seed{self.tuning_seed}"
        )

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "dataset": self.dataset,
            "error_type": self.error_type,
            "detection": self.detection,
            "repair": self.repair,
            "model": self.model,
            "repetition": self.repetition,
            "tuning_seed": self.tuning_seed,
            "metrics": self.metrics,
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return RunRecord(
            dataset=payload["dataset"],
            error_type=payload["error_type"],
            detection=payload["detection"],
            repair=payload["repair"],
            model=payload["model"],
            repetition=payload["repetition"],
            tuning_seed=payload["tuning_seed"],
            metrics=dict(payload["metrics"]),
        )


def record_checksum(payload: dict[str, Any]) -> str:
    """CRC-32 (8 hex digits) of the canonical JSON of a record payload.

    The ``checksum`` field itself is excluded, so the value is stable
    whether or not the payload already carries one.
    """
    body = {name: value for name, value in payload.items() if name != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(canonical.encode('utf-8')):08x}"


class JournalWriter:
    """Append-only JSONL writer for incremental record persistence.

    Each :meth:`write` appends one ``RunRecord.to_json()`` line
    (augmented with its ``checksum``) and flushes, so every completed
    record survives a crash of the writing process; with
    ``fsync=True`` every line is also fsynced to disk before
    :meth:`write` returns, surviving power loss as well. Usable as a
    context manager; the handle is closed (and therefore flushed) even
    when an exception is propagating out of the ``with`` block.

    When appending to a shard whose last write was torn (no trailing
    newline — the writer died mid-line), a newline is inserted first so
    the partial line stays isolated and replay skips exactly it.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self._path = Path(path)
        self._fsync = fsync
        self._handle = None

    @property
    def path(self) -> Path:
        """The shard file this writer appends to."""
        return self._path

    @property
    def closed(self) -> bool:
        """Whether the underlying handle is closed (or never opened)."""
        return self._handle is None

    def _open(self):
        self._path.parent.mkdir(parents=True, exist_ok=True)
        needs_newline = False
        if self._path.exists() and self._path.stat().st_size > 0:
            with self._path.open("rb") as existing:
                existing.seek(-1, os.SEEK_END)
                needs_newline = existing.read(1) != b"\n"
        handle = self._path.open("a")
        if needs_newline:
            handle.write("\n")
        return handle

    def write(self, record: RunRecord) -> None:
        """Append one checksummed record as a JSON line and flush."""
        if self._handle is None:
            self._handle = self._open()
        payload = record.to_json()
        payload["checksum"] = record_checksum(payload)
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the underlying file handle (if ever opened)."""
        if self._handle is not None:
            try:
                self._handle.flush()
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # close unconditionally: a propagating exception must not leave
        # journaled records sitting in userspace buffers
        self.close()


class ResultStore:
    """In-memory result store with optional JSON persistence."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._records: dict[str, RunRecord] = {}
        self._sorted: list[tuple[str, RunRecord]] | None = None
        if self._path is not None:
            if self._path.exists():
                self._load()
            self._replay_journal()

    @property
    def path(self) -> Path | None:
        """The backing JSON path (None for in-memory stores)."""
        return self._path

    def _load(self) -> None:
        assert self._path is not None
        with self._path.open("r") as handle:
            payload = json.load(handle)
        for record_payload in payload["records"]:
            record = RunRecord.from_json(record_payload)
            self._records[record.key] = record

    # -- JSONL journal ---------------------------------------------------

    def journal_paths(self) -> list[Path]:
        """Existing journal shard files for this store, sorted by name.

        The ``{stem}.failures.jsonl`` sidecar (poisoned work units, see
        :mod:`repro.benchmark.parallel`) and the ``{stem}.trace*.jsonl``
        observability shards (see :mod:`repro.obs`) are not record
        journals and are excluded.
        """
        if self._path is None:
            return []
        stem = self._path.stem
        parent = self._path.parent
        failures = self.failures_path
        trace_prefix = f"{stem}.trace."
        paths = sorted(
            path
            for path in parent.glob(f"{stem}.*.jsonl")
            if path != failures and not path.name.startswith(trace_prefix)
        )
        default = parent / f"{stem}.jsonl"
        if default.exists():
            paths.insert(0, default)
        return paths

    @property
    def failures_path(self) -> Path | None:
        """Sidecar recording poisoned work units (None for in-memory)."""
        if self._path is None:
            return None
        return self._path.parent / f"{self._path.stem}.failures.jsonl"

    # -- observability sidecars ------------------------------------------

    @property
    def trace_path(self) -> Path | None:
        """The compacted trace sidecar ``{stem}.trace.jsonl``."""
        if self._path is None:
            return None
        return self._path.parent / f"{self._path.stem}.trace.jsonl"

    def trace_paths(self) -> list[Path]:
        """All existing trace files: the compacted sidecar first, then
        per-worker shards (``{stem}.trace.w{pid}.jsonl``) sorted by
        name."""
        if self._path is None:
            return []
        main = self.trace_path
        assert main is not None
        paths = [main] if main.exists() else []
        paths.extend(
            sorted(
                path
                for path in self._path.parent.glob(
                    f"{self._path.stem}.trace.*.jsonl"
                )
            )
        )
        return paths

    def compact_trace(self) -> int:
        """Fold worker trace shards into the single ``trace.jsonl``.

        Mirrors the record-journal compaction in :meth:`save`: span and
        point events are concatenated in shard order, ``metric`` events
        are merged deterministically (counters and histogram buckets
        sum — histogram boundaries are fixed, see
        :mod:`repro.obs.metrics`) and appended last, the result is
        written atomically, and the worker shards are removed. Returns
        the number of events in the compacted file (0 when there is
        nothing to compact). A no-op when no worker shards exist, so
        repeated saves leave a compacted trace untouched.
        """
        if self._path is None:
            return 0
        main = self.trace_path
        assert main is not None
        shards = [path for path in self.trace_paths() if path != main]
        if not shards:
            return 0
        from repro.obs import merge_metric_events, read_trace_events

        events = read_trace_events(([main] if main.exists() else []) + shards)
        metric_events = [
            event for event in events if event.get("kind") == "metric"
        ]
        lines = [
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in events
            if event.get("kind") != "metric"
        ]
        for merged in merge_metric_events(metric_events):
            lines.append(
                json.dumps(
                    {"v": 1, "kind": "metric", **merged},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        tmp_path = main.with_name(main.name + ".tmp")
        try:
            with tmp_path.open("w") as handle:
                if lines:
                    handle.write("\n".join(lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            tmp_path.replace(main)
        except BaseException:
            tmp_path.unlink(missing_ok=True)
            raise
        for shard in shards:
            shard.unlink()
        return len(lines)

    def health(self):
        """Run-health summary from the trace + failures sidecars.

        Returns a :class:`repro.obs.RunHealth` folding every trace
        event (compacted and still-sharded alike) together with the
        poisoned-unit sidecar. An untraced store yields an empty —
        but well-formed — summary.
        """
        from repro.obs import load_health

        return load_health(self.trace_paths(), self.failures_path)

    def journal_writer(self, shard: str | None = None) -> JournalWriter:
        """An append-only writer for this store's journal.

        ``shard`` distinguishes concurrent writers (e.g. one per worker
        process); the default shard is ``{stem}.jsonl``.
        """
        if self._path is None:
            raise RuntimeError("this ResultStore has no backing path")
        name = (
            f"{self._path.stem}.jsonl"
            if shard is None
            else f"{self._path.stem}.{shard}.jsonl"
        )
        return JournalWriter(self._path.parent / name)

    def replay_journal(self) -> int:
        """Replay journal shards on top of the current records.

        Records whose key is already present are skipped (they were
        compacted before the shard was removed, or merged in-memory);
        undecodable lines — typically a partial trailing line from a
        killed writer — and lines whose ``checksum`` does not match
        their content are ignored. Returns the number of records
        recovered. Safe to call repeatedly: parallel executors call it
        after a worker failure to recover every record the dead worker
        journaled before crashing.
        """
        recovered = 0
        for shard in self.journal_paths():
            with shard.open("r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                        record = RunRecord.from_json(payload)
                    except (ValueError, KeyError, TypeError):
                        continue
                    checksum = payload.get("checksum")
                    if checksum is not None and checksum != record_checksum(payload):
                        continue
                    if record.key not in self._records:
                        self._records[record.key] = record
                        recovered += 1
        if recovered:
            self._sorted = None
        return recovered

    # backwards-compatible alias (pre-hardening private name)
    _replay_journal = replay_journal

    def save(self) -> None:
        """Persist all records to the store's JSON path.

        Compacts the store: journal shards are replayed one final time
        (so records journaled by workers but never merged in-memory —
        e.g. from a crashed-and-poisoned unit — cannot be lost), the
        full payload is written to a temporary file, flushed and
        fsynced, and atomically renamed over ``{stem}.json``; only then
        are the shards removed. A crash at any point mid-compaction
        therefore leaves either the old or the new file intact, never a
        partial one, and never drops a journaled record.
        """
        if self._path is None:
            raise RuntimeError("this ResultStore has no backing path")
        self.replay_journal()
        payload = {
            "records": [
                {**body, "checksum": record_checksum(body)}
                for body in (
                    record.to_json() for __, record in self._sorted_items()
                )
            ]
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self._path.with_name(self._path.name + ".tmp")
        try:
            with tmp_path.open("w") as handle:
                json.dump(payload, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            tmp_path.replace(self._path)
        except BaseException:
            tmp_path.unlink(missing_ok=True)
            raise
        for shard in self.journal_paths():
            shard.unlink()
        self.compact_trace()

    def verify(self) -> list[str]:
        """Audit the on-disk state; returns human-readable violations.

        Checks, across the compacted JSON and every journal shard:

        - duplicate keys inside the compacted file,
        - the same key persisted with *conflicting* payloads anywhere
          (identical re-journaled copies from a retried worker are
          benign and not flagged),
        - per-record checksum mismatches,
        - undecodable journal lines other than a torn trailing line,
        - orphan shards — shards fully contained in the compacted JSON,
          i.e. a compaction that crashed between rename and cleanup,
        - a non-empty ``{stem}.failures.jsonl`` sidecar (poisoned work
          units mean the study is incomplete).

        An empty list means the persisted study is internally
        consistent. In-memory stores trivially verify clean.
        """
        issues: list[str] = []
        if self._path is None:
            return issues
        canonical: dict[str, str] = {}

        def canonical_body(payload: dict[str, Any]) -> str:
            body = {k: v for k, v in payload.items() if k != "checksum"}
            return json.dumps(body, sort_keys=True, separators=(",", ":"))

        def check_payload(payload: dict[str, Any], where: str) -> None:
            checksum = payload.get("checksum")
            if checksum is not None and checksum != record_checksum(payload):
                issues.append(f"{where}: checksum mismatch")
                return
            try:
                key = RunRecord.from_json(payload).key
            except (KeyError, TypeError, ValueError):
                issues.append(f"{where}: not a record payload")
                return
            body = canonical_body(payload)
            if key in canonical and canonical[key] != body:
                issues.append(f"{where}: conflicting payloads for key {key!r}")
            canonical.setdefault(key, body)

        if self._path.exists():
            try:
                with self._path.open("r") as handle:
                    compacted = json.load(handle)
                records = compacted["records"]
            except (ValueError, KeyError, TypeError):
                issues.append(f"{self._path.name}: unreadable store file")
                records = []
            seen: set[str] = set()
            for index, payload in enumerate(records):
                where = f"{self._path.name}: record {index}"
                check_payload(payload, where)
                try:
                    key = RunRecord.from_json(payload).key
                except (KeyError, TypeError, ValueError):
                    continue
                if key in seen:
                    issues.append(f"{where}: duplicate key {key!r}")
                seen.add(key)
        else:
            seen = set()
        for shard in self.journal_paths():
            lines = shard.read_text().splitlines()
            shard_keys: list[str] = []
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                where = f"{shard.name}: line {index + 1}"
                try:
                    payload = json.loads(line)
                except ValueError:
                    if index == len(lines) - 1:
                        continue  # torn trailing write, skipped at replay
                    issues.append(f"{where}: undecodable journal line")
                    continue
                check_payload(payload, where)
                try:
                    shard_keys.append(RunRecord.from_json(payload).key)
                except (KeyError, TypeError, ValueError):
                    continue
            if shard_keys and seen and all(key in seen for key in shard_keys):
                issues.append(
                    f"{shard.name}: orphan shard (all {len(shard_keys)} "
                    "records already compacted)"
                )
        failures = self.failures_path
        if failures is not None and failures.exists():
            poisoned = [
                line for line in failures.read_text().splitlines() if line.strip()
            ]
            if poisoned:
                issues.append(
                    f"{failures.name}: {len(poisoned)} poisoned work unit(s) "
                    "recorded — study incomplete"
                )
        return issues

    # -- record access ---------------------------------------------------

    def _sorted_items(self) -> list[tuple[str, RunRecord]]:
        """Key-sorted records, cached until the next :meth:`add`."""
        if self._sorted is None:
            self._sorted = sorted(self._records.items())
        return self._sorted

    def add(self, record: RunRecord) -> None:
        """Insert a record; duplicate keys are rejected."""
        if record.key in self._records:
            raise ValueError(f"duplicate record key {record.key!r}")
        self._records[record.key] = record
        self._sorted = None

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> RunRecord:
        """Fetch a record by key."""
        try:
            return self._records[key]
        except KeyError:
            raise KeyError(f"no record {key!r}") from None

    def records(self, **filters: Any) -> Iterator[RunRecord]:
        """Iterate records matching the given field filters.

        Example: ``store.records(dataset="german", error_type="outliers")``.
        """
        valid = {
            "dataset",
            "error_type",
            "detection",
            "repair",
            "model",
            "repetition",
            "tuning_seed",
        }
        unknown = set(filters) - valid
        if unknown:
            raise ValueError(f"unknown filters: {sorted(unknown)}")
        for __, record in self._sorted_items():
            if all(getattr(record, name) == value for name, value in filters.items()):
                yield record

    def distinct(self, fieldname: str) -> list[Any]:
        """Sorted distinct values of a record field."""
        return sorted({getattr(record, fieldname) for record in self._records.values()})
