"""The resumable, streaming, sharded result store.

Every run (one trained-and-evaluated model pair) is stored as a flat
JSON-serialisable record under a deterministic key::

    {dataset}/{error_type}/{repair}/{model}/rep{repetition}/seed{seed}

The store can persist to disk and *resume*: re-running a study skips
every key already present. The key→value mapping is stable by
construction — each record embeds its own configuration fields — which
is precisely the reproducibility property whose violation the paper
reported (and fixed) in the original CleanML codebase.

Persistence is **sharded and streaming** (format ``sharded-v1``):

- ``{stem}.json`` is a small *manifest* listing one shard per
  ``(dataset, error_type)`` group: its file name, record count, key
  list and content checksum. Loading a store reads only the manifest,
  so opening a million-record study costs the key index, not the
  records.
- ``{stem}.store/{dataset}__{error_type}.{crc}.jsonl.gz`` holds the
  group's records as gzip-compressed, key-sorted, checksummed JSON
  lines. Shard files are content-addressed (the CRC-32 of the
  uncompressed body is embedded in the name) and therefore immutable:
  :meth:`ResultStore.save` writes *new* shard files for dirty groups,
  atomically swaps the manifest, and only then garbage-collects
  unreferenced shard files — a crash at any point leaves the previous
  manifest and every shard it references intact. Compression uses a
  fixed level and a zeroed gzip mtime, so identical records always
  produce bit-identical shards (the parallel==serial==threaded
  byte-identity guarantee extends to the on-disk store).
- :meth:`ResultStore.iter_records` streams records in global key order
  holding at most one shard in memory; :meth:`records`,
  :meth:`distinct` and :meth:`verify` are built on the same lazy
  access, so reporting over a huge study never materialises it.

Legacy seed-era stores — a single monolithic ``{stem}.json`` with a
``records`` array — still load transparently (eagerly, as before); the
next :meth:`save` migrates them to the sharded layout, and
``python -m repro store-migrate`` does the same from the command line.

Incremental persistence uses an append-only JSONL journal: writers
(e.g. parallel study workers) append one record per line to shard
files named ``{stem}.jsonl`` or ``{stem}.{shard}.jsonl`` next to the
manifest. Loading a store replays any journal shards on top of the
compacted state, so a killed run resumes mid-shard without losing
completed records; :meth:`ResultStore.save` compacts everything into
the sharded store and removes the journals.

Every persisted payload — journal lines and shard lines alike —
carries a ``checksum`` field (CRC-32 of the canonical record JSON), so
torn writes and bit rot are detectable: replay skips lines whose
checksum does not match, and :meth:`ResultStore.verify` audits the
whole on-disk state (duplicate keys, conflicting payloads, orphan
shards, checksum mismatches, poisoned units) one shard at a time.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Manifest format tag of the sharded store layout.
STORE_FORMAT = "sharded-v1"


@dataclass(frozen=True)
class RunRecord:
    """One evaluated model pair (dirty vs repaired) for one run.

    Attributes:
        dataset: Dataset name.
        error_type: ``missing_values`` / ``outliers`` / ``mislabels``.
        detection: Detection-strategy name.
        repair: Repair-method name.
        model: Model name.
        repetition: Split index.
        tuning_seed: Hyperparameter-search seed index.
        metrics: Flat mapping of metric keys to values. Contains
            ``dirty_test_acc``, ``{repair}_test_acc``, the matching
            ``*_test_f1`` entries, ``best_params`` entries and the
            group-wise confusion counts in CleanML key style for both
            the dirty baseline (prefixed ``dirty``) and the repair.
    """

    dataset: str
    error_type: str
    detection: str
    repair: str
    model: str
    repetition: int
    tuning_seed: int
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Deterministic store key for this record."""
        return (
            f"{self.dataset}/{self.error_type}/{self.detection}/{self.repair}"
            f"/{self.model}/rep{self.repetition}/seed{self.tuning_seed}"
        )

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "dataset": self.dataset,
            "error_type": self.error_type,
            "detection": self.detection,
            "repair": self.repair,
            "model": self.model,
            "repetition": self.repetition,
            "tuning_seed": self.tuning_seed,
            "metrics": self.metrics,
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return RunRecord(
            dataset=payload["dataset"],
            error_type=payload["error_type"],
            detection=payload["detection"],
            repair=payload["repair"],
            model=payload["model"],
            repetition=payload["repetition"],
            tuning_seed=payload["tuning_seed"],
            metrics=dict(payload["metrics"]),
        )


def record_checksum(payload: dict[str, Any]) -> str:
    """CRC-32 (8 hex digits) of the canonical JSON of a record payload.

    The ``checksum`` field itself is excluded, so the value is stable
    whether or not the payload already carries one.
    """
    body = {name: value for name, value in payload.items() if name != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(canonical.encode('utf-8')):08x}"


def shard_group_of_key(key: str) -> tuple[str, str]:
    """The ``(dataset, error_type)`` shard group a record key belongs to.

    Derivable from the key alone because dataset and error-type names
    never contain ``/`` — the property that lets membership checks and
    single-record reads find the right shard without opening any.
    """
    dataset, error_type, _rest = key.split("/", 2)
    return dataset, error_type


def open_shard(path: Path):
    """Open a compressed shard file for streaming text-line reads.

    A module-level seam so tests can spy on shard opens (asserting
    that streaming readers never hold more than one shard at a time).
    """
    return gzip.open(path, "rt", encoding="utf-8")


def write_legacy_store(path: str | Path, records: list[RunRecord]) -> None:
    """Write a seed-era monolithic ``{stem}.json`` store.

    Only used by migration tests and tooling: production saves always
    write the sharded layout. The payload matches the pre-``sharded-v1``
    format byte for byte (checksummed records under a ``records`` key).
    """
    path = Path(path)
    payload = {
        "records": [
            {**body, "checksum": record_checksum(body)}
            for body in (
                record.to_json()
                for record in sorted(records, key=lambda r: r.key)
            )
        ]
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(payload, handle, indent=1)


@dataclass(frozen=True)
class ShardInfo:
    """One manifest entry: a ``(dataset, error_type)`` group's shard.

    Attributes:
        dataset: Group dataset name.
        error_type: Group error type.
        file: Shard file name inside the store directory. Deliberately
            not a path: embedding the (stem-derived) directory name
            would make two otherwise-identical stores' manifests
            differ, breaking the byte-identity guarantee.
        crc: CRC-32 (8 hex digits) of the uncompressed shard body —
            also embedded in ``file``, making shards content-addressed.
        keys: Sorted record keys stored in the shard. The manifest is
            therefore a complete key index: membership and planning
            never open a shard.
    """

    dataset: str
    error_type: str
    file: str
    crc: str
    keys: tuple[str, ...]

    @property
    def group(self) -> tuple[str, str]:
        """The ``(dataset, error_type)`` group id."""
        return (self.dataset, self.error_type)

    def to_json(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "error_type": self.error_type,
            "file": self.file,
            "crc": self.crc,
            "records": len(self.keys),
            "keys": list(self.keys),
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "ShardInfo":
        return ShardInfo(
            dataset=payload["dataset"],
            error_type=payload["error_type"],
            file=payload["file"],
            crc=payload["crc"],
            keys=tuple(payload["keys"]),
        )


class JournalWriter:
    """Append-only JSONL writer for incremental record persistence.

    Each :meth:`write` appends one ``RunRecord.to_json()`` line
    (augmented with its ``checksum``) and flushes, so every completed
    record survives a crash of the writing process; with
    ``fsync=True`` every line is also fsynced to disk before
    :meth:`write` returns, surviving power loss as well. Usable as a
    context manager; the handle is closed (and therefore flushed) even
    when an exception is propagating out of the ``with`` block.

    When appending to a shard whose last write was torn (no trailing
    newline — the writer died mid-line), a newline is inserted first so
    the partial line stays isolated and replay skips exactly it.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self._path = Path(path)
        self._fsync = fsync
        self._handle = None

    @property
    def path(self) -> Path:
        """The shard file this writer appends to."""
        return self._path

    @property
    def closed(self) -> bool:
        """Whether the underlying handle is closed (or never opened)."""
        return self._handle is None

    def _open(self):
        self._path.parent.mkdir(parents=True, exist_ok=True)
        needs_newline = False
        if self._path.exists() and self._path.stat().st_size > 0:
            with self._path.open("rb") as existing:
                existing.seek(-1, os.SEEK_END)
                needs_newline = existing.read(1) != b"\n"
        handle = self._path.open("a")
        if needs_newline:
            handle.write("\n")
        return handle

    def write(self, record: RunRecord) -> None:
        """Append one checksummed record as a JSON line and flush."""
        if self._handle is None:
            self._handle = self._open()
        payload = record.to_json()
        payload["checksum"] = record_checksum(payload)
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the underlying file handle (if ever opened)."""
        if self._handle is not None:
            try:
                self._handle.flush()
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # close unconditionally: a propagating exception must not leave
        # journaled records sitting in userspace buffers
        self.close()


class ResultStore:
    """Result store with lazy sharded persistence.

    In-memory stores (no path) hold everything in a dict as before.
    Disk-backed stores keep only *pending* records (added this session
    or replayed from journals) plus the manifest's key index in
    memory; shard payloads load lazily, at most one at a time.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        #: Records not yet compacted into a shard (in-memory adds,
        #: journal replays, and — for legacy stores — every record).
        self._pending: dict[str, RunRecord] = {}
        #: Manifest entries by (dataset, error_type) group.
        self._shards: dict[tuple[str, str], ShardInfo] = {}
        #: Union of all shard key lists (fast membership).
        self._shard_keys: set[str] = set()
        #: Single-entry shard cache: (group, {key: record}).
        self._cached_shard: tuple[tuple[str, str], dict[str, RunRecord]] | None = None
        #: True when loaded from a seed-era monolithic JSON file.
        self._legacy = False
        if self._path is not None:
            if self._path.exists():
                self._load()
            self._replay_journal()

    @property
    def path(self) -> Path | None:
        """The backing manifest path (None for in-memory stores)."""
        return self._path

    @property
    def store_dir(self) -> Path | None:
        """Directory holding the compressed record shards."""
        if self._path is None:
            return None
        return self._path.parent / f"{self._path.stem}.store"

    @property
    def is_legacy(self) -> bool:
        """True when the on-disk state is a monolithic seed-era file.

        The next :meth:`save` migrates it to the sharded layout.
        """
        return self._legacy

    def _load(self) -> None:
        assert self._path is not None
        with self._path.open("r") as handle:
            payload = json.load(handle)
        if isinstance(payload, dict) and payload.get("format") == STORE_FORMAT:
            for entry in payload["shards"]:
                info = ShardInfo.from_json(entry)
                self._shards[info.group] = info
                self._shard_keys.update(info.keys)
            return
        if isinstance(payload, dict) and "records" in payload:
            # legacy monolithic store: load eagerly (as the seed did);
            # every record is pending until a save migrates the layout
            self._legacy = True
            for record_payload in payload["records"]:
                record = RunRecord.from_json(record_payload)
                self._pending[record.key] = record
            return
        raise ValueError(
            f"{self._path}: neither a {STORE_FORMAT} manifest nor a "
            "legacy record store"
        )

    # -- shard access ----------------------------------------------------

    def _shard_path(self, info: ShardInfo) -> Path:
        directory = self.store_dir
        assert directory is not None
        return directory / info.file

    def _shard_records(self, group: tuple[str, str]) -> dict[str, RunRecord]:
        """Records of one shard, via a single-entry cache."""
        if self._cached_shard is not None and self._cached_shard[0] == group:
            return self._cached_shard[1]
        info = self._shards.get(group)
        if info is None:
            return {}
        records: dict[str, RunRecord] = {}
        with open_shard(self._shard_path(info)) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = RunRecord.from_json(json.loads(line))
                records[record.key] = record
        self._cached_shard = (group, records)
        return records

    def _pending_by_group(self) -> dict[tuple[str, str], dict[str, RunRecord]]:
        groups: dict[tuple[str, str], dict[str, RunRecord]] = {}
        for key, record in self._pending.items():
            groups.setdefault(shard_group_of_key(key), {})[key] = record
        return groups

    def _iter_group_records(
        self,
        group: tuple[str, str],
        pending: dict[str, RunRecord] | None = None,
    ) -> Iterator[RunRecord]:
        """One group's records in key order (shard merged with pending)."""
        merged = dict(self._shard_records(group))
        if pending:
            merged.update(pending)
        for key in sorted(merged):
            yield merged[key]

    def _groups(self) -> list[tuple[str, str]]:
        """All (dataset, error_type) groups with any records, sorted.

        Sorted group order concatenated with in-group key order equals
        global key order, because a key starts with its group fields.
        """
        groups = set(self._shards)
        groups.update(shard_group_of_key(key) for key in self._pending)
        return sorted(groups)

    # -- JSONL journal ---------------------------------------------------

    def journal_paths(self) -> list[Path]:
        """Existing journal shard files for this store, sorted by name.

        The ``{stem}.failures.jsonl`` sidecar (poisoned work units, see
        :mod:`repro.benchmark.parallel`), the ``{stem}.trace*.jsonl``
        observability shards (see :mod:`repro.obs`) and the
        ``{stem}.ledger.jsonl`` run ledger (:mod:`repro.obs.ledger`)
        are not record journals and are excluded.
        """
        if self._path is None:
            return []
        stem = self._path.stem
        parent = self._path.parent
        failures = self.failures_path
        trace_prefix = f"{stem}.trace."
        ledger = f"{stem}.ledger.jsonl"
        paths = sorted(
            path
            for path in parent.glob(f"{stem}.*.jsonl")
            if path != failures
            and not path.name.startswith(trace_prefix)
            and path.name != ledger
        )
        default = parent / f"{stem}.jsonl"
        if default.exists():
            paths.insert(0, default)
        return paths

    @property
    def failures_path(self) -> Path | None:
        """Sidecar recording poisoned work units (None for in-memory)."""
        if self._path is None:
            return None
        return self._path.parent / f"{self._path.stem}.failures.jsonl"

    # -- observability sidecars ------------------------------------------

    @property
    def ledger_path(self) -> Path | None:
        """The append-only run ledger ``{stem}.ledger.jsonl``."""
        if self._path is None:
            return None
        return self._path.parent / f"{self._path.stem}.ledger.jsonl"

    @property
    def trace_path(self) -> Path | None:
        """The compacted trace sidecar ``{stem}.trace.jsonl``."""
        if self._path is None:
            return None
        return self._path.parent / f"{self._path.stem}.trace.jsonl"

    def trace_paths(self) -> list[Path]:
        """All existing trace files: the compacted sidecar first, then
        per-worker shards (``{stem}.trace.w{pid}.jsonl``) sorted by
        name."""
        if self._path is None:
            return []
        main = self.trace_path
        assert main is not None
        paths = [main] if main.exists() else []
        paths.extend(
            sorted(
                path
                for path in self._path.parent.glob(
                    f"{self._path.stem}.trace.*.jsonl"
                )
            )
        )
        return paths

    def compact_trace(self) -> int:
        """Fold worker trace shards into the single ``trace.jsonl``.

        Mirrors the record-journal compaction in :meth:`save`: the
        parent's own span and point events keep their emission order,
        shard-origin events are appended after them in **sorted line
        order**, and ``metric`` events are merged deterministically
        (counters and histogram buckets sum, gauges take the maximum —
        see :mod:`repro.obs.metrics`) and appended last; the result is
        written atomically and the worker shards are removed. Sorting
        the shard lines — rather than concatenating in shard-file
        order — makes the output byte-identical under any permutation
        of shard file names, which matters for the thread backend
        whose ``w{pid}.t{tid}`` shard names vary run to run. Returns
        the number of events in the compacted file (0 when there is
        nothing to compact). A no-op when no worker shards exist, so
        repeated saves leave a compacted trace untouched.
        """
        if self._path is None:
            return 0
        main = self.trace_path
        assert main is not None
        shards = [path for path in self.trace_paths() if path != main]
        if not shards:
            return 0
        from repro.obs import merge_metric_events, read_trace_events

        main_events = read_trace_events([main] if main.exists() else [])
        shard_events = read_trace_events(shards)
        metric_events = [
            event
            for event in main_events + shard_events
            if event.get("kind") == "metric"
        ]
        lines = [
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in main_events
            if event.get("kind") != "metric"
        ]
        lines.extend(
            sorted(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                for event in shard_events
                if event.get("kind") != "metric"
            )
        )
        for merged in merge_metric_events(metric_events):
            lines.append(
                json.dumps(
                    {"v": 1, "kind": "metric", **merged},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        tmp_path = main.with_name(main.name + ".tmp")
        try:
            with tmp_path.open("w") as handle:
                if lines:
                    handle.write("\n".join(lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            tmp_path.replace(main)
        except BaseException:
            tmp_path.unlink(missing_ok=True)
            raise
        for shard in shards:
            shard.unlink()
        return len(lines)

    def health(self):
        """Run-health summary from the trace + failures sidecars.

        Returns a :class:`repro.obs.RunHealth` folding every trace
        event (compacted and still-sharded alike) together with the
        poisoned-unit sidecar. A store produced without tracing (e.g.
        ``--no-trace``) yields an empty but well-formed summary whose
        ``untraced`` flag is set, so callers can distinguish "nothing
        happened" from "nothing was recorded".
        """
        from repro.obs import load_health

        trace_paths = self.trace_paths()
        health = load_health(trace_paths, self.failures_path)
        health.untraced = not trace_paths
        return health

    def fairness_audit(self):
        """This store's :class:`repro.obs.FairnessAudit` summary.

        Works on traced and untraced stores alike — the audit reads
        the stored confusion counts, not the trace.
        """
        from repro.obs import build_audit

        return build_audit(self)

    def journal_writer(self, shard: str | None = None) -> JournalWriter:
        """An append-only writer for this store's journal.

        ``shard`` distinguishes concurrent writers (e.g. one per worker
        process); the default shard is ``{stem}.jsonl``.
        """
        if self._path is None:
            raise RuntimeError("this ResultStore has no backing path")
        name = (
            f"{self._path.stem}.jsonl"
            if shard is None
            else f"{self._path.stem}.{shard}.jsonl"
        )
        return JournalWriter(self._path.parent / name)

    def replay_journal(self) -> int:
        """Replay journal shards on top of the current records.

        Records whose key is already present are skipped (they were
        compacted before the shard was removed, or merged in-memory);
        undecodable lines — typically a partial trailing line from a
        killed writer — and lines whose ``checksum`` does not match
        their content are ignored. Returns the number of records
        recovered. Safe to call repeatedly: parallel executors call it
        after a worker failure to recover every record the dead worker
        journaled before crashing.
        """
        recovered = 0
        for shard in self.journal_paths():
            with shard.open("r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                        record = RunRecord.from_json(payload)
                    except (ValueError, KeyError, TypeError):
                        continue
                    checksum = payload.get("checksum")
                    if checksum is not None and checksum != record_checksum(payload):
                        continue
                    if record.key not in self:
                        self._pending[record.key] = record
                        recovered += 1
        return recovered

    # backwards-compatible alias (pre-hardening private name)
    _replay_journal = replay_journal

    # -- compaction ------------------------------------------------------

    def _shard_body(self, records: dict[str, RunRecord]) -> bytes:
        """Canonical uncompressed shard body for a group's records."""
        lines = []
        for key in sorted(records):
            payload = records[key].to_json()
            payload["checksum"] = record_checksum(payload)
            lines.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""

    def _write_shard(
        self, group: tuple[str, str], records: dict[str, RunRecord]
    ) -> tuple[ShardInfo, Path]:
        """Write one content-addressed shard file atomically.

        The file name embeds the body CRC, so a shard is never
        overwritten in place: an identical body maps to the identical
        file (rewriting it is a no-op), a different body maps to a new
        file, and the old one stays valid until the manifest stops
        referencing it.
        """
        assert self._path is not None and self.store_dir is not None
        body = self._shard_body(records)
        crc = f"{zlib.crc32(body):08x}"
        dataset, error_type = group
        name = f"{dataset}__{error_type}.{crc}.jsonl.gz"
        path = self.store_dir / name
        info = ShardInfo(
            dataset=dataset,
            error_type=error_type,
            file=name,
            crc=crc,
            keys=tuple(sorted(records)),
        )
        self.store_dir.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_name(path.name + ".tmp")
        try:
            with tmp_path.open("wb") as raw:
                # fixed mtime + level: identical records => identical bytes
                with gzip.GzipFile(
                    fileobj=raw, mode="wb", mtime=0, compresslevel=9
                ) as compressed:
                    compressed.write(body)
                raw.flush()
                os.fsync(raw.fileno())
            tmp_path.replace(path)
        except BaseException:
            tmp_path.unlink(missing_ok=True)
            raise
        return info, path

    def _gc_store_dir(self) -> None:
        """Remove shard files no manifest entry references anymore."""
        directory = self.store_dir
        if directory is None or not directory.exists():
            return
        referenced = {self._shard_path(info) for info in self._shards.values()}
        for path in directory.glob("*.jsonl.gz"):
            if path not in referenced:
                path.unlink()

    def save(self) -> None:
        """Compact all records into the sharded store.

        Journal shards are replayed one final time (so records
        journaled by workers but never merged in-memory — e.g. from a
        crashed-and-poisoned unit — cannot be lost), every dirty
        ``(dataset, error_type)`` group is written as a fresh
        content-addressed shard file, and the manifest is atomically
        renamed over ``{stem}.json``; only then are the journal shards
        removed and unreferenced shard files garbage-collected. A
        crash at any point mid-compaction therefore leaves either the
        old or the new store intact, never a partial one, and never
        drops a journaled record. Groups without new records keep
        their existing shard files untouched, so an incremental save
        costs O(changed records), not O(store).

        A legacy monolithic store is migrated to the sharded layout by
        its first save (the manifest replaces the old file in the same
        atomic rename).
        """
        if self._path is None:
            raise RuntimeError("this ResultStore has no backing path")
        self.replay_journal()
        pending_groups = self._pending_by_group()
        written: dict[tuple[str, str], ShardInfo] = {}
        new_paths: list[Path] = []
        try:
            for group in sorted(pending_groups):
                merged = dict(self._shard_records(group))
                merged.update(pending_groups[group])
                info, path = self._write_shard(group, merged)
                written[group] = info
                new_paths.append(path)
            manifest_shards = {**self._shards, **written}
            payload = {
                "format": STORE_FORMAT,
                "shards": [
                    manifest_shards[group].to_json()
                    for group in sorted(manifest_shards)
                ],
            }
            self._path.parent.mkdir(parents=True, exist_ok=True)
            tmp_path = self._path.with_name(self._path.name + ".tmp")
            try:
                with tmp_path.open("w") as handle:
                    json.dump(payload, handle, indent=1, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                tmp_path.replace(self._path)
            except BaseException:
                tmp_path.unlink(missing_ok=True)
                raise
        except BaseException:
            # an uncommitted save must leave no half-written shards; the
            # previous manifest still references only the old files
            for path in new_paths:
                if path not in {
                    self._shard_path(info) for info in self._shards.values()
                }:
                    path.unlink(missing_ok=True)
            raise
        self._shards = dict(manifest_shards)
        self._shard_keys.update(self._pending)
        self._pending.clear()
        self._cached_shard = None
        self._legacy = False
        for shard in self.journal_paths():
            shard.unlink()
        self._gc_store_dir()
        self.compact_trace()

    # -- verification ----------------------------------------------------

    def verify(self) -> list[str]:
        """Audit the on-disk state; returns human-readable violations.

        Checks, across the manifest, every record shard (streamed one
        at a time — verification memory is O(keys), never O(records))
        and every journal shard:

        - per-record checksum mismatches,
        - the same key persisted with *conflicting* payloads anywhere
          (identical re-journaled copies from a retried worker are
          benign and not flagged),
        - duplicate keys inside a shard or the legacy compacted file,
        - shard contents disagreeing with the manifest (missing files,
          key-set drift, body CRC mismatch, records filed under the
          wrong ``(dataset, error_type)`` group),
        - undecodable journal lines other than a torn trailing line,
        - orphan journal shards — shards fully contained in the
          compacted store, i.e. a compaction that crashed between
          rename and cleanup — and orphan shard files no manifest
          entry references,
        - a non-empty ``{stem}.failures.jsonl`` sidecar (poisoned work
          units mean the study is incomplete).

        An empty list means the persisted study is internally
        consistent. In-memory stores trivially verify clean. Legacy
        monolithic stores are audited with the same checks against
        their single ``records`` array.
        """
        issues: list[str] = []
        if self._path is None:
            return issues
        # key -> CRC-32 of its canonical body: conflict detection without
        # holding any record payloads in memory
        canonical: dict[str, int] = {}

        def canonical_crc(payload: dict[str, Any]) -> int:
            body = {k: v for k, v in payload.items() if k != "checksum"}
            return zlib.crc32(
                json.dumps(body, sort_keys=True, separators=(",", ":")).encode(
                    "utf-8"
                )
            )

        def check_payload(payload: dict[str, Any], where: str) -> str | None:
            checksum = payload.get("checksum")
            if checksum is not None and checksum != record_checksum(payload):
                issues.append(f"{where}: checksum mismatch")
                return None
            try:
                key = RunRecord.from_json(payload).key
            except (KeyError, TypeError, ValueError):
                issues.append(f"{where}: not a record payload")
                return None
            crc = canonical_crc(payload)
            if key in canonical and canonical[key] != crc:
                issues.append(f"{where}: conflicting payloads for key {key!r}")
            canonical.setdefault(key, crc)
            return key

        seen: set[str] = set()
        manifest: dict[tuple[str, str], ShardInfo] = {}
        if self._path.exists():
            try:
                with self._path.open("r") as handle:
                    compacted = json.load(handle)
            except ValueError:
                issues.append(f"{self._path.name}: unreadable store file")
                compacted = {}
            if isinstance(compacted, dict) and compacted.get("format") == STORE_FORMAT:
                for entry in compacted.get("shards", ()):
                    try:
                        manifest_info = ShardInfo.from_json(entry)
                    except (KeyError, TypeError):
                        issues.append(
                            f"{self._path.name}: malformed shard entry"
                        )
                        continue
                    manifest[manifest_info.group] = manifest_info
                issues.extend(self._verify_shards(manifest, check_payload, seen))
            elif isinstance(compacted, dict) and "records" in compacted:
                for index, payload in enumerate(compacted["records"]):
                    where = f"{self._path.name}: record {index}"
                    key = check_payload(payload, where)
                    if key is None:
                        continue
                    if key in seen:
                        issues.append(f"{where}: duplicate key {key!r}")
                    seen.add(key)
            elif compacted:
                issues.append(f"{self._path.name}: unreadable store file")
        for shard in self.journal_paths():
            lines = shard.read_text().splitlines()
            shard_keys: list[str] = []
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                where = f"{shard.name}: line {index + 1}"
                try:
                    payload = json.loads(line)
                except ValueError:
                    if index == len(lines) - 1:
                        continue  # torn trailing write, skipped at replay
                    issues.append(f"{where}: undecodable journal line")
                    continue
                key = check_payload(payload, where)
                if key is not None:
                    shard_keys.append(key)
            if shard_keys and seen and all(key in seen for key in shard_keys):
                issues.append(
                    f"{shard.name}: orphan shard (all {len(shard_keys)} "
                    "records already compacted)"
                )
        failures = self.failures_path
        if failures is not None and failures.exists():
            poisoned = [
                line for line in failures.read_text().splitlines() if line.strip()
            ]
            if poisoned:
                issues.append(
                    f"{failures.name}: {len(poisoned)} poisoned work unit(s) "
                    "recorded — study incomplete"
                )
        return issues

    def _verify_shards(self, manifest, check_payload, seen) -> list[str]:
        """Audit every manifest shard, streaming one file at a time."""
        issues: list[str] = []
        for group in sorted(manifest):
            info = manifest[group]
            path = self._shard_path(info)
            if not path.exists():
                issues.append(f"{info.file}: missing shard file")
                continue
            shard_seen: set[str] = set()
            body = b""
            try:
                with path.open("rb") as raw:
                    body = gzip.decompress(raw.read())
            except (OSError, gzip.BadGzipFile):
                issues.append(f"{info.file}: unreadable shard file")
                continue
            if f"{zlib.crc32(body):08x}" != info.crc:
                issues.append(f"{info.file}: shard body CRC mismatch")
            for index, line in enumerate(body.decode("utf-8").splitlines()):
                if not line.strip():
                    continue
                where = f"{info.file}: record {index}"
                try:
                    payload = json.loads(line)
                except ValueError:
                    issues.append(f"{where}: undecodable shard line")
                    continue
                key = check_payload(payload, where)
                if key is None:
                    continue
                if key in shard_seen or key in seen:
                    issues.append(f"{where}: duplicate key {key!r}")
                if shard_group_of_key(key) != group:
                    issues.append(
                        f"{where}: key {key!r} filed under shard group "
                        f"{group[0]}/{group[1]}"
                    )
                shard_seen.add(key)
            if shard_seen != set(info.keys):
                issues.append(
                    f"{info.file}: shard keys disagree with manifest "
                    f"({len(shard_seen)} on disk, {len(info.keys)} listed)"
                )
            seen.update(shard_seen)
        directory = self.store_dir
        if directory is not None and directory.exists():
            referenced = {directory / info.file for info in manifest.values()}
            for path in sorted(directory.glob("*.jsonl.gz")):
                if path not in referenced:
                    issues.append(
                        f"{directory.name}/{path.name}: orphan shard file "
                        "(not referenced by the manifest)"
                    )
        return issues

    # -- record access ---------------------------------------------------

    def add(self, record: RunRecord) -> None:
        """Insert a record; duplicate keys are rejected."""
        if record.key in self:
            raise ValueError(f"duplicate record key {record.key!r}")
        self._pending[record.key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._pending or key in self._shard_keys

    def __len__(self) -> int:
        return len(self._pending) + len(self._shard_keys)

    def get(self, key: str) -> RunRecord:
        """Fetch a record by key (loading at most one shard)."""
        if key in self._pending:
            return self._pending[key]
        if key in self._shard_keys:
            return self._shard_records(shard_group_of_key(key))[key]
        raise KeyError(f"no record {key!r}")

    def iter_records(self) -> Iterator[RunRecord]:
        """Stream every record in global key order.

        Holds at most one shard's records in memory at a time: shard
        groups are visited in sorted order and each shard is loaded,
        merged with that group's pending records, yielded and released
        before the next one is touched.
        """
        pending_groups = self._pending_by_group()
        for group in self._groups():
            yield from self._iter_group_records(group, pending_groups.get(group))

    def records(self, **filters: Any) -> Iterator[RunRecord]:
        """Iterate records matching the given field filters.

        Example: ``store.records(dataset="german", error_type="outliers")``.
        Streams shard by shard; ``dataset`` / ``error_type`` filters
        skip non-matching shards without opening them.
        """
        valid = {
            "dataset",
            "error_type",
            "detection",
            "repair",
            "model",
            "repetition",
            "tuning_seed",
        }
        unknown = set(filters) - valid
        if unknown:
            raise ValueError(f"unknown filters: {sorted(unknown)}")
        want_dataset = filters.get("dataset")
        want_error_type = filters.get("error_type")
        pending_groups = self._pending_by_group()
        for group in self._groups():
            if want_dataset is not None and group[0] != want_dataset:
                continue
            if want_error_type is not None and group[1] != want_error_type:
                continue
            for record in self._iter_group_records(group, pending_groups.get(group)):
                if all(
                    getattr(record, name) == value
                    for name, value in filters.items()
                ):
                    yield record

    def distinct(self, fieldname: str) -> list[Any]:
        """Sorted distinct values of a record field.

        ``dataset`` and ``error_type`` come straight from the shard
        index; other fields stream the store.
        """
        if fieldname == "dataset":
            return sorted({group[0] for group in self._groups()})
        if fieldname == "error_type":
            return sorted({group[1] for group in self._groups()})
        return sorted({getattr(record, fieldname) for record in self.iter_records()})
