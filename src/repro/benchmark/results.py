"""The resumable result store.

Every run (one trained-and-evaluated model pair) is stored as a flat
JSON-serialisable record under a deterministic key::

    {dataset}/{error_type}/{repair}/{model}/rep{repetition}/seed{seed}

The store can persist to a JSON file and *resume*: re-running a study
skips every key already present. The key→value mapping is stable by
construction — each record embeds its own configuration fields — which
is precisely the reproducibility property whose violation the paper
reported (and fixed) in the original CleanML codebase.

Incremental persistence uses an append-only JSONL journal: writers
(e.g. parallel study workers) append one record per line to shard
files named ``{stem}.jsonl`` or ``{stem}.{shard}.jsonl`` next to the
store's ``{stem}.json``. Loading a store replays any journal shards on
top of the compacted JSON, so a killed run resumes mid-shard without
losing completed records; :meth:`ResultStore.save` compacts everything
back into the single JSON file and removes the shards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass(frozen=True)
class RunRecord:
    """One evaluated model pair (dirty vs repaired) for one run.

    Attributes:
        dataset: Dataset name.
        error_type: ``missing_values`` / ``outliers`` / ``mislabels``.
        detection: Detection-strategy name.
        repair: Repair-method name.
        model: Model name.
        repetition: Split index.
        tuning_seed: Hyperparameter-search seed index.
        metrics: Flat mapping of metric keys to values. Contains
            ``dirty_test_acc``, ``{repair}_test_acc``, the matching
            ``*_test_f1`` entries, ``best_params`` entries and the
            group-wise confusion counts in CleanML key style for both
            the dirty baseline (prefixed ``dirty``) and the repair.
    """

    dataset: str
    error_type: str
    detection: str
    repair: str
    model: str
    repetition: int
    tuning_seed: int
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Deterministic store key for this record."""
        return (
            f"{self.dataset}/{self.error_type}/{self.detection}/{self.repair}"
            f"/{self.model}/rep{self.repetition}/seed{self.tuning_seed}"
        )

    def to_json(self) -> dict[str, Any]:
        """Serialisable representation."""
        return {
            "dataset": self.dataset,
            "error_type": self.error_type,
            "detection": self.detection,
            "repair": self.repair,
            "model": self.model,
            "repetition": self.repetition,
            "tuning_seed": self.tuning_seed,
            "metrics": self.metrics,
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return RunRecord(
            dataset=payload["dataset"],
            error_type=payload["error_type"],
            detection=payload["detection"],
            repair=payload["repair"],
            model=payload["model"],
            repetition=payload["repetition"],
            tuning_seed=payload["tuning_seed"],
            metrics=dict(payload["metrics"]),
        )


class JournalWriter:
    """Append-only JSONL writer for incremental record persistence.

    Each :meth:`write` appends one ``RunRecord.to_json()`` line and
    flushes, so every completed record survives a crash of the writing
    process. Usable as a context manager.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = None

    @property
    def path(self) -> Path:
        """The shard file this writer appends to."""
        return self._path

    def write(self, record: RunRecord) -> None:
        """Append one record as a JSON line and flush."""
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._path.open("a")
        self._handle.write(json.dumps(record.to_json()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (if ever opened)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ResultStore:
    """In-memory result store with optional JSON persistence."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._records: dict[str, RunRecord] = {}
        self._sorted: list[tuple[str, RunRecord]] | None = None
        if self._path is not None:
            if self._path.exists():
                self._load()
            self._replay_journal()

    @property
    def path(self) -> Path | None:
        """The backing JSON path (None for in-memory stores)."""
        return self._path

    def _load(self) -> None:
        assert self._path is not None
        with self._path.open("r") as handle:
            payload = json.load(handle)
        for record_payload in payload["records"]:
            record = RunRecord.from_json(record_payload)
            self._records[record.key] = record

    # -- JSONL journal ---------------------------------------------------

    def journal_paths(self) -> list[Path]:
        """Existing journal shard files for this store, sorted by name."""
        if self._path is None:
            return []
        stem = self._path.stem
        parent = self._path.parent
        paths = sorted(parent.glob(f"{stem}.*.jsonl"))
        default = parent / f"{stem}.jsonl"
        if default.exists():
            paths.insert(0, default)
        return paths

    def journal_writer(self, shard: str | None = None) -> JournalWriter:
        """An append-only writer for this store's journal.

        ``shard`` distinguishes concurrent writers (e.g. one per worker
        process); the default shard is ``{stem}.jsonl``.
        """
        if self._path is None:
            raise RuntimeError("this ResultStore has no backing path")
        name = (
            f"{self._path.stem}.jsonl"
            if shard is None
            else f"{self._path.stem}.{shard}.jsonl"
        )
        return JournalWriter(self._path.parent / name)

    def _replay_journal(self) -> int:
        """Replay journal shards on top of the compacted JSON.

        Records whose key is already present are skipped (they were
        compacted before the shard was removed); undecodable lines —
        typically a partial trailing line from a killed writer — are
        ignored. Returns the number of records recovered.
        """
        recovered = 0
        for shard in self.journal_paths():
            with shard.open("r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                        record = RunRecord.from_json(payload)
                    except (ValueError, KeyError, TypeError):
                        continue
                    if record.key not in self._records:
                        self._records[record.key] = record
                        recovered += 1
        if recovered:
            self._sorted = None
        return recovered

    def save(self) -> None:
        """Persist all records to the store's JSON path.

        Compacts the store: after the atomic rewrite of ``{stem}.json``
        every journal shard is removed, since its records are now part
        of the compacted file.
        """
        if self._path is None:
            raise RuntimeError("this ResultStore has no backing path")
        payload = {
            "records": [record.to_json() for __, record in self._sorted_items()]
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self._path.with_suffix(".tmp")
        with tmp_path.open("w") as handle:
            json.dump(payload, handle, indent=1)
        tmp_path.replace(self._path)
        for shard in self.journal_paths():
            shard.unlink()

    # -- record access ---------------------------------------------------

    def _sorted_items(self) -> list[tuple[str, RunRecord]]:
        """Key-sorted records, cached until the next :meth:`add`."""
        if self._sorted is None:
            self._sorted = sorted(self._records.items())
        return self._sorted

    def add(self, record: RunRecord) -> None:
        """Insert a record; duplicate keys are rejected."""
        if record.key in self._records:
            raise ValueError(f"duplicate record key {record.key!r}")
        self._records[record.key] = record
        self._sorted = None

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> RunRecord:
        """Fetch a record by key."""
        try:
            return self._records[key]
        except KeyError:
            raise KeyError(f"no record {key!r}") from None

    def records(self, **filters: Any) -> Iterator[RunRecord]:
        """Iterate records matching the given field filters.

        Example: ``store.records(dataset="german", error_type="outliers")``.
        """
        valid = {
            "dataset",
            "error_type",
            "detection",
            "repair",
            "model",
            "repetition",
            "tuning_seed",
        }
        unknown = set(filters) - valid
        if unknown:
            raise ValueError(f"unknown filters: {sorted(unknown)}")
        for __, record in self._sorted_items():
            if all(getattr(record, name) == value for name, value in filters.items()):
                yield record

    def distinct(self, fieldname: str) -> list[Any]:
        """Sorted distinct values of a record field."""
        return sorted({getattr(record, fieldname) for record in self._records.values()})
