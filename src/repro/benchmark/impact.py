"""Impact analysis: from run records to the paper's 3x3 matrices.

A *configuration* is a (dataset, sensitive-group definition, fairness
metric, model, error type, detection, repair) tuple. For each
configuration we collect the paired score vectors of the dirty
baseline and the cleaned variant over all runs, classify the impact on
accuracy and on fairness with paired t-tests (Bonferroni-adjusted),
and aggregate configurations into the fairness-impact × accuracy-impact
contingency matrices of Tables II–XIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.benchmark.results import ResultStore, RunRecord
from repro.fairness.confusion import (
    confusion_from_store_keys,
    group_key_fragments,
)
from repro.fairness.metrics import FAIRNESS_METRICS, FairnessMetric
from repro.ml.metrics import ConfusionMatrix
from repro.stats.impact import Impact, classify_impact

#: Number of simultaneous (detection, repair) hypotheses per error type,
#: used as the Bonferroni divisor (CleanML's multiple-testing protocol).
HYPOTHESES_PER_ERROR_TYPE = {
    "missing_values": 6,
    "outliers": 9,
    "mislabels": 1,
}

_IMPACT_ORDER = (Impact.WORSE, Impact.INSIGNIFICANT, Impact.BETTER)


def _group_fragments(group_key: str) -> tuple[str, str]:
    """Result-store key fragments for a group spec key."""
    return group_key_fragments(group_key)


def _confusion_from_metrics(
    metrics: dict, technique: str, fragment: str
) -> ConfusionMatrix | None:
    return confusion_from_store_keys(metrics, technique, fragment)


def fairness_value(
    record: RunRecord, technique: str, group_key: str, metric: FairnessMetric
) -> float:
    """Evaluate a fairness metric from a record's stored counts."""
    priv_fragment, dis_fragment = _group_fragments(group_key)
    privileged = _confusion_from_metrics(record.metrics, technique, priv_fragment)
    disadvantaged = _confusion_from_metrics(record.metrics, technique, dis_fragment)
    if privileged is None or disadvantaged is None:
        return float("nan")
    return metric(privileged, disadvantaged)


@dataclass(frozen=True)
class ConfigurationImpact:
    """Classified impact of one configuration.

    Attributes:
        dataset, group_key, metric_name, model, error_type, detection,
            repair: The configuration coordinates.
        fairness_impact: Impact of cleaning on the fairness metric.
        accuracy_impact: Impact of cleaning on test accuracy.
        n_runs: Number of paired runs behind the classification.
        mean_dirty_fairness / mean_clean_fairness: Mean |disparity|.
        mean_dirty_accuracy / mean_clean_accuracy: Mean accuracies.
    """

    dataset: str
    group_key: str
    metric_name: str
    model: str
    error_type: str
    detection: str
    repair: str
    fairness_impact: Impact
    accuracy_impact: Impact
    n_runs: int
    mean_dirty_fairness: float
    mean_clean_fairness: float
    mean_dirty_accuracy: float
    mean_clean_accuracy: float

    @property
    def intersectional(self) -> bool:
        """Whether the group definition is intersectional."""
        return "_x_" in self.group_key


@dataclass
class ImpactMatrix:
    """A 3x3 fairness-impact × accuracy-impact contingency matrix."""

    counts: dict[tuple[Impact, Impact], int] = field(
        default_factory=lambda: {
            (f, a): 0 for f in _IMPACT_ORDER for a in _IMPACT_ORDER
        }
    )

    def add(self, fairness: Impact, accuracy: Impact) -> None:
        """Count one configuration."""
        self.counts[(fairness, accuracy)] += 1

    @property
    def total(self) -> int:
        """Total configurations counted."""
        return sum(self.counts.values())

    def count(self, fairness: Impact, accuracy: Impact) -> int:
        """Count in one cell."""
        return self.counts[(fairness, accuracy)]

    def fairness_marginal(self, fairness: Impact) -> int:
        """Row total for a fairness impact."""
        return sum(self.counts[(fairness, a)] for a in _IMPACT_ORDER)

    def accuracy_marginal(self, accuracy: Impact) -> int:
        """Column total for an accuracy impact."""
        return sum(self.counts[(f, accuracy)] for f in _IMPACT_ORDER)

    def fraction(self, fairness: Impact, accuracy: Impact) -> float:
        """Cell share of the total (NaN when empty)."""
        if self.total == 0:
            return float("nan")
        return self.counts[(fairness, accuracy)] / self.total


class ImpactAnalysis:
    """Classifies configurations and aggregates them into matrices."""

    def __init__(self, store: ResultStore, alpha: float = 0.05) -> None:
        self.store = store
        self.alpha = alpha

    def configuration_impacts(
        self,
        error_type: str,
        metric_name: str,
        intersectional: bool,
        datasets: tuple[str, ...] | None = None,
        models: tuple[str, ...] | None = None,
    ) -> list[ConfigurationImpact]:
        """Classify every configuration for one error type and metric.

        Args:
            error_type: The error type to analyse.
            metric_name: Key into the fairness-metric registry
                (``PP`` or ``EO``).
            intersectional: Use intersectional group definitions
                instead of single-attribute ones.
            datasets / models: Optional filters.
        """
        metric = FAIRNESS_METRICS[metric_name]
        n_hypotheses = HYPOTHESES_PER_ERROR_TYPE.get(error_type, 1)
        impacts = []
        for dataset, detection, repair, model in self._configurations(
            error_type, datasets, models
        ):
            records = list(
                self.store.records(
                    dataset=dataset,
                    error_type=error_type,
                    detection=detection,
                    repair=repair,
                    model=model,
                )
            )
            if not records:
                continue
            for group_key in self._group_keys(records[0], repair, intersectional):
                impacts.append(
                    self._classify(
                        records,
                        dataset,
                        group_key,
                        metric_name,
                        metric,
                        model,
                        error_type,
                        detection,
                        repair,
                        n_hypotheses,
                    )
                )
        return impacts

    def matrix(
        self,
        error_type: str,
        metric_name: str,
        intersectional: bool,
        datasets: tuple[str, ...] | None = None,
        models: tuple[str, ...] | None = None,
    ) -> ImpactMatrix:
        """The 3x3 contingency matrix over all configurations."""
        matrix = ImpactMatrix()
        for impact in self.configuration_impacts(
            error_type, metric_name, intersectional, datasets, models
        ):
            matrix.add(impact.fairness_impact, impact.accuracy_impact)
        return matrix

    # -- internals ---------------------------------------------------------

    def _configurations(
        self,
        error_type: str,
        datasets: tuple[str, ...] | None,
        models: tuple[str, ...] | None,
    ):
        seen = set()
        for record in self.store.records(error_type=error_type):
            if datasets is not None and record.dataset not in datasets:
                continue
            if models is not None and record.model not in models:
                continue
            key = (record.dataset, record.detection, record.repair, record.model)
            if key not in seen:
                seen.add(key)
                yield key

    @staticmethod
    def _group_keys(
        record: RunRecord, repair: str, intersectional: bool
    ) -> list[str]:
        """Recover the group keys present in a record's metric keys."""
        keys = set()
        prefix = f"{repair}__"
        for metric_key in record.metrics:
            if not metric_key.startswith(prefix) or not metric_key.endswith("__tp"):
                continue
            fragment = metric_key[len(prefix) : -len("__tp")]
            parts = fragment.split("__")
            if len(parts) == 2 and all(part.endswith("_priv") for part in parts):
                if intersectional:
                    keys.add(
                        parts[0][: -len("_priv")] + "_x_" + parts[1][: -len("_priv")]
                    )
            elif len(parts) == 1 and parts[0].endswith("_priv"):
                if not intersectional:
                    keys.add(parts[0][: -len("_priv")])
        return sorted(keys)

    def _classify(
        self,
        records: list[RunRecord],
        dataset: str,
        group_key: str,
        metric_name: str,
        metric: FairnessMetric,
        model: str,
        error_type: str,
        detection: str,
        repair: str,
        n_hypotheses: int,
    ) -> ConfigurationImpact:
        dirty_fairness = np.array(
            [fairness_value(r, "dirty", group_key, metric) for r in records]
        )
        clean_fairness = np.array(
            [fairness_value(r, repair, group_key, metric) for r in records]
        )
        dirty_accuracy = np.array(
            [float(r.metrics["dirty_test_acc"]) for r in records]
        )
        clean_accuracy = np.array(
            [float(r.metrics[f"{repair}_test_acc"]) for r in records]
        )
        fairness_impact = classify_impact(
            dirty_fairness,
            clean_fairness,
            higher_is_better=False,
            use_magnitude=True,
            alpha=self.alpha,
            n_hypotheses=n_hypotheses,
        )
        accuracy_impact = classify_impact(
            dirty_accuracy,
            clean_accuracy,
            higher_is_better=True,
            alpha=self.alpha,
            n_hypotheses=n_hypotheses,
        )
        return ConfigurationImpact(
            dataset=dataset,
            group_key=group_key,
            metric_name=metric_name,
            model=model,
            error_type=error_type,
            detection=detection,
            repair=repair,
            fairness_impact=fairness_impact,
            accuracy_impact=accuracy_impact,
            n_runs=len(records),
            mean_dirty_fairness=float(np.nanmean(np.abs(dirty_fairness)))
            if not np.isnan(dirty_fairness).all()
            else float("nan"),
            mean_clean_fairness=float(np.nanmean(np.abs(clean_fairness)))
            if not np.isnan(clean_fairness).all()
            else float("nan"),
            mean_dirty_accuracy=float(np.mean(dirty_accuracy)),
            mean_clean_accuracy=float(np.mean(clean_accuracy)),
        )
