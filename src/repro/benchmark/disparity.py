"""RQ1: demographically disparate data-quality analysis (Figures 1-2).

For every dataset, error-detection strategy and protected-group
definition, compute the fraction of flagged tuples in the privileged
and disadvantaged groups and test the disparity with a G² test at
p = .05, reporting only significant cases — exactly the analysis
behind the paper's Figures 1 and 2. The label-error drill-down
(predicted false positives vs false negatives per group, Section III)
is included as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cleaning.detection import (
    IqrOutlierDetector,
    IsolationForestOutlierDetector,
    MissingValueDetector,
    SdOutlierDetector,
)
from repro.cleaning.mislabels import ConfidentLearningDetector
from repro.cleaning.repair import MissingValueRepair
from repro.datasets import DatasetDefinition
from repro.fairness.groups import GroupSpec, IntersectionalSpec
from repro.ml import TabularFeaturizer
from repro.stats.gtest import GTestResult, g_test_counts
from repro.tabular import Table

#: Detector names in the order of the paper's figures.
DETECTOR_NAMES = (
    "missing_values",
    "outliers_sd",
    "outliers_iqr",
    "outliers_if",
    "mislabels",
)


@dataclass(frozen=True)
class DisparityFinding:
    """One bar pair of Figure 1/2.

    Attributes:
        dataset: Dataset name.
        detector: Detection-strategy name.
        group_key: Group-spec key (e.g. ``sex`` or ``sex_x_race``).
        privileged_fraction: Fraction of the privileged group flagged.
        disadvantaged_fraction: Fraction of the disadvantaged group flagged.
        privileged_flagged / privileged_total: Raw counts.
        disadvantaged_flagged / disadvantaged_total: Raw counts.
        test: The G² significance test over the counts.
    """

    dataset: str
    detector: str
    group_key: str
    privileged_flagged: int
    privileged_total: int
    disadvantaged_flagged: int
    disadvantaged_total: int
    test: GTestResult

    @property
    def privileged_fraction(self) -> float:
        """Fraction flagged in the privileged group."""
        if self.privileged_total == 0:
            return float("nan")
        return self.privileged_flagged / self.privileged_total

    @property
    def disadvantaged_fraction(self) -> float:
        """Fraction flagged in the disadvantaged group."""
        if self.disadvantaged_total == 0:
            return float("nan")
        return self.disadvantaged_flagged / self.disadvantaged_total

    @property
    def significant(self) -> bool:
        """Whether the disparity passes the G² test."""
        return self.test.significant

    @property
    def burdens_disadvantaged(self) -> bool:
        """True when errors concentrate in the disadvantaged group."""
        return self.disadvantaged_fraction > self.privileged_fraction


class DisparityAnalysis:
    """Runs the RQ1 analysis over a dataset table."""

    def __init__(self, alpha: float = 0.05, random_state: int = 0) -> None:
        self.alpha = alpha
        self.random_state = random_state

    def _detector_masks(
        self, definition: DatasetDefinition, table: Table
    ) -> dict[str, np.ndarray]:
        features = table.drop_columns([definition.label])
        labels = table.column(definition.label).astype(np.int64)
        masks: dict[str, np.ndarray] = {}
        masks["missing_values"] = MissingValueDetector().detect(features).row_mask
        masks["outliers_sd"] = SdOutlierDetector().detect(features).row_mask
        masks["outliers_iqr"] = IqrOutlierDetector().detect(features).row_mask
        masks["outliers_if"] = (
            IsolationForestOutlierDetector(random_state=self.random_state)
            .detect(features)
            .row_mask
        )
        masks["mislabels"] = self._mislabel_mask(definition, features, labels)
        return masks

    def _mislabel_mask(
        self,
        definition: DatasetDefinition,
        features: Table,
        labels: np.ndarray,
    ) -> np.ndarray:
        # confident learning needs complete feature rows: impute first
        # (mean/dummy), as the paper's pipeline does before detection
        complete = MissingValueRepair().fit_transform(features)
        X = TabularFeaturizer(
            feature_columns=definition.feature_columns(complete)
        ).fit_transform(complete)
        detector = ConfidentLearningDetector(random_state=self.random_state)
        return detector.detect(X, labels).row_mask

    def _findings_for_masks(
        self,
        definition: DatasetDefinition,
        table: Table,
        masks: dict[str, np.ndarray],
        specs,
        only_significant: bool,
    ) -> list[DisparityFinding]:
        findings = []
        for spec in specs:
            privileged = spec.privileged_mask(table)
            disadvantaged = spec.disadvantaged_mask(table)
            for detector_name in DETECTOR_NAMES:
                if detector_name not in masks:
                    continue
                flagged = masks[detector_name]
                finding = DisparityFinding(
                    dataset=definition.name,
                    detector=detector_name,
                    group_key=spec.key,
                    privileged_flagged=int(flagged[privileged].sum()),
                    privileged_total=int(privileged.sum()),
                    disadvantaged_flagged=int(flagged[disadvantaged].sum()),
                    disadvantaged_total=int(disadvantaged.sum()),
                    test=g_test_counts(
                        int(flagged[privileged].sum()),
                        int(privileged.sum()),
                        int(flagged[disadvantaged].sum()),
                        int(disadvantaged.sum()),
                        alpha=self.alpha,
                    ),
                )
                if finding.significant or not only_significant:
                    findings.append(finding)
        return findings

    def single_attribute(
        self,
        definition: DatasetDefinition,
        table: Table,
        only_significant: bool = False,
    ) -> list[DisparityFinding]:
        """Figure 1: disparities for single-attribute groups."""
        masks = self._detector_masks(definition, table)
        return self._findings_for_masks(
            definition, table, masks, definition.group_specs, only_significant
        )

    def intersectional(
        self,
        definition: DatasetDefinition,
        table: Table,
        only_significant: bool = False,
    ) -> list[DisparityFinding]:
        """Figure 2: disparities for intersectional groups."""
        masks = self._detector_masks(definition, table)
        return self._findings_for_masks(
            definition, table, masks, definition.intersectional_specs, only_significant
        )

    def label_error_breakdown(
        self,
        definition: DatasetDefinition,
        table: Table,
        spec: GroupSpec | IntersectionalSpec,
    ) -> dict[str, float]:
        """Section III drill-down: FP/FN shares of predicted label errors.

        Returns, per group, the fraction of its flagged tuples that are
        predicted false positives (given label 1, predicted true 0) and
        predicted false negatives.
        """
        features = table.drop_columns([definition.label])
        labels = table.column(definition.label).astype(np.int64)
        complete = MissingValueRepair().fit_transform(features)
        X = TabularFeaturizer(
            feature_columns=definition.feature_columns(complete)
        ).fit_transform(complete)
        detector = ConfidentLearningDetector(random_state=self.random_state)
        result = detector.detect(X, labels)
        fp = result.predicted_false_positives(labels)
        fn = result.predicted_false_negatives(labels)
        out: dict[str, float] = {}
        for name, mask in (
            ("privileged", spec.privileged_mask(table)),
            ("disadvantaged", spec.disadvantaged_mask(table)),
        ):
            flagged = int(result.row_mask[mask].sum())
            out[f"{name}_fp_share"] = (
                int(fp[mask].sum()) / flagged if flagged else float("nan")
            )
            out[f"{name}_fn_share"] = (
                int(fn[mask].sum()) / flagged if flagged else float("nan")
            )
        return out
