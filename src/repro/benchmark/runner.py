"""The Fig-3 evaluation loop.

For each experimental configuration (dataset / model / error type /
detection / repair) the runner:

1. samples records and splits them into train/test sets,
2. keeps the raw data as the *dirty* version and applies the repair
   strategy to produce a *repaired* version,
3. trains one tuned classifier per version,
4. predicts with the dirty model on the dirty test set and with the
   repaired model on the equivalently repaired test set,
5. scores both models on accuracy and records group-wise confusion
   matrices for every (single-attribute and intersectional) group
   definition under the CleanML key-naming scheme.

Error-type specifics follow the paper's Section V exactly:

- *missing_values* — the dirty baseline drops incomplete tuples from
  the train set but imputes (mean/dummy) on the test set, since
  tuples cannot be dropped at prediction time in production.
- *outliers* — incomplete tuples are removed beforehand; the dirty
  version retains outliers in train and test; detectors are fitted on
  the train set and applied to both.
- *mislabels* — incomplete tuples are removed beforehand; repair flips
  the flagged labels in the train set only (test labels are never
  flipped, to keep predictions comparable).

Execution is structured around *repetition cells*: version preparation
(splitting, detection, repair) plus featurisation and group masks are
computed once per ``(dataset, error_type, repetition)`` and shared by
every ``model × tuning_seed`` cell inside that repetition. Every
random draw is seeded by :func:`_seed_for` hashes of configuration
coordinates — never by execution order — so any subset of cells, run
in any order (including in parallel worker processes, see
:mod:`repro.benchmark.parallel`), produces identical records.
"""

from __future__ import annotations

import zlib
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.benchmark.config import StudyConfig
from repro.benchmark.models import model_search
from repro.benchmark.results import ResultStore, RunRecord
from repro.cleaning.mislabels import ConfidentLearningDetector
from repro.cleaning.repair import (
    CategoricalImputation,
    LabelFlipRepair,
    MissingValueRepair,
    NumericImputation,
)
from repro.cleaning.strategies import (
    missing_value_repairs,
    outlier_detectors,
    outlier_repairs,
)
from repro.datasets import DatasetDefinition, load_dataset
from repro.fairness.confusion import (
    GroupMasks,
    group_confusions_from_masks,
    group_masks,
    result_store_keys,
)
from repro.ml import TabularFeaturizer, incremental
from repro.ml.metrics import accuracy_score, f1_score
from repro.tabular import Table, train_test_split_table

ERROR_TYPES = ("missing_values", "outliers", "mislabels")

#: One schedulable cell inside a repetition: (model name, tuning seed).
Cell = tuple[str, int]


def _seed_for(*parts: object) -> int:
    """Deterministic 32-bit seed from heterogeneous parts."""
    text = "|".join(str(part) for part in parts)
    return zlib.crc32(text.encode("utf-8"))


@dataclass
class _Version:
    """A (train, test) pair with labels, ready for model training.

    ``features`` and ``masks`` cache the fitted featurisation and the
    group masks of the test table. Both depend only on the version's
    tables, so they are computed once and shared by every
    model × tuning-seed cell of the repetition (previously the dirty
    version alone was re-featurised ``len(models) × n_tuning_seeds``
    times per repetition).

    ``artifacts`` keeps the featurisation's block structure (the same
    matrices as ``features`` plus the fitted encoder/scaler and the
    numeric/one-hot column split) so a child version can patch it;
    ``delta`` is the row-delta manifest against the selected parent
    version, linked by :meth:`ExperimentRunner._link_deltas` when
    :attr:`StudyConfig.incremental` is on.
    """

    name: str
    detection: str
    train: Table
    train_labels: np.ndarray
    test: Table
    test_labels: np.ndarray
    features: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    masks: list[GroupMasks] | None = field(default=None, repr=False, compare=False)
    artifacts: "incremental.FeatureArtifacts | None" = field(
        default=None, repr=False, compare=False
    )
    delta: "incremental.VersionDelta | None" = field(
        default=None, repr=False, compare=False
    )


class ExperimentRunner:
    """Executes study configurations and fills a result store."""

    def __init__(self, config: StudyConfig, store: ResultStore) -> None:
        self.config = config
        self.store = store

    # -- public API ------------------------------------------------------

    def run_dataset_error(
        self,
        dataset_name: str,
        error_type: str,
        models: tuple[str, ...] | None = None,
        progress=None,
    ) -> int:
        """Run all configurations for one dataset and error type.

        Skips (resumes past) runs already present in the store.
        Returns the number of new records added. ``progress`` is an
        optional callable receiving human-readable status lines.
        """
        definition, table = load_dataset(
            dataset_name,
            n_rows=self.config.dataset_size(dataset_name),
            seed=self.config.generation_seed,
        )
        return self.run_definition(
            definition, error_type, table=table, models=models, progress=progress
        )

    def run_definition(
        self,
        definition: DatasetDefinition,
        error_type: str,
        table: Table | None = None,
        models: tuple[str, ...] | None = None,
        progress=None,
    ) -> int:
        """Run all configurations for a (possibly custom) definition.

        ``table`` defaults to generating the definition at the
        configured size. Returns the number of new records added.
        """
        if error_type not in ERROR_TYPES:
            raise ValueError(
                f"unknown error type {error_type!r}; valid: {ERROR_TYPES}"
            )
        if error_type not in definition.error_types:
            return 0
        if table is None:
            table = definition.generate(
                n_rows=self.config.dataset_size(definition.name),
                seed=self.config.generation_seed,
            )
        models = models or self.config.models
        cells = [
            (model_name, seed)
            for model_name in models
            for seed in range(self.config.n_tuning_seeds)
        ]
        added = 0
        for repetition in range(self.config.n_repetitions):
            added += self.run_repetition_cells(
                definition, table, error_type, repetition, cells, progress=progress
            )
        return added

    def run_repetition_cells(
        self,
        definition: DatasetDefinition,
        table: Table,
        error_type: str,
        repetition: int,
        cells: "list[Cell] | tuple[Cell, ...]",
        progress=None,
        cell_guard=None,
    ) -> int:
        """Run selected ``(model, tuning_seed)`` cells of one repetition.

        Version preparation (and the per-version featurisation/mask
        caches) happens once and is shared by every cell, which is the
        unit of work the parallel scheduler ships to worker processes.
        ``cell_guard``, when given, is called as
        ``cell_guard(index, model_name, seed)`` and must return a
        context manager entered around that cell's evaluation — the
        hook the parallel executor uses for per-cell timeouts and the
        chaos harness for fault injection. Returns the number of new
        records added.
        """
        if error_type not in ERROR_TYPES:
            raise ValueError(
                f"unknown error type {error_type!r}; valid: {ERROR_TYPES}"
            )
        if error_type not in definition.error_types or not cells:
            return 0
        coords = dict(
            dataset=definition.name, error_type=error_type, repetition=repetition
        )
        with obs.span("unit", n_cells=len(cells), **coords):
            obs.heartbeat(phase="unit_start", n_cells=len(cells), **coords)
            with obs.span("prepare", **coords):
                versions = self._prepare_versions(
                    definition, table, error_type, repetition
                )
                if versions is not None and self.config.incremental:
                    self._link_deltas(versions[0], versions[1])
            if versions is None:
                return 0
            dirty, repaired_versions = versions
            scope = incremental.ReuseScope() if self.config.incremental else None
            scope_guard = (
                incremental.reuse_scope(scope) if scope is not None else nullcontext()
            )
            added = 0
            with scope_guard:
                for index, (model_name, seed) in enumerate(cells):
                    guard = (
                        nullcontext()
                        if cell_guard is None
                        else cell_guard(index, model_name, seed)
                    )
                    obs.heartbeat(
                        phase="cell_start", model=model_name, seed=seed, **coords
                    )
                    with guard, obs.span(
                        "cell", model=model_name, seed=seed, **coords
                    ) as cell_span:
                        hits_before = scope.hits() if scope is not None else 0
                        cell_added = self._evaluate_model(
                            definition,
                            error_type,
                            dirty,
                            repaired_versions,
                            model_name,
                            repetition,
                            seed,
                            progress,
                        )
                        cell_span.add("records", cell_added)
                        if scope is not None and scope.hits() > hits_before:
                            cell_span.set(warm_started=True)
                            obs.counter("cells_warm_started")
                        added += cell_added
                    # after the span closed: seconds is final, and the
                    # flush makes the finished cell visible to monitors
                    obs.heartbeat(
                        phase="cell_done",
                        model=model_name,
                        seed=seed,
                        seconds=cell_span.seconds if cell_span is not obs.NOOP_SPAN else 0.0,
                        **coords,
                    )
        return added

    def run_full_study(self, progress=None, workers: int | None = None) -> int:
        """Run every dataset × error type combination.

        ``workers`` overrides :attr:`StudyConfig.workers`; with more
        than one worker the sharded parallel executor is used (the
        result store it fills is byte-identical to a serial run).
        """
        from repro.datasets import DATASET_NAMES

        workers = self.config.workers if workers is None else workers
        if workers > 1:
            from repro.benchmark.parallel import run_parallel_study

            return run_parallel_study(
                self.config, self.store, workers=workers, progress=progress
            )
        added = 0
        for dataset_name in DATASET_NAMES:
            for error_type in ERROR_TYPES:
                added += self.run_dataset_error(
                    dataset_name, error_type, progress=progress
                )
        return added

    # -- version preparation ----------------------------------------------

    def _split(
        self, definition: DatasetDefinition, table: Table, repetition: int
    ) -> tuple[Table, np.ndarray, Table, np.ndarray]:
        rng = np.random.default_rng(
            _seed_for("split", definition.name, repetition, self.config.generation_seed)
        )
        n = min(self.config.n_sample, table.n_rows)
        sample = table.sample_rows(n, rng)
        train, test = train_test_split_table(sample, self.config.test_fraction, rng)
        train_labels = train.column(definition.label).astype(np.int64)
        test_labels = test.column(definition.label).astype(np.int64)
        return (
            train.drop_columns([definition.label]),
            train_labels,
            test.drop_columns([definition.label]),
            test_labels,
        )

    def _prepare_versions(
        self,
        definition: DatasetDefinition,
        table: Table,
        error_type: str,
        repetition: int,
    ) -> tuple[_Version, list[_Version]] | None:
        train, train_labels, test, test_labels = self._split(
            definition, table, repetition
        )
        if error_type == "missing_values":
            return self._missing_value_versions(
                train, train_labels, test, test_labels
            )
        # outliers and mislabels require complete tuples beforehand
        train_keep = ~train.missing_mask()
        test_keep = ~test.missing_mask()
        train = train.mask_rows(train_keep)
        train_labels = train_labels[train_keep]
        test = test.mask_rows(test_keep)
        test_labels = test_labels[test_keep]
        if len(np.unique(train_labels)) < 2 or train.n_rows < 30:
            return None
        if error_type == "outliers":
            return self._outlier_versions(train, train_labels, test, test_labels)
        return self._mislabel_versions(
            definition, train, train_labels, test, test_labels, repetition
        )

    def _missing_value_versions(
        self,
        train: Table,
        train_labels: np.ndarray,
        test: Table,
        test_labels: np.ndarray,
    ) -> tuple[_Version, list[_Version]] | None:
        complete = ~train.missing_mask()
        dirty_train = train.mask_rows(complete)
        dirty_train_labels = train_labels[complete]
        if len(np.unique(dirty_train_labels)) < 2 or dirty_train.n_rows < 30:
            return None
        # production cannot drop incomplete tuples at prediction time:
        # the dirty baseline imputes mean/dummy on the test set
        baseline_imputer = MissingValueRepair(
            numeric=NumericImputation.MEAN,
            categorical=CategoricalImputation.DUMMY,
        ).fit(dirty_train)
        dirty = _Version(
            name="dirty",
            detection="missing_values",
            train=dirty_train,
            train_labels=dirty_train_labels,
            test=baseline_imputer.transform(test),
            test_labels=test_labels,
        )
        repaired = []
        for name, repair in missing_value_repairs().items():
            repair.fit(train)
            repaired.append(
                _Version(
                    name=name,
                    detection="missing_values",
                    train=repair.transform(train),
                    train_labels=train_labels,
                    test=repair.transform(test),
                    test_labels=test_labels,
                )
            )
        return dirty, repaired

    def _outlier_versions(
        self,
        train: Table,
        train_labels: np.ndarray,
        test: Table,
        test_labels: np.ndarray,
    ) -> tuple[_Version, list[_Version]]:
        dirty = _Version(
            name="dirty",
            detection="none",
            train=train,
            train_labels=train_labels,
            test=test,
            test_labels=test_labels,
        )
        repaired = []
        for detector_name, detector in outlier_detectors(
            random_state=_seed_for("if", train.n_rows)
        ).items():
            detector.fit(train)
            train_detection = detector.apply(train)
            test_detection = detector.apply(test)
            for repair_name, repair in outlier_repairs().items():
                repair.fit(train, train_detection)
                repaired.append(
                    _Version(
                        name=repair_name,
                        detection=detector_name,
                        train=repair.transform(train, train_detection),
                        train_labels=train_labels,
                        test=repair.transform(test, test_detection),
                        test_labels=test_labels,
                    )
                )
        return dirty, repaired

    def _mislabel_versions(
        self,
        definition: DatasetDefinition,
        train: Table,
        train_labels: np.ndarray,
        test: Table,
        test_labels: np.ndarray,
        repetition: int,
    ) -> tuple[_Version, list[_Version]]:
        dirty = _Version(
            name="dirty",
            detection="cleanlab",
            train=train,
            train_labels=train_labels,
            test=test,
            test_labels=test_labels,
        )
        featurizer = TabularFeaturizer(
            feature_columns=definition.feature_columns(train)
        ).fit(train)
        detector = ConfidentLearningDetector(
            random_state=_seed_for("cl", definition.name, repetition)
        )
        detection = detector.detect(featurizer.transform(train), train_labels)
        flipped = LabelFlipRepair().repair(train_labels, detection.row_mask)
        repaired = _Version(
            name="flip_labels",
            detection="cleanlab",
            train=train,
            train_labels=flipped,
            test=test,
            test_labels=test_labels,
        )
        return dirty, [repaired]

    def _link_deltas(self, dirty: _Version, repaired: list[_Version]) -> None:
        """Attach a row-delta manifest to each repaired version.

        Parent candidates are the dirty version and every earlier
        repaired version of the same repetition; the parent with the
        cheapest delta (fewest changed cells, categorical train
        changes penalised) wins. Versions with no aligned candidate —
        e.g. every repair of a missing-values split, whose dirty
        baseline dropped incomplete train tuples — keep ``delta=None``
        and take the cold paths.
        """
        candidates = [dirty]
        for version in repaired:
            best: incremental.VersionDelta | None = None
            for parent in candidates:
                delta = incremental.version_delta(
                    parent.train,
                    parent.train_labels,
                    parent.test,
                    version.train,
                    version.train_labels,
                    version.test,
                    parent=parent,
                )
                if delta is None:
                    continue
                if best is None or delta.cost < best.cost:
                    best = delta
            version.delta = best
            candidates.append(version)

    # -- model evaluation ---------------------------------------------------

    def _features_for(
        self, definition: DatasetDefinition, version: _Version
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fitted (X_train, X_test) matrices, cached on the version."""
        if version.features is None:
            obs.counter("cache_miss", cache="featurizer")
            with obs.span("featurize", version=version.name):
                feature_columns = definition.feature_columns(version.train)
                artifacts = None
                scope = incremental.active()
                delta = version.delta
                if (
                    scope is not None
                    and delta is not None
                    and delta.parent.artifacts is not None
                ):
                    artifacts = incremental.incremental_featurize(
                        feature_columns,
                        delta.parent.artifacts,
                        delta,
                        version.train,
                        version.test,
                    )
                    scope.record("featurize", hit=artifacts is not None)
                if artifacts is None:
                    artifacts = incremental.featurize_version(
                        feature_columns, version.train, version.test
                    )
                version.artifacts = artifacts
                version.features = (artifacts.X_train, artifacts.X_test)
        else:
            obs.counter("cache_hit", cache="featurizer")
        return version.features

    def _masks_for(
        self, definition: DatasetDefinition, version: _Version
    ) -> list[GroupMasks]:
        """Group masks of the version's test table, cached on the version."""
        if version.masks is None:
            obs.counter("cache_miss", cache="masks")
            with obs.span("masks", version=version.name):
                specs = list(definition.group_specs) + list(
                    definition.intersectional_specs
                )
                scope = incremental.active()
                delta = version.delta
                if (
                    scope is not None
                    and delta is not None
                    and delta.parent.masks is not None
                ):
                    if incremental.masks_reusable(
                        self._spec_columns(definition), delta.test
                    ):
                        # masks are a pure function of the sensitive test
                        # columns, which the manifest shows unchanged
                        scope.record("masks", hit=True)
                        version.masks = delta.parent.masks
                        return version.masks
                    scope.record("masks", hit=False)
                version.masks = group_masks(version.test, specs)
        else:
            obs.counter("cache_hit", cache="masks")
        return version.masks

    @staticmethod
    def _spec_columns(definition: DatasetDefinition) -> tuple[str, ...]:
        """Test-table columns the group specs read."""
        columns: list[str] = []
        for spec in definition.group_specs:
            columns.append(spec.privileged.attribute)
        for spec in definition.intersectional_specs:
            columns.append(spec.first.privileged.attribute)
            columns.append(spec.second.privileged.attribute)
        return tuple(dict.fromkeys(columns))

    def _score_version(
        self,
        definition: DatasetDefinition,
        version: _Version,
        model_name: str,
        tuning_seed: int,
        technique: str,
    ) -> dict[str, object]:
        X_train, X_test = self._features_for(definition, version)
        seed = _seed_for("tune", model_name, tuning_seed)

        def tune_and_predict() -> tuple[dict, float, np.ndarray]:
            search = model_search(
                model_name,
                n_cv_folds=self.config.n_cv_folds,
                tuning_seed=seed,
                fast_path=self.config.grid_fast_path,
            )
            search.fit(X_train, version.train_labels)
            with obs.span("score", model=model_name, technique=technique):
                predictions = search.predict(X_test)
            return dict(search.best_params_), float(search.best_score_), predictions

        scope = incremental.active()
        if scope is not None:
            # the whole tuned evaluation is deterministic in its seed and
            # its input bytes: a repair that turns out to be a no-op (or
            # to coincide with an earlier version) reuses everything
            best_params, val_acc, predictions = scope.memo(
                "model_eval",
                (X_train, version.train_labels, X_test, version.test_labels),
                (model_name, seed, self.config.n_cv_folds, self.config.grid_fast_path),
                tune_and_predict,
            )
        else:
            best_params, val_acc, predictions = tune_and_predict()
        metrics: dict[str, object] = {
            f"{technique}_best_params": dict(best_params),
            f"{technique}_val_acc": val_acc,
            f"{technique}_test_acc": accuracy_score(version.test_labels, predictions),
            f"{technique}_test_f1": f1_score(version.test_labels, predictions),
        }
        groups = group_confusions_from_masks(
            version.test_labels, predictions, self._masks_for(definition, version)
        )
        for group in groups:
            metrics.update(result_store_keys(technique, group))
        return metrics

    def _evaluate_model(
        self,
        definition: DatasetDefinition,
        error_type: str,
        dirty: _Version,
        repaired_versions: list[_Version],
        model_name: str,
        repetition: int,
        seed: int,
        progress,
    ) -> int:
        pending = [
            version
            for version in repaired_versions
            if RunRecord(
                dataset=definition.name,
                error_type=error_type,
                detection=version.detection,
                repair=version.name,
                model=model_name,
                repetition=repetition,
                tuning_seed=seed,
            ).key
            not in self.store
        ]
        if not pending:
            return 0
        dirty_metrics = self._score_version(
            definition, dirty, model_name, seed, "dirty"
        )
        added = 0
        for version in pending:
            metrics = dict(dirty_metrics)
            metrics.update(
                self._score_version(definition, version, model_name, seed, version.name)
            )
            record = RunRecord(
                dataset=definition.name,
                error_type=error_type,
                detection=version.detection,
                repair=version.name,
                model=model_name,
                repetition=repetition,
                tuning_seed=seed,
                metrics=metrics,
            )
            self.store.add(record)
            added += 1
            if obs.is_enabled():
                self._emit_fairness(record)
            if progress is not None:
                progress(f"{record.key}: done")
        return added

    @staticmethod
    def _emit_fairness(record: RunRecord) -> None:
        """Emit the cell's fairness outcome as a domain trace event.

        One ``fairness`` event per record — accuracy plus per-group
        signed disparities for the audited metrics, dirty vs repaired
        — so live monitors and post-hoc audits see "cleaning hurt
        group G" without reopening the store. Events land in the trace
        sidecar only; record bytes are untouched. The surrounding
        ``cell_done`` heartbeat flushes the sink, so the event is
        visible mid-run without an extra flush here.
        """
        from repro.obs.audit import cell_fairness

        payload = cell_fairness(record.metrics, record.repair)
        if payload is None:
            return
        obs.event(
            "fairness",
            dataset=record.dataset,
            error_type=record.error_type,
            detection=record.detection,
            repair=record.repair,
            model=record.model,
            repetition=record.repetition,
            seed=record.tuning_seed,
            acc=payload["acc"],
            groups=payload["groups"],
        )
        obs.counter("fairness_cells")
        for gaps in payload["groups"].values():
            for metric, pair in gaps.items():
                if pair[1] is None:
                    continue
                obs.gauge(
                    "fairness_max_gap", abs(pair[1]), metric=metric
                )
                if pair[0] is not None and abs(pair[1]) > abs(pair[0]):
                    obs.counter("fairness_gap_widened", metric=metric)
