"""Model registry for the study.

The paper evaluates three model types, each tuned by cross-validation:
logistic regression (tuned regularisation), k-nearest neighbours
(tuned k) and gradient-boosted trees (tuned maximum depth; xgboost in
the paper, our from-scratch booster here — see DESIGN.md).
"""

from __future__ import annotations

from repro.ml import (
    GradientBoostedTreesClassifier,
    GridSearchCV,
    KNearestNeighborsClassifier,
    LogisticRegressionClassifier,
)

#: The study's model names.
MODEL_NAMES: tuple[str, ...] = ("log_reg", "knn", "xgboost")


def model_search(
    name: str, n_cv_folds: int = 3, tuning_seed: int = 0, fast_path: bool = True
) -> GridSearchCV:
    """Build the tuned cross-validated search for a model name.

    Args:
        name: One of ``log_reg``, ``knn``, ``xgboost``.
        n_cv_folds: Folds of the inner grid-search cross-validation.
        tuning_seed: Seed for fold assignment (the paper evaluates
            several tuning seeds per split).
        fast_path: Allow the search to use the estimator's
            ``score_grid`` shared-computation kernel. Selection is
            byte-identical either way; ``False`` forces the naive
            clone-per-candidate loop (the reference for identity
            tests and the naive-vs-fast benches).
    """
    if name == "log_reg":
        return GridSearchCV(
            LogisticRegressionClassifier(),
            {"C": [0.01, 0.1, 1.0, 10.0]},
            n_splits=n_cv_folds,
            random_state=tuning_seed,
            use_fast_path=fast_path,
        )
    if name == "knn":
        return GridSearchCV(
            KNearestNeighborsClassifier(),
            {"n_neighbors": [5, 15, 31]},
            n_splits=n_cv_folds,
            random_state=tuning_seed,
            use_fast_path=fast_path,
        )
    if name == "xgboost":
        return GridSearchCV(
            GradientBoostedTreesClassifier(
                n_estimators=20, learning_rate=0.2, random_state=tuning_seed
            ),
            {"max_depth": [2, 4]},
            n_splits=n_cv_folds,
            random_state=tuning_seed,
            use_fast_path=fast_path,
        )
    raise ValueError(f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}")
