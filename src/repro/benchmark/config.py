"""Study configuration.

The paper's full-scale settings sample 15,000 records per run, repeat
20 splits with 5 tuning seeds each (100 models per configuration) and
evaluate 26,400 models in total. :meth:`StudyConfig.paper_scale`
reproduces those settings; :meth:`StudyConfig.laptop_scale` (the
default) shrinks them so the complete study runs on a laptop in
minutes while preserving the experimental structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of an experimental study.

    Attributes:
        n_sample: Records sampled from the dataset per repetition
            (capped at the generated table size).
        test_fraction: Fraction of the sample held out for testing.
        n_repetitions: Number of train/test splits per configuration.
        n_tuning_seeds: Hyperparameter-search seeds evaluated per split.
        n_cv_folds: Cross-validation folds inside the grid search.
        alpha: Base significance threshold for the t-tests.
        dataset_sizes: Rows to generate per dataset (defaults to a
            laptop-friendly size; use Table I sizes for full scale).
        generation_seed: Seed for dataset generation.
        models: Model names to evaluate (from the model registry).
        workers: Worker processes for study execution. ``1`` runs
            serially in-process; larger values shard pending work
            units across a multiprocessing pool (results are
            byte-identical to a serial run — every random draw is
            seeded from configuration coordinates, never from
            execution order).
        grid_fast_path: Let the inner grid search evaluate whole
            hyperparameter grids through the estimators'
            ``score_grid`` shared-computation kernels (one pass per
            fold instead of one cold fit per candidate). Selected
            hyperparameters and study records are byte-identical
            either way; ``False`` forces the naive loop.
        incremental: Reuse computation across the cleaned versions of
            a repetition through :mod:`repro.ml.incremental`: row-delta
            manifests pick each repaired version's cheapest parent,
            featurisation patches the parent's one-hot block, and the
            estimators share content-addressed structures (kNN
            distances, booster presorts, warm logistic starts) plus
            whole tuned-model evaluations when inputs coincide byte
            for byte. Every reuse path is byte-identical to the cold
            refit or declines and falls back, so stores match a cold
            run bit for bit; ``False`` (the ``--no-incremental``
            escape hatch) disables the scope entirely.
    """

    n_sample: int = 1_000
    test_fraction: float = 0.3
    n_repetitions: int = 6
    n_tuning_seeds: int = 1
    n_cv_folds: int = 3
    alpha: float = 0.05
    dataset_sizes: dict[str, int] = field(
        default_factory=lambda: {
            "adult": 4_000,
            "folk": 6_000,
            "credit": 5_000,
            "german": 1_000,
            "heart": 5_000,
        }
    )
    generation_seed: int = 0
    models: tuple[str, ...] = ("log_reg", "knn", "xgboost")
    workers: int = 1
    grid_fast_path: bool = True
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.n_sample < 10:
            raise ValueError(f"n_sample must be >= 10, got {self.n_sample}")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError(
                f"test_fraction must be in (0, 1), got {self.test_fraction}"
            )
        if self.n_repetitions < 1:
            raise ValueError(
                f"n_repetitions must be >= 1, got {self.n_repetitions}"
            )
        if self.n_tuning_seeds < 1:
            raise ValueError(
                f"n_tuning_seeds must be >= 1, got {self.n_tuning_seeds}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def runs_per_configuration(self) -> int:
        """Models trained and evaluated per configuration."""
        return self.n_repetitions * self.n_tuning_seeds

    def dataset_size(self, name: str) -> int:
        """Rows to generate for the named dataset."""
        return self.dataset_sizes.get(name, 5_000)

    @staticmethod
    def laptop_scale() -> "StudyConfig":
        """Scaled-down defaults that finish in minutes."""
        return StudyConfig()

    @staticmethod
    def paper_scale() -> "StudyConfig":
        """The paper's full-scale settings (hours of compute)."""
        return StudyConfig(
            n_sample=15_000,
            n_repetitions=20,
            n_tuning_seeds=5,
            n_cv_folds=5,
            dataset_sizes={
                "adult": 48_844,
                "folk": 378_817,
                "credit": 150_000,
                "german": 1_000,
                "heart": 70_000,
            },
        )

    @staticmethod
    def smoke_scale() -> "StudyConfig":
        """Minimal settings for tests."""
        return StudyConfig(
            n_sample=300,
            n_repetitions=2,
            dataset_sizes={
                "adult": 800,
                "folk": 800,
                "credit": 800,
                "german": 600,
                "heart": 800,
            },
        )
