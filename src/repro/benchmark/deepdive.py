"""The Section VI deep dive.

Three analyses over the classified configuration impacts:

1. *Case analysis* — a case is (fairness metric, dataset+sensitive
   attribute, error type); for each case, does any cleaning technique
   avoid worsening fairness / improve fairness / improve fairness and
   accuracy simultaneously?
2. *Technique analysis* — which repair and detection techniques
   produce the most fairness gains (dummy vs mode imputation; outlier
   detector comparison)?
3. *Model analysis* (Table XIV) — per model, how often does cleaning
   worsen fairness, improve fairness, and improve both fairness and
   accuracy?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.impact import ConfigurationImpact
from repro.stats.impact import Impact


@dataclass(frozen=True)
class CaseSummary:
    """Outcome of the beneficial-technique search for one case."""

    metric_name: str
    dataset: str
    group_key: str
    error_type: str
    n_configurations: int
    has_non_worsening: bool
    has_fairness_improving: bool
    has_win_win: bool


@dataclass(frozen=True)
class ModelSummary:
    """One row of Table XIV."""

    model: str
    n_configurations: int
    fairness_worse: int
    fairness_better: int
    both_better: int

    @property
    def fairness_worse_fraction(self) -> float:
        """Share of configurations where cleaning worsens fairness."""
        return self.fairness_worse / self.n_configurations

    @property
    def fairness_better_fraction(self) -> float:
        """Share of configurations where cleaning improves fairness."""
        return self.fairness_better / self.n_configurations

    @property
    def both_better_fraction(self) -> float:
        """Share of configurations improving fairness and accuracy."""
        return self.both_better / self.n_configurations


class DeepDive:
    """Aggregates classified configuration impacts (Section VI)."""

    def __init__(self, impacts: list[ConfigurationImpact]) -> None:
        self.impacts = impacts

    def cases(self) -> list[CaseSummary]:
        """The case analysis over (metric, dataset+attribute, error)."""
        by_case: dict[tuple[str, str, str, str], list[ConfigurationImpact]] = {}
        for impact in self.impacts:
            key = (
                impact.metric_name,
                impact.dataset,
                impact.group_key,
                impact.error_type,
            )
            by_case.setdefault(key, []).append(impact)
        summaries = []
        for (metric_name, dataset, group_key, error_type), members in sorted(
            by_case.items()
        ):
            summaries.append(
                CaseSummary(
                    metric_name=metric_name,
                    dataset=dataset,
                    group_key=group_key,
                    error_type=error_type,
                    n_configurations=len(members),
                    has_non_worsening=any(
                        m.fairness_impact is not Impact.WORSE for m in members
                    ),
                    has_fairness_improving=any(
                        m.fairness_impact is Impact.BETTER for m in members
                    ),
                    has_win_win=any(
                        m.fairness_impact is Impact.BETTER
                        and m.accuracy_impact is Impact.BETTER
                        for m in members
                    ),
                )
            )
        return summaries

    def case_counts(self) -> dict[str, int]:
        """Aggregate counts over all cases (the 37/40-style numbers)."""
        cases = self.cases()
        return {
            "total": len(cases),
            "non_worsening": sum(case.has_non_worsening for case in cases),
            "fairness_improving": sum(case.has_fairness_improving for case in cases),
            "win_win": sum(case.has_win_win for case in cases),
        }

    def _count_by(self, fieldname: str, predicate) -> dict[str, int]:
        counts: dict[str, int] = {}
        for impact in self.impacts:
            if predicate(impact):
                key = getattr(impact, fieldname)
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def fairness_improvements_by_repair(self) -> dict[str, int]:
        """Fairness-improving configuration counts per repair method."""
        return self._count_by(
            "repair", lambda i: i.fairness_impact is Impact.BETTER
        )

    def fairness_worsenings_by_detection(self) -> dict[str, int]:
        """Fairness-worsening configuration counts per detection method."""
        return self._count_by(
            "detection", lambda i: i.fairness_impact is Impact.WORSE
        )

    def detection_worsening_rates(self) -> dict[str, float]:
        """Per-detection share of configurations that worsen fairness."""
        totals: dict[str, int] = {}
        worse: dict[str, int] = {}
        for impact in self.impacts:
            totals[impact.detection] = totals.get(impact.detection, 0) + 1
            if impact.fairness_impact is Impact.WORSE:
                worse[impact.detection] = worse.get(impact.detection, 0) + 1
        return {
            name: worse.get(name, 0) / total
            for name, total in sorted(totals.items())
        }

    def dummy_vs_mode_imputation(self) -> dict[str, int]:
        """Fairness improvements for dummy vs non-dummy categorical imputation."""
        improvements = self.fairness_improvements_by_repair()
        dummy = sum(
            count
            for name, count in improvements.items()
            if name.endswith("_dummy")
        )
        other = sum(
            count
            for name, count in improvements.items()
            if name.startswith("impute_") and not name.endswith("_dummy")
        )
        return {"dummy": dummy, "other": other}

    def accuracy_leaderboard(self) -> dict[tuple[str, str], str]:
        """Best-accuracy model per (dataset, error type).

        Supports the paper's §VI observation that logistic regression
        provides the highest accuracy on most tasks, with xgboost ahead
        on a few dataset/error combinations.
        """
        best: dict[tuple[str, str], tuple[str, float]] = {}
        for impact in self.impacts:
            key = (impact.dataset, impact.error_type)
            candidate = (impact.model, impact.mean_clean_accuracy)
            if key not in best or candidate[1] > best[key][1]:
                best[key] = candidate
        return {key: model for key, (model, __) in sorted(best.items())}

    def model_summaries(self) -> list[ModelSummary]:
        """Table XIV: per-model impact summary."""
        by_model: dict[str, list[ConfigurationImpact]] = {}
        for impact in self.impacts:
            by_model.setdefault(impact.model, []).append(impact)
        summaries = []
        for model, members in sorted(by_model.items()):
            summaries.append(
                ModelSummary(
                    model=model,
                    n_configurations=len(members),
                    fairness_worse=sum(
                        m.fairness_impact is Impact.WORSE for m in members
                    ),
                    fairness_better=sum(
                        m.fairness_impact is Impact.BETTER for m in members
                    ),
                    both_better=sum(
                        m.fairness_impact is Impact.BETTER
                        and m.accuracy_impact is Impact.BETTER
                        for m in members
                    ),
                )
            )
        return summaries
