"""Zero-copy dataset transport over POSIX shared memory.

The study grid ships every generated dataset to every worker. The
default ("pickle") transport serialises the whole :class:`Table` into
each task, costing O(dataset x units) bytes of copying; this module
publishes each dataset **once** into ``multiprocessing.shared_memory``
segments and hands workers a tiny picklable :class:`TableRef` instead.
Workers attach by segment name and reconstruct the table as zero-copy
numpy views — no per-task serialisation, no per-worker regeneration,
one physical copy of the data regardless of worker count.

Layout — two segments per table, both written by the parent before any
worker sees the ref and read-only ever after:

- the *numeric block*: all float64 columns stacked as one C-order
  ``(n_numeric_columns, n_rows)`` array (NaN = missing). Workers take
  row-slices of a view over the segment buffer, so a column costs a
  16-byte view object, not a copy.
- the *code block*: all categorical columns as one ``(n_categorical,
  n_rows)`` int32 array of dictionary codes with their per-column
  string pools carried (pickled, they are tiny) inside the ref;
  ``-1`` = missing. Since tables store categorical columns as int32
  codes natively, publishing is a straight ``memcpy`` of each codes
  array and attachment wraps zero-copy row views back into
  :class:`~repro.tabular.encoding.CategoricalColumn` objects — the
  transport performs no encoding and no string materialisation at
  all.

Lifecycle — the parent owns every segment. :class:`ShmRegistry` leases
a published table to each work unit that needs it and unlinks the
segments when the last lease is released (unit merged, recovered or
poisoned) or, unconditionally, when the registry closes — including
on crash paths, so no ``/dev/shm`` segment outlives the study run.
Workers only ever ``close()`` their attachment; they never unlink.

Availability — POSIX shared memory plus the ``fork`` start method
(CPython < 3.13 registers segments with the per-process resource
tracker on *attach* as well as create, bpo-39959; under fork all
processes share the parent's tracker and double-registration is
harmless, but a spawned worker's own tracker would unlink segments it
merely attached when the worker exits). :func:`shared_memory_available`
probes both; the executor's ``auto`` transport falls back to pickle
when the probe fails.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro import obs
from repro.tabular.encoding import CategoricalColumn
from repro.tabular.schema import ColumnKind, Schema
from repro.tabular.table import Table

#: Names of every segment created by this process and not yet
#: unlinked. Purely observational (tests assert emptiness after runs);
#: cleanup itself is the ShmRegistry's job.
_LIVE_SEGMENTS: set[str] = set()


def live_segment_names() -> frozenset[str]:
    """Names of segments this process created and has not unlinked."""
    return frozenset(_LIVE_SEGMENTS)


def shared_memory_available() -> bool:
    """Probe whether the shm transport can be used on this platform.

    Requires working POSIX shared memory *and* the ``fork`` start
    method (see the module docstring for why spawn is unsafe before
    CPython 3.13).
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=1)
    except (OSError, ValueError):
        return False
    try:
        probe.close()
    finally:
        try:
            probe.unlink()
        except OSError:
            pass
    return True


@dataclass(frozen=True)
class TableRef:
    """A picklable handle to a table published in shared memory.

    Attributes:
        schema: The table's schema (plain dataclasses, cheap to pickle).
        n_rows: Row count (segment shapes are derived from it).
        numeric_names: Numeric column names in numeric-block row order.
        numeric_segment: Segment name of the numeric block (None when
            the table has no numeric columns).
        categorical_names: Categorical column names in code-block row
            order.
        codes_segment: Segment name of the code block (None when the
            table has no categorical columns).
        categories: Per categorical column, the string pool its codes
            index into (missing is code -1, not a pool entry); exactly
            the column's native ``CategoricalColumn.pool``.
    """

    schema: Schema
    n_rows: int
    numeric_names: tuple[str, ...]
    numeric_segment: str | None
    categorical_names: tuple[str, ...]
    codes_segment: str | None
    categories: tuple[tuple[str, ...], ...]

    @property
    def segment_names(self) -> tuple[str, ...]:
        """All segment names backing this ref."""
        return tuple(
            name
            for name in (self.numeric_segment, self.codes_segment)
            if name is not None
        )


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    # zero-byte segments are invalid; a 1-byte one keeps the code path
    # uniform for degenerate (empty) tables
    segment = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    _LIVE_SEGMENTS.add(segment.name)
    return segment


def publish_table(table: Table) -> tuple[TableRef, list[shared_memory.SharedMemory]]:
    """Publish a table's columns into shared-memory segments.

    Returns the picklable ref plus the created segment handles; the
    caller (normally :class:`ShmRegistry`) owns the handles and must
    eventually :func:`unlink_segments` them. The published bytes are a
    faithful copy: attaching reconstructs a table compare-equal to the
    original, which is what keeps the byte-identity guarantee intact
    across transports.
    """
    schema = table.schema
    numeric_names = tuple(
        spec.name for spec in schema.columns if spec.kind is ColumnKind.NUMERIC
    )
    categorical_names = tuple(
        spec.name
        for spec in schema.columns
        if spec.kind is ColumnKind.CATEGORICAL
    )
    n_rows = table.n_rows
    segments: list[shared_memory.SharedMemory] = []
    numeric_segment = None
    if numeric_names:
        block_shape = (len(numeric_names), n_rows)
        segment = _create_segment(
            int(np.dtype(np.float64).itemsize * len(numeric_names) * n_rows)
        )
        segments.append(segment)
        numeric_segment = segment.name
        block = np.ndarray(block_shape, dtype=np.float64, buffer=segment.buf)
        for row, name in enumerate(numeric_names):
            block[row, :] = table._column_view(name)
    codes_segment = None
    categories: list[tuple[str, ...]] = []
    if categorical_names:
        block_shape = (len(categorical_names), n_rows)
        segment = _create_segment(
            int(np.dtype(np.int32).itemsize * len(categorical_names) * n_rows)
        )
        segments.append(segment)
        codes_segment = segment.name
        block = np.ndarray(block_shape, dtype=np.int32, buffer=segment.buf)
        for row, name in enumerate(categorical_names):
            column = table.categorical(name)
            block[row, :] = column.codes
            categories.append(column.pool)
    ref = TableRef(
        schema=schema,
        n_rows=n_rows,
        numeric_names=numeric_names,
        numeric_segment=numeric_segment,
        categorical_names=categorical_names,
        codes_segment=codes_segment,
        categories=tuple(categories),
    )
    obs.counter("shm_segments_published", len(segments))
    obs.counter(
        "shm_bytes_published", float(sum(segment.size for segment in segments))
    )
    obs.gauge("shm_live_segments", float(len(_LIVE_SEGMENTS)))
    return ref, segments


def attach_table(ref: TableRef) -> tuple[Table, list[shared_memory.SharedMemory]]:
    """Attach to a published table and rebuild zero-copy column views.

    Numeric columns are read-only views straight into the segment
    buffer (no copy); categorical columns wrap read-only int32 code
    views in :class:`CategoricalColumn` objects over the pools carried
    by the ref — also zero-copy, since codes are the table's native
    representation. The returned segment handles must stay referenced
    as long as the table is used — dropping them lets the mmap close
    under the live views — and must be ``close()``d, never unlinked,
    by the attaching process.
    """
    columns: dict[str, np.ndarray | CategoricalColumn] = {}
    handles: list[shared_memory.SharedMemory] = []
    if ref.numeric_segment is not None:
        segment = shared_memory.SharedMemory(name=ref.numeric_segment)
        handles.append(segment)
        block = np.ndarray(
            (len(ref.numeric_names), ref.n_rows),
            dtype=np.float64,
            buffer=segment.buf,
        )
        block.flags.writeable = False
        for row, name in enumerate(ref.numeric_names):
            columns[name] = block[row]
    if ref.codes_segment is not None:
        segment = shared_memory.SharedMemory(name=ref.codes_segment)
        handles.append(segment)
        block = np.ndarray(
            (len(ref.categorical_names), ref.n_rows),
            dtype=np.int32,
            buffer=segment.buf,
        )
        block.flags.writeable = False
        for row, name in enumerate(ref.categorical_names):
            columns[name] = CategoricalColumn(
                block[row], ref.categories[row], validate=False
            )
    obs.counter("shm_tables_attached")
    return Table.from_trusted_columns(ref.schema, columns), handles


def unlink_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Close and unlink owned segments (idempotent, swallow-missing)."""
    for segment in segments:
        try:
            segment.close()
        except BufferError:
            # live views into the buffer (parent-side publishes release
            # their block views before this, so only attachments hit it)
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        _LIVE_SEGMENTS.discard(segment.name)
        obs.counter("shm_segments_unlinked")
    # merged by max at compaction, so the compacted trace keeps the
    # peak concurrently-live segment count of the run
    obs.gauge("shm_live_segments", float(len(_LIVE_SEGMENTS)))


class ShmRegistry:
    """Parent-side lease accounting for published tables.

    One entry per dataset cache key; each pending work unit that needs
    the dataset holds one lease. The table is published on the first
    lease and its segments are unlinked when the last lease is
    released — or, for whatever is left (crashes, aborts, poisoned
    retries), when the registry is closed. Use as a context manager so
    the close runs on every exit path.
    """

    def __init__(self) -> None:
        self._entries: dict[Any, tuple[TableRef, list[shared_memory.SharedMemory]]] = {}
        self._leases: dict[Any, int] = {}
        # Start the resource tracker NOW, before any worker pool forks:
        # forked workers then inherit (and share) this process's
        # tracker, whose name set is idempotent under the attach-side
        # re-registration of bpo-39959. If the first segment were
        # created only after the fork, each worker would lazily spawn
        # its *own* tracker on attach and "clean up" — i.e. warn about
        # and unlink — segments it merely borrowed.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()

    def lease(self, key: Any, table: Table) -> TableRef:
        """Take one lease on ``key``, publishing ``table`` if new."""
        if key not in self._entries:
            self._entries[key] = publish_table(table)
        self._leases[key] = self._leases.get(key, 0) + 1
        return self._entries[key][0]

    def release(self, key: Any) -> None:
        """Drop one lease; unlink the segments when none remain."""
        if key not in self._leases:
            return
        self._leases[key] -= 1
        if self._leases[key] <= 0:
            _ref, segments = self._entries.pop(key)
            del self._leases[key]
            unlink_segments(segments)

    def close(self) -> None:
        """Unlink every remaining segment, regardless of lease counts."""
        for _ref, segments in self._entries.values():
            unlink_segments(segments)
        self._entries.clear()
        self._leases.clear()

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._entries)
