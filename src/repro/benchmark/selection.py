"""Fairness-aware cleaning-method selection (the paper's §VII vision).

The paper's closing argument: since almost every case admits at least
one cleaning technique that does not worsen fairness, a *principled
selection methodology* can mitigate the damage of automated cleaning.
:class:`FairnessAwareSelector` implements that methodology on top of
the impact analysis: for a given case it recommends the cleaning
configuration with the best fairness outcome, tie-broken by accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.impact import ConfigurationImpact
from repro.stats.impact import Impact

_FAIRNESS_RANK = {Impact.BETTER: 0, Impact.INSIGNIFICANT: 1, Impact.WORSE: 2}
_ACCURACY_RANK = {Impact.BETTER: 0, Impact.INSIGNIFICANT: 1, Impact.WORSE: 2}


@dataclass(frozen=True)
class Recommendation:
    """A selected cleaning configuration for one case."""

    dataset: str
    group_key: str
    metric_name: str
    error_type: str
    detection: str
    repair: str
    model: str
    fairness_impact: Impact
    accuracy_impact: Impact

    @property
    def safe(self) -> bool:
        """True when the recommendation does not worsen fairness."""
        return self.fairness_impact is not Impact.WORSE


class FairnessAwareSelector:
    """Selects cleaning techniques that do not hurt fairness."""

    def __init__(self, impacts: list[ConfigurationImpact]) -> None:
        self.impacts = impacts

    def recommend(
        self,
        dataset: str,
        group_key: str,
        metric_name: str,
        error_type: str,
        model: str | None = None,
    ) -> Recommendation | None:
        """Best (fairness-first) configuration for one case, or None.

        Candidates are ranked by fairness impact (better >
        insignificant > worse), then accuracy impact, then mean clean
        accuracy. Returns None when the case has no evaluated
        configurations.
        """
        candidates = [
            impact
            for impact in self.impacts
            if impact.dataset == dataset
            and impact.group_key == group_key
            and impact.metric_name == metric_name
            and impact.error_type == error_type
            and (model is None or impact.model == model)
        ]
        if not candidates:
            return None
        best = min(
            candidates,
            key=lambda impact: (
                _FAIRNESS_RANK[impact.fairness_impact],
                _ACCURACY_RANK[impact.accuracy_impact],
                -impact.mean_clean_accuracy,
            ),
        )
        return Recommendation(
            dataset=best.dataset,
            group_key=best.group_key,
            metric_name=best.metric_name,
            error_type=best.error_type,
            detection=best.detection,
            repair=best.repair,
            model=best.model,
            fairness_impact=best.fairness_impact,
            accuracy_impact=best.accuracy_impact,
        )

    def recommend_all(self) -> list[Recommendation]:
        """Recommendations for every case present in the impacts."""
        cases = sorted(
            {
                (
                    impact.dataset,
                    impact.group_key,
                    impact.metric_name,
                    impact.error_type,
                )
                for impact in self.impacts
            }
        )
        out = []
        for dataset, group_key, metric_name, error_type in cases:
            recommendation = self.recommend(
                dataset, group_key, metric_name, error_type
            )
            if recommendation is not None:
                out.append(recommendation)
        return out

    def safety_rate(self) -> float:
        """Share of cases where the selector avoids worsening fairness."""
        recommendations = self.recommend_all()
        if not recommendations:
            return float("nan")
        return sum(r.safe for r in recommendations) / len(recommendations)
