"""Sharded parallel execution of the study grid.

The study is an embarrassingly parallel grid of independent
``(dataset, error_type, repetition, model, tuning_seed)`` cells — the
structure CleanML and FairPrep exploit as well. Every random draw in
the runner is seeded by hashes of configuration coordinates
(:func:`repro.benchmark.runner._seed_for`), never by execution order,
so distributing cells across processes changes nothing about the
results: the headline guarantee of this module is that parallel and
serial execution produce **byte-identical** result stores.

Three pieces cooperate:

- :func:`plan_work_units` enumerates every pending cell by consulting
  the resumable store first (completed cells are never recomputed,
  including cells recovered from a journal shard of a killed run) and
  groups them into :class:`WorkUnit` shards that share one expensive
  version preparation (dataset, error_type, repetition).
- :func:`run_parallel_study` ships units to a worker pool selected by
  :attr:`ExecutorOptions.backend`: a ``multiprocessing`` pool (stdlib
  only; the fork start method where available — it is cheap and does
  not re-import the parent — with a spawn fallback elsewhere), a
  thread pool for GIL-releasing workloads, or a serial in-process
  loop. Process-pool workers receive datasets over the
  :attr:`ExecutorOptions.transport` — zero-copy shared-memory refs
  (:mod:`repro.benchmark.transport`) where available, pickled tables
  otherwise — and every worker appends each completed record to its
  own JSONL journal shard (``{stem}.w{pid}.jsonl``; thread workers
  ``{stem}.w{pid}.t{tid}.jsonl``) the moment it exists, so a killed
  run loses at most the in-flight cells.
- The parent merges worker results into the master store and calls
  :meth:`ResultStore.save`, which compacts journal shards into the
  single ``{stem}.json``.

The executor is additionally *crash-safe by construction* (the chaos
suite under ``tests/chaos`` proves it by injecting faults through
:mod:`repro.testing`):

- A unit whose worker raises (or simulates a crash) is **re-queued**
  with capped exponential backoff whose jitter is seeded from the
  unit's coordinates — never from wall-clock randomness — and, before
  the retry, the parent replays all journal shards so records the dead
  worker already appended are recovered instead of recomputed.
- A unit still failing after :attr:`ExecutorOptions.max_retries`
  retries is **poisoned**: recorded in the ``{stem}.failures.jsonl``
  sidecar and skipped, so one pathological cell cannot abort the study.
- :attr:`ExecutorOptions.cell_timeout` arms a ``SIGALRM``-based
  watchdog around every cell, turning hangs into retryable
  :class:`CellTimeoutError` failures.
- :attr:`ExecutorOptions.fsync_journal` makes journal appends durable
  against power loss, and :meth:`ResultStore.verify` audits the final
  on-disk state.

Fault injection hooks: an :attr:`ExecutorOptions.fault_plan` object
(see :class:`repro.testing.FaultPlan`) supplies per-unit injectors
whose ``on_cell`` / ``before_append`` / ``after_append`` callbacks may
raise or sleep at deterministic points; the executor itself is
agnostic of the fault kinds.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor, as_completed
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

from repro import obs
from repro.obs.profile import profile_memory
from repro.benchmark.config import StudyConfig
from repro.benchmark.results import JournalWriter, ResultStore, RunRecord
from repro.benchmark.runner import ERROR_TYPES, Cell, ExperimentRunner
from repro.benchmark.transport import (
    ShmRegistry,
    TableRef,
    attach_table,
    shared_memory_available,
)
from repro.cleaning.strategies import (
    MISSING_VALUE_REPAIRS,
    OUTLIER_DETECTORS,
    OUTLIER_REPAIRS,
)
from repro.datasets import dataset_definition, load_dataset

#: (detection, repair) pairs the runner produces per error type, in
#: registry order. Used to derive the expected record keys of a cell
#: without preparing any data.
_VARIANTS: dict[str, tuple[tuple[str, str], ...]] = {
    "missing_values": tuple(
        ("missing_values", repair) for repair in MISSING_VALUE_REPAIRS
    ),
    "outliers": tuple(
        (detector, repair)
        for detector in OUTLIER_DETECTORS
        for repair in OUTLIER_REPAIRS
    ),
    "mislabels": (("cleanlab", "flip_labels"),),
}


def expected_cell_keys(
    dataset: str, error_type: str, repetition: int, model: str, tuning_seed: int
) -> list[str]:
    """Store keys a fully-evaluated cell contributes, in registry order."""
    if error_type not in _VARIANTS:
        raise ValueError(
            f"unknown error type {error_type!r}; valid: {ERROR_TYPES}"
        )
    return [
        RunRecord(
            dataset=dataset,
            error_type=error_type,
            detection=detection,
            repair=repair,
            model=model,
            repetition=repetition,
            tuning_seed=tuning_seed,
        ).key
        for detection, repair in _VARIANTS[error_type]
    ]


@dataclass(frozen=True)
class WorkUnit:
    """Pending cells sharing one version preparation.

    Attributes:
        dataset: Dataset name (resolved via the registry in the worker).
        error_type: Error type of the unit.
        repetition: Split index whose versions the unit prepares once.
        cells: Pending ``(model, tuning_seed)`` cells to evaluate.
        done_keys: Record keys of this repetition already in the store;
            workers pre-seed their shard store with them so partially
            completed cells skip the finished repair variants.
    """

    dataset: str
    error_type: str
    repetition: int
    cells: tuple[Cell, ...]
    done_keys: tuple[str, ...] = ()


def plan_work_units(
    config: StudyConfig,
    store: ResultStore,
    datasets: Sequence[str] | None = None,
    error_types: Sequence[str] | None = None,
    models: Sequence[str] | None = None,
) -> list[WorkUnit]:
    """Enumerate every pending cell and shard by shared preparation.

    A cell is pending when any of its expected record keys is missing
    from ``store``; error types a dataset does not support are skipped
    entirely (mirroring :meth:`ExperimentRunner.run_definition`).
    """
    if datasets is None:
        from repro.datasets import DATASET_NAMES

        datasets = DATASET_NAMES
    error_types = tuple(error_types) if error_types is not None else ERROR_TYPES
    models = tuple(models) if models is not None else config.models
    units: list[WorkUnit] = []
    for dataset in datasets:
        definition = dataset_definition(dataset)
        for error_type in error_types:
            if error_type not in ERROR_TYPES:
                raise ValueError(
                    f"unknown error type {error_type!r}; valid: {ERROR_TYPES}"
                )
            if error_type not in definition.error_types:
                continue
            for repetition in range(config.n_repetitions):
                pending: list[Cell] = []
                done: list[str] = []
                for model in models:
                    for seed in range(config.n_tuning_seeds):
                        keys = expected_cell_keys(
                            dataset, error_type, repetition, model, seed
                        )
                        done.extend(key for key in keys if key in store)
                        if any(key not in store for key in keys):
                            pending.append((model, seed))
                if pending:
                    units.append(
                        WorkUnit(
                            dataset=dataset,
                            error_type=error_type,
                            repetition=repetition,
                            cells=tuple(pending),
                            done_keys=tuple(done),
                        )
                    )
    return units


class CellTimeoutError(RuntimeError):
    """A cell exceeded :attr:`ExecutorOptions.cell_timeout` seconds."""


class StudyAborted(RuntimeError):
    """The run was deliberately aborted mid-study.

    Raised by the executor when :attr:`ExecutorOptions.abort_after_units`
    is set — the chaos harness's deterministic stand-in for ``kill -9``
    of the parent: the compacted save never happens and recovery must
    come from the journal shards on the next run.
    """


#: Valid values of :attr:`ExecutorOptions.backend`.
BACKENDS = ("process", "thread", "serial")

#: Valid values of :attr:`ExecutorOptions.transport`.
TRANSPORTS = ("auto", "shm", "pickle")


@dataclass(frozen=True)
class ExecutorOptions:
    """Execution and fault-tolerance knobs of :func:`run_parallel_study`.

    Attributes:
        backend: Where work units execute. ``"process"`` (default) uses
            a ``multiprocessing`` pool; ``"thread"`` a
            ``ThreadPoolExecutor`` in the parent process — zero
            transport cost, worthwhile when the hot path releases the
            GIL (numpy kernels, scipy optimisers); ``"serial"`` runs
            units in-process one by one regardless of ``workers``.
            The result store is byte-identical across all three.
        transport: How generated datasets reach process-pool workers.
            ``"shm"`` publishes each dataset once into shared-memory
            segments (see :mod:`repro.benchmark.transport`) and ships
            workers a zero-copy ref; ``"pickle"`` loads the dataset in
            the parent and pickles the table into every task;
            ``"auto"`` (default) picks shm when available, else
            pickle. Ignored by the thread and serial backends, which
            share the parent's address space.
        max_retries: Re-queue attempts per failing work unit before it
            is poisoned (recorded in ``{stem}.failures.jsonl`` and
            skipped rather than aborting the study).
        cell_timeout: Wall-clock seconds one ``(model, tuning_seed)``
            cell may take before a ``SIGALRM`` watchdog raises
            :class:`CellTimeoutError` inside the worker (None
            disables). Off the main thread — thread backend — or on
            platforms without ``SIGALRM``, a monotonic post-hoc
            deadline check stands in for the watchdog: it cannot
            interrupt a hung cell, but an overrunning cell still fails
            with :class:`CellTimeoutError` once it returns (the
            ``cell_deadline_fallback`` counter in :mod:`repro.obs`
            records every such degradation).
        fsync_journal: fsync every journal append before acknowledging
            it (durable against power loss, slower).
        backoff_base: First retry delay in seconds; each further
            attempt doubles it. ``0`` disables sleeping (used by the
            chaos tests to stay fast).
        backoff_cap: Upper bound on any single retry delay.
        backoff_seed: Seed of the deterministic backoff jitter. The
            jitter is a pure function of (seed, unit coordinates,
            attempt) — no wall-clock randomness anywhere.
        fault_plan: Optional fault-injection plan (an object with a
            ``unit_injector(dataset, error_type, repetition, attempt,
            cell_timeout)`` method, see :class:`repro.testing.FaultPlan`).
            Production runs leave this None.
        abort_after_units: Raise :class:`StudyAborted` in the parent
            after merging this many units — a deterministic simulated
            kill point for crash-recovery tests.
        trace: Emit structured trace events (see :mod:`repro.obs`).
            The parent writes executor events (retries, poisonings,
            backoff sleeps, unit latencies) to ``{stem}.trace.jsonl``;
            each worker traces its units into
            ``{stem}.trace.w{pid}.jsonl``, compacted into the parent
            shard by :meth:`ResultStore.save`. Study results are
            byte-identical with tracing on or off.
        profile_memory: Sample memory telemetry (tracemalloc deltas +
            RSS gauges, see :mod:`repro.obs.profile`) at the
            unit/cell/featurize span boundaries. Requires ``trace``
            (the samples land in the trace sidecars); meaningfully
            slower than plain tracing because tracemalloc instruments
            every allocation. Results stay byte-identical.
        ledger: Append this run's fairness audit to the
            ``{stem}.ledger.jsonl`` run ledger after a successful save
            (see :mod:`repro.obs.ledger`). The ledger is a sidecar —
            store bytes are identical with it on or off.
    """

    backend: str = "process"
    transport: str = "auto"
    max_retries: int = 2
    cell_timeout: float | None = None
    fsync_journal: bool = False
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_seed: int = 0
    fault_plan: Any = None
    abort_after_units: int | None = None
    trace: bool = False
    profile_memory: bool = False
    ledger: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; valid: {BACKENDS}"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; valid: {TRANSPORTS}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be > 0, got {self.cell_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.abort_after_units is not None and self.abort_after_units < 1:
            raise ValueError(
                f"abort_after_units must be >= 1, got {self.abort_after_units}"
            )
        if self.profile_memory and not self.trace:
            raise ValueError(
                "profile_memory requires trace (memory samples are "
                "recorded in the trace sidecars)"
            )


def backoff_delay(
    options: ExecutorOptions, coords: tuple[str, str, int], attempt: int
) -> float:
    """Deterministic capped exponential backoff for a unit's retry.

    ``attempt`` counts from 1 (the first retry). The jitter factor in
    ``[0.5, 1.5)`` is derived from a CRC-32 hash of the seed, the
    unit's coordinates and the attempt number, so identical studies
    back off identically.
    """
    if options.backoff_base <= 0:
        return 0.0
    raw = min(options.backoff_cap, options.backoff_base * 2 ** (attempt - 1))
    text = f"{options.backoff_seed}|{'|'.join(map(str, coords))}|{attempt}"
    fraction = zlib.crc32(text.encode("utf-8")) / 2**32
    return raw * (0.5 + fraction)


@contextmanager
def _monotonic_deadline(seconds: float):
    """Post-hoc deadline check for contexts that cannot arm SIGALRM.

    Cannot interrupt a hung cell (nothing can, off the main thread),
    but a cell that overran its deadline still *fails* — with the same
    :class:`CellTimeoutError` the watchdog raises — once its body
    returns, so retry/poison accounting stays uniform across backends.
    Records already journaled by the overrunning cell survive via the
    normal replay path, exactly as they would after a watchdog kill.
    Every use bumps the ``cell_deadline_fallback`` warning counter.
    """
    obs.counter("cell_deadline_fallback")
    started = time.monotonic()
    yield
    elapsed = time.monotonic() - started
    if elapsed > seconds:
        raise CellTimeoutError(
            f"cell exceeded {seconds:g}s deadline ({elapsed:.3f}s, "
            "post-hoc monotonic check)"
        )


@contextmanager
def _cell_deadline(seconds: float | None):
    """Arm a ``SIGALRM`` watchdog that turns a hung cell into an error.

    No-op when ``seconds`` is None. When the platform lacks
    ``SIGALRM`` or the caller is not the main thread of its process
    (the thread backend; pool workers and the in-process executor run
    cells on the main thread), degrades to the
    :func:`_monotonic_deadline` post-hoc check instead of silently
    dropping the deadline.
    """
    if seconds is None:
        yield
        return
    if not hasattr(signal, "SIGALRM"):
        with _monotonic_deadline(seconds):
            yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeoutError(f"cell exceeded {seconds:g}s deadline")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not in the main thread
        with _monotonic_deadline(seconds):
            yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class _ShardStore:
    """Minimal store protocol for one worker's shard.

    Supports exactly what :class:`ExperimentRunner` needs — key
    membership and :meth:`add` — plus incremental journaling of every
    added record. Pre-seeded with the unit's completed keys so the
    runner's pending filter skips finished repair variants. An
    optional fault injector is invoked immediately before and after
    every journal append (the two crash windows a real worker death
    can hit).
    """

    def __init__(
        self,
        done_keys: Iterable[str],
        journal: JournalWriter | None = None,
        injector: Any = None,
    ) -> None:
        self._seen = set(done_keys)
        self._journal = journal
        self._injector = injector
        self.added: list[RunRecord] = []

    def __contains__(self, key: str) -> bool:
        return key in self._seen

    def add(self, record: RunRecord) -> None:
        if record.key in self._seen:
            raise ValueError(f"duplicate record key {record.key!r}")
        if self._injector is not None:
            self._injector.before_append(record.key, self._journal)
        if self._journal is not None:
            self._journal.write(record)
        if self._injector is not None:
            self._injector.after_append(record.key, self._journal)
        self._seen.add(record.key)
        self.added.append(record)


def _pool_context():
    """The multiprocessing start method for the worker pool.

    Fork (where available) keeps worker start-up cheap and — unlike
    spawn — never re-imports the parent's ``__main__``, so the
    executor also works from REPLs and piped scripts. Worker results
    do not depend on the start method: all randomness is seeded from
    configuration coordinates, never from inherited RNG state.
    """
    try:
        return get_context("fork")
    except ValueError:
        return get_context("spawn")


#: Per-process cache of generated datasets, keyed by
#: (name, n_rows, seed) — pool workers execute many units of the same
#: dataset and must not regenerate it each time. Guarded by a lock for
#: the thread backend, where workers share the parent's cache.
_DATASET_CACHE: dict[tuple[str, int, int], Any] = {}
_DATASET_CACHE_LOCK = threading.Lock()


def _load_cached(name: str, n_rows: int, seed: int):
    key = (name, n_rows, seed)
    with _DATASET_CACHE_LOCK:
        if key not in _DATASET_CACHE:
            _DATASET_CACHE[key] = load_dataset(name, n_rows=n_rows, seed=seed)
        return _DATASET_CACHE[key]


#: Per-process cache of shared-memory attachments, keyed by segment
#: names. Holds (table, segment handles): the handles MUST stay
#: referenced while the table is in use or the mapping would close
#: under the zero-copy column views.
_ATTACH_CACHE: dict[tuple[str, ...], Any] = {}


def _attach_cached(ref: TableRef):
    key = ref.segment_names
    with _DATASET_CACHE_LOCK:
        if key not in _ATTACH_CACHE:
            _ATTACH_CACHE[key] = attach_table(ref)
        return _ATTACH_CACHE[key][0]


def _resolve_dataset(config: StudyConfig, unit: WorkUnit, payload: Any):
    """Materialise a unit's (definition, table) from its task payload.

    ``payload`` is a :class:`TableRef` under the shm transport, a
    pickled :class:`repro.tabular.Table` under the pickle transport,
    or None when the worker shares the parent's address space (thread
    and serial backends, the in-process path) and loads from the
    per-process cache directly.
    """
    if isinstance(payload, TableRef):
        return dataset_definition(unit.dataset), _attach_cached(payload)
    if payload is not None:
        return dataset_definition(unit.dataset), payload
    return _load_cached(
        unit.dataset, config.dataset_size(unit.dataset), config.generation_seed
    )


def _journal_shard_suffix() -> str:
    """Journal shard id of the calling worker.

    Pool workers (and the in-process path) journal per process; thread
    workers share a pid and journal per thread — concurrent appenders
    must never interleave inside one file.
    """
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"w{os.getpid()}"
    return f"w{os.getpid()}.t{thread.ident}"


#: Worker task: (config, unit, journal prefix, options, attempt
#: number, dataset payload — see :func:`_resolve_dataset`).
_Task = tuple[StudyConfig, WorkUnit, "str | None", ExecutorOptions, int, Any]


def _run_unit(task: _Task) -> list[dict[str, Any]]:
    config, unit, journal_prefix, options, attempt, payload = task
    # each worker *process* traces into its own shard file (pid-keyed,
    # like the journal shards); the scope restores any ambient tracer
    # afterwards. Thread workers must NOT re-scope — the scope swaps
    # process-global tracer state — and instead emit into the parent's
    # (thread-safe) sink directly.
    trace_scope = (
        obs.scoped(f"{journal_prefix}.trace.w{os.getpid()}.jsonl")
        if options.trace
        and journal_prefix is not None
        and options.backend != "thread"
        and threading.current_thread() is threading.main_thread()
        else nullcontext()
    )
    # memory profiling is process-global like the tracer; the parent
    # enables it around the whole run (covering thread/serial workers
    # and fork-started pool children), and this per-unit scope covers
    # spawn-started workers that inherited nothing. Idempotent.
    profile_scope = (
        profile_memory()
        if options.profile_memory
        and options.trace
        and threading.current_thread() is threading.main_thread()
        else nullcontext()
    )
    with trace_scope, profile_scope:
        return _run_unit_traced(task)


def _run_unit_traced(task: _Task) -> list[dict[str, Any]]:
    config, unit, journal_prefix, options, attempt, payload = task
    definition, table = _resolve_dataset(config, unit, payload)
    injector = None
    if options.fault_plan is not None:
        injector = options.fault_plan.unit_injector(
            unit.dataset,
            unit.error_type,
            unit.repetition,
            attempt=attempt,
            cell_timeout=options.cell_timeout,
        )
    journal = (
        JournalWriter(
            f"{journal_prefix}.{_journal_shard_suffix()}.jsonl",
            fsync=options.fsync_journal,
        )
        if journal_prefix is not None
        else None
    )
    shard = _ShardStore(unit.done_keys, journal, injector)
    runner = ExperimentRunner(config, shard)  # type: ignore[arg-type]

    def cell_guard(index: int, model_name: str, seed: int):
        @contextmanager
        def guarded():
            with _cell_deadline(options.cell_timeout):
                if injector is not None:
                    injector.on_cell(index, model_name, seed)
                yield

        return guarded()

    try:
        runner.run_repetition_cells(
            definition,
            table,
            unit.error_type,
            unit.repetition,
            unit.cells,
            cell_guard=cell_guard,
        )
    finally:
        if journal is not None:
            journal.close()
    return [record.to_json() for record in shard.added]


def _execute_unit(
    task: _Task,
) -> tuple[WorkUnit, list[dict[str, Any]], str | None]:
    """Worker entry point: run one unit, journal and return its records.

    Never raises: any failure — a genuine exception, a cell timeout or
    an injected crash — is reported as ``(unit, [], error)`` so the
    parent's retry loop stays in control of the pool. A failed attempt
    returns no payloads even if some cells completed, mirroring a real
    worker death; the completed records survive in the journal shard
    and are recovered by the parent before the retry.
    """
    unit = task[1]
    try:
        return unit, _run_unit(task), None
    except Exception as error:  # noqa: BLE001 — the parent decides
        return unit, [], f"{type(error).__name__}: {error}"


def _unit_coords(unit: WorkUnit) -> tuple[str, str, int]:
    return (unit.dataset, unit.error_type, unit.repetition)


def _replan_unit(
    config: StudyConfig, store: ResultStore, unit: WorkUnit
) -> WorkUnit | None:
    """Re-derive a failed unit's pending cells against the live store.

    Called after the parent replayed the journal shards of a crashed
    attempt: cells whose records were already journaled drop out, so a
    retry never recomputes a completed cell. Returns None when nothing
    is pending anymore (the crash happened after the last append).
    """
    pending: list[Cell] = []
    done: dict[str, None] = dict.fromkeys(unit.done_keys)
    for model, seed in unit.cells:
        keys = expected_cell_keys(
            unit.dataset, unit.error_type, unit.repetition, model, seed
        )
        done.update((key, None) for key in keys if key in store)
        if any(key not in store for key in keys):
            pending.append((model, seed))
    if not pending:
        return None
    return WorkUnit(
        dataset=unit.dataset,
        error_type=unit.error_type,
        repetition=unit.repetition,
        cells=tuple(pending),
        done_keys=tuple(done),
    )


def run_parallel_study(
    config: StudyConfig,
    store: ResultStore,
    workers: int | None = None,
    datasets: Sequence[str] | None = None,
    error_types: Sequence[str] | None = None,
    models: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
    save: bool = True,
    options: ExecutorOptions | None = None,
) -> int:
    """Run all pending cells of a study, sharded across worker processes.

    Plans pending work units against ``store`` (so completed runs —
    including records recovered from journal shards of a killed run —
    are never recomputed), executes them on a ``multiprocessing``
    pool of ``workers`` processes (in-process when ``workers``
    is 1 or only one unit is pending), merges the results into
    ``store`` and, when ``save`` is true and the store has a backing
    path, compacts everything into its JSON file. Returns the number
    of new records added (including records recovered from the journal
    shards of failed attempts).

    ``options`` controls fault tolerance (see :class:`ExecutorOptions`):
    failing units are retried with seeded capped-exponential backoff
    after recovering their journaled records, and poisoned into the
    ``{stem}.failures.jsonl`` sidecar once retries are exhausted —
    the study itself keeps going. A fully successful run removes a
    stale sidecar from an earlier run.
    """
    workers = config.workers if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    options = ExecutorOptions() if options is None else options
    units = plan_work_units(
        config, store, datasets=datasets, error_types=error_types, models=models
    )
    if progress is not None:
        n_cells = sum(len(unit.cells) for unit in units)
        progress(
            f"planned {len(units)} work units ({n_cells} pending cells) "
            f"for {workers} worker(s)"
        )
    if not units:
        # nothing pending, but a resumed kill may still owe a compaction
        # (journal shards holding every record of the aborted run) and a
        # stale failures sidecar its clean bill of health
        if save and store.path is not None:
            if store.journal_paths():
                store.save()
            _write_failures(store, [])
        return 0
    journal_prefix = (
        str(store.path.with_suffix("")) if store.path is not None else None
    )
    in_process = (
        options.backend == "serial" or workers == 1 or len(units) == 1
    )
    # dataset transport only applies across process boundaries; thread
    # and serial workers share the parent's address space and cache
    transport = options.transport if options.backend == "process" and not in_process else "none"
    if transport == "auto":
        transport = "shm" if shared_memory_available() else "pickle"
    registry = ShmRegistry() if transport == "shm" else None

    def _dataset_key(unit: WorkUnit) -> tuple[str, int, int]:
        return (
            unit.dataset,
            config.dataset_size(unit.dataset),
            config.generation_seed,
        )

    def dataset_payload(unit: WorkUnit) -> Any:
        """Transport payload for one dispatched task (leases shm)."""
        if transport == "none":
            return None
        _definition, table = _load_cached(*_dataset_key(unit))
        if registry is not None:
            return registry.lease(_dataset_key(unit), table)
        return table

    added = 0
    merged_units = 0
    attempts: dict[tuple[str, str, int], int] = {}
    failures: list[dict[str, Any]] = []

    def merge(unit: WorkUnit, payloads: list[dict[str, Any]]) -> None:
        nonlocal added, merged_units
        merged = 0
        for payload in payloads:
            record = RunRecord.from_json(payload)
            if record.key not in store:
                store.add(record)
                merged += 1
        added += merged
        merged_units += 1
        obs.counter("units_merged")
        obs.counter("records_merged", merged)
        # flushed so an in-flight monitor sees the merge frontier move
        obs.event(
            "unit_merged",
            dataset=unit.dataset,
            error_type=unit.error_type,
            repetition=unit.repetition,
            records=merged,
        )
        obs.flush()
        if progress is not None:
            progress(
                f"{unit.dataset}/{unit.error_type}/rep{unit.repetition}: "
                f"+{merged}"
            )
        if (
            options.abort_after_units is not None
            and merged_units >= options.abort_after_units
        ):
            raise StudyAborted(
                f"aborted after {merged_units} unit(s) (simulated kill)"
            )

    def handle_failure(unit: WorkUnit, error: str) -> WorkUnit | None:
        """Recover journaled records; re-queue or poison the unit."""
        nonlocal added
        added += store.replay_journal()
        coords = _unit_coords(unit)
        attempts[coords] = attempt = attempts.get(coords, 0) + 1
        label = f"{unit.dataset}/{unit.error_type}/rep{unit.repetition}"
        if error.startswith("CellTimeoutError"):
            obs.counter("timeouts")
        replanned = _replan_unit(config, store, unit)
        if replanned is None:
            obs.event(
                "recovered",  # flushed below: monitors track fault tallies live
                dataset=unit.dataset,
                error_type=unit.error_type,
                repetition=unit.repetition,
                attempt=attempt,
                error=error,
            )
            obs.flush()
            if progress is not None:
                progress(f"{label}: recovered from journal after {error}")
            return None
        if attempt > options.max_retries:
            failures.append(
                {
                    "dataset": unit.dataset,
                    "error_type": unit.error_type,
                    "repetition": unit.repetition,
                    "attempts": attempt,
                    "error": error,
                    "pending_cells": [list(cell) for cell in replanned.cells],
                }
            )
            obs.event(
                "poison",
                dataset=unit.dataset,
                error_type=unit.error_type,
                repetition=unit.repetition,
                attempts=attempt,
                error=error,
            )
            obs.flush()
            if progress is not None:
                progress(f"{label}: poisoned after {attempt} attempt(s): {error}")
            return None
        obs.event(
            "retry",
            dataset=unit.dataset,
            error_type=unit.error_type,
            repetition=unit.repetition,
            attempt=attempt,
            error=error,
        )
        obs.flush()
        if progress is not None:
            progress(
                f"{label}: retry {attempt}/{options.max_retries} after {error}"
            )
        return replanned

    def run_rounds(execute: Callable[[list[_Task]], Iterable]) -> None:
        queue = list(units)
        while queue:
            tasks: list[_Task] = [
                (
                    config,
                    unit,
                    journal_prefix,
                    options,
                    attempts.get(_unit_coords(unit), 0),
                    dataset_payload(unit),
                )
                for unit in queue
            ]
            queue = []
            delays: list[float] = []
            round_started = time.perf_counter()
            for unit, payloads, error in execute(tasks):
                # queue wait + execution, measured from round dispatch
                obs.histogram(
                    "unit_result_latency_seconds",
                    time.perf_counter() - round_started,
                )
                if registry is not None:
                    # one lease per dispatched task: a retried unit
                    # leases afresh when its next round's task is built
                    registry.release(_dataset_key(unit))
                if error is None:
                    merge(unit, payloads)
                    continue
                replanned = handle_failure(unit, error)
                if replanned is not None:
                    queue.append(replanned)
                    delays.append(
                        backoff_delay(
                            options,
                            _unit_coords(replanned),
                            attempts[_unit_coords(replanned)],
                        )
                    )
            if queue and delays and max(delays) > 0:
                obs.event("backoff_sleep", seconds=max(delays))
                time.sleep(max(delays))

    trace_scope = (
        obs.scoped(f"{journal_prefix}.trace.jsonl")
        if options.trace and journal_prefix is not None
        else nullcontext()
    )
    profile_scope = (
        profile_memory() if options.profile_memory and options.trace else nullcontext()
    )
    try:
        with trace_scope, profile_scope:
            obs.event(
                "planned",
                units=len(units),
                cells=sum(len(unit.cells) for unit in units),
                workers=workers,
                backend=options.backend,
                transport=transport,
            )
            # flushed immediately: the planned totals are the monitor's
            # denominator and must be visible before any unit finishes
            obs.flush()
            if in_process:
                run_rounds(lambda tasks: map(_execute_unit, tasks))
            elif options.backend == "thread":
                with ThreadPoolExecutor(
                    max_workers=min(workers, len(units))
                ) as pool:
                    run_rounds(
                        lambda tasks: (
                            future.result()
                            for future in as_completed(
                                [pool.submit(_execute_unit, task) for task in tasks]
                            )
                        )
                    )
            else:
                context = _pool_context()
                with context.Pool(processes=min(workers, len(units))) as pool:
                    run_rounds(
                        lambda tasks: pool.imap_unordered(_execute_unit, tasks)
                    )
    finally:
        # every exit path — completion, StudyAborted, a genuine crash —
        # must leave /dev/shm clean, lease counts notwithstanding
        if registry is not None:
            registry.close()
    if store.path is not None:
        _write_failures(store, failures)
    if save and store.path is not None:
        store.save()
        if options.ledger:
            from repro.obs.ledger import record_run

            record_run(store, config=config)
    return added


def _write_failures(store: ResultStore, failures: list[dict[str, Any]]) -> None:
    """Persist poisoned units to the sidecar, or clear a stale one.

    A run that poisoned nothing removes any existing sidecar: its units
    either completed now or were never planned, so stale entries would
    only mislead :meth:`ResultStore.verify`.
    """
    path = store.failures_path
    if path is None:
        return
    if not failures:
        path.unlink(missing_ok=True)
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        for failure in failures:
            handle.write(json.dumps(failure) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
