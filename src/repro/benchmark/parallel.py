"""Sharded parallel execution of the study grid.

The study is an embarrassingly parallel grid of independent
``(dataset, error_type, repetition, model, tuning_seed)`` cells — the
structure CleanML and FairPrep exploit as well. Every random draw in
the runner is seeded by hashes of configuration coordinates
(:func:`repro.benchmark.runner._seed_for`), never by execution order,
so distributing cells across processes changes nothing about the
results: the headline guarantee of this module is that parallel and
serial execution produce **byte-identical** result stores.

Three pieces cooperate:

- :func:`plan_work_units` enumerates every pending cell by consulting
  the resumable store first (completed cells are never recomputed,
  including cells recovered from a journal shard of a killed run) and
  groups them into :class:`WorkUnit` shards that share one expensive
  version preparation (dataset, error_type, repetition).
- :func:`run_parallel_study` ships units to a ``multiprocessing``
  worker pool (stdlib only; the fork start method where available —
  it is cheap and does not re-import the parent — with a spawn
  fallback elsewhere). Workers cache generated datasets per process
  and append every completed record to their own JSONL journal shard
  (``{stem}.w{pid}.jsonl``) the moment it exists, so a killed run
  loses at most the in-flight cells.
- The parent merges worker results into the master store and calls
  :meth:`ResultStore.save`, which compacts journal shards into the
  single ``{stem}.json``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

from repro.benchmark.config import StudyConfig
from repro.benchmark.results import JournalWriter, ResultStore, RunRecord
from repro.benchmark.runner import ERROR_TYPES, Cell, ExperimentRunner
from repro.cleaning.strategies import (
    MISSING_VALUE_REPAIRS,
    OUTLIER_DETECTORS,
    OUTLIER_REPAIRS,
)
from repro.datasets import dataset_definition, load_dataset

#: (detection, repair) pairs the runner produces per error type, in
#: registry order. Used to derive the expected record keys of a cell
#: without preparing any data.
_VARIANTS: dict[str, tuple[tuple[str, str], ...]] = {
    "missing_values": tuple(
        ("missing_values", repair) for repair in MISSING_VALUE_REPAIRS
    ),
    "outliers": tuple(
        (detector, repair)
        for detector in OUTLIER_DETECTORS
        for repair in OUTLIER_REPAIRS
    ),
    "mislabels": (("cleanlab", "flip_labels"),),
}


def expected_cell_keys(
    dataset: str, error_type: str, repetition: int, model: str, tuning_seed: int
) -> list[str]:
    """Store keys a fully-evaluated cell contributes, in registry order."""
    if error_type not in _VARIANTS:
        raise ValueError(
            f"unknown error type {error_type!r}; valid: {ERROR_TYPES}"
        )
    return [
        RunRecord(
            dataset=dataset,
            error_type=error_type,
            detection=detection,
            repair=repair,
            model=model,
            repetition=repetition,
            tuning_seed=tuning_seed,
        ).key
        for detection, repair in _VARIANTS[error_type]
    ]


@dataclass(frozen=True)
class WorkUnit:
    """Pending cells sharing one version preparation.

    Attributes:
        dataset: Dataset name (resolved via the registry in the worker).
        error_type: Error type of the unit.
        repetition: Split index whose versions the unit prepares once.
        cells: Pending ``(model, tuning_seed)`` cells to evaluate.
        done_keys: Record keys of this repetition already in the store;
            workers pre-seed their shard store with them so partially
            completed cells skip the finished repair variants.
    """

    dataset: str
    error_type: str
    repetition: int
    cells: tuple[Cell, ...]
    done_keys: tuple[str, ...] = ()


def plan_work_units(
    config: StudyConfig,
    store: ResultStore,
    datasets: Sequence[str] | None = None,
    error_types: Sequence[str] | None = None,
    models: Sequence[str] | None = None,
) -> list[WorkUnit]:
    """Enumerate every pending cell and shard by shared preparation.

    A cell is pending when any of its expected record keys is missing
    from ``store``; error types a dataset does not support are skipped
    entirely (mirroring :meth:`ExperimentRunner.run_definition`).
    """
    if datasets is None:
        from repro.datasets import DATASET_NAMES

        datasets = DATASET_NAMES
    error_types = tuple(error_types) if error_types is not None else ERROR_TYPES
    models = tuple(models) if models is not None else config.models
    units: list[WorkUnit] = []
    for dataset in datasets:
        definition = dataset_definition(dataset)
        for error_type in error_types:
            if error_type not in ERROR_TYPES:
                raise ValueError(
                    f"unknown error type {error_type!r}; valid: {ERROR_TYPES}"
                )
            if error_type not in definition.error_types:
                continue
            for repetition in range(config.n_repetitions):
                pending: list[Cell] = []
                done: list[str] = []
                for model in models:
                    for seed in range(config.n_tuning_seeds):
                        keys = expected_cell_keys(
                            dataset, error_type, repetition, model, seed
                        )
                        done.extend(key for key in keys if key in store)
                        if any(key not in store for key in keys):
                            pending.append((model, seed))
                if pending:
                    units.append(
                        WorkUnit(
                            dataset=dataset,
                            error_type=error_type,
                            repetition=repetition,
                            cells=tuple(pending),
                            done_keys=tuple(done),
                        )
                    )
    return units


class _ShardStore:
    """Minimal store protocol for one worker's shard.

    Supports exactly what :class:`ExperimentRunner` needs — key
    membership and :meth:`add` — plus incremental journaling of every
    added record. Pre-seeded with the unit's completed keys so the
    runner's pending filter skips finished repair variants.
    """

    def __init__(
        self, done_keys: Iterable[str], journal: JournalWriter | None = None
    ) -> None:
        self._seen = set(done_keys)
        self._journal = journal
        self.added: list[RunRecord] = []

    def __contains__(self, key: str) -> bool:
        return key in self._seen

    def add(self, record: RunRecord) -> None:
        if record.key in self._seen:
            raise ValueError(f"duplicate record key {record.key!r}")
        self._seen.add(record.key)
        self.added.append(record)
        if self._journal is not None:
            self._journal.write(record)


def _pool_context():
    """The multiprocessing start method for the worker pool.

    Fork (where available) keeps worker start-up cheap and — unlike
    spawn — never re-imports the parent's ``__main__``, so the
    executor also works from REPLs and piped scripts. Worker results
    do not depend on the start method: all randomness is seeded from
    configuration coordinates, never from inherited RNG state.
    """
    try:
        return get_context("fork")
    except ValueError:
        return get_context("spawn")


#: Per-process cache of generated datasets, keyed by
#: (name, n_rows, seed) — pool workers execute many units of the same
#: dataset and must not regenerate it each time.
_DATASET_CACHE: dict[tuple[str, int, int], Any] = {}


def _load_cached(name: str, n_rows: int, seed: int):
    key = (name, n_rows, seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, n_rows=n_rows, seed=seed)
    return _DATASET_CACHE[key]


def _execute_unit(
    task: tuple[StudyConfig, WorkUnit, str | None],
) -> tuple[WorkUnit, list[dict[str, Any]]]:
    """Worker entry point: run one unit, journal and return its records."""
    config, unit, journal_prefix = task
    definition, table = _load_cached(
        unit.dataset, config.dataset_size(unit.dataset), config.generation_seed
    )
    journal = (
        JournalWriter(f"{journal_prefix}.w{os.getpid()}.jsonl")
        if journal_prefix is not None
        else None
    )
    shard = _ShardStore(unit.done_keys, journal)
    runner = ExperimentRunner(config, shard)  # type: ignore[arg-type]
    try:
        runner.run_repetition_cells(
            definition, table, unit.error_type, unit.repetition, unit.cells
        )
    finally:
        if journal is not None:
            journal.close()
    return unit, [record.to_json() for record in shard.added]


def run_parallel_study(
    config: StudyConfig,
    store: ResultStore,
    workers: int | None = None,
    datasets: Sequence[str] | None = None,
    error_types: Sequence[str] | None = None,
    models: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
    save: bool = True,
) -> int:
    """Run all pending cells of a study, sharded across worker processes.

    Plans pending work units against ``store`` (so completed runs —
    including records recovered from journal shards of a killed run —
    are never recomputed), executes them on a ``multiprocessing``
    pool of ``workers`` processes (in-process when ``workers``
    is 1 or only one unit is pending), merges the results into
    ``store`` and, when ``save`` is true and the store has a backing
    path, compacts everything into its JSON file. Returns the number
    of new records added.
    """
    workers = config.workers if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    units = plan_work_units(
        config, store, datasets=datasets, error_types=error_types, models=models
    )
    if progress is not None:
        n_cells = sum(len(unit.cells) for unit in units)
        progress(
            f"planned {len(units)} work units ({n_cells} pending cells) "
            f"for {workers} worker(s)"
        )
    if not units:
        return 0
    journal_prefix = (
        str(store.path.with_suffix("")) if store.path is not None else None
    )
    tasks = [(config, unit, journal_prefix) for unit in units]
    added = 0

    def merge(unit: WorkUnit, payloads: list[dict[str, Any]]) -> int:
        merged = 0
        for payload in payloads:
            record = RunRecord.from_json(payload)
            if record.key not in store:
                store.add(record)
                merged += 1
        if progress is not None:
            progress(
                f"{unit.dataset}/{unit.error_type}/rep{unit.repetition}: "
                f"+{merged}"
            )
        return merged

    if workers == 1 or len(units) == 1:
        for task in tasks:
            added += merge(*_execute_unit(task))
    else:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(units))) as pool:
            for unit, payloads in pool.imap_unordered(_execute_unit, tasks):
                added += merge(unit, payloads)
    if save and store.path is not None:
        store.save()
    return added
