"""Tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.tabular import ColumnKind, ColumnSpec, Schema, Table, encode_values


def make_table():
    return Table.from_columns(
        {
            "age": [25.0, 40.0, np.nan, 61.0],
            "sex": ["male", "female", "female", None],
            "income": [30000.0, 52000.0, 41000.0, np.nan],
        }
    )


def test_from_columns_infers_kinds():
    table = make_table()
    assert table.kind_of("age") is ColumnKind.NUMERIC
    assert table.kind_of("sex") is ColumnKind.CATEGORICAL


def test_row_and_len():
    table = make_table()
    assert len(table) == 4
    row = table.row(1)
    assert row["age"] == 40.0
    assert row["sex"] == "female"


def test_negative_row_index():
    assert make_table().row(-1)["age"] == 61.0


def test_row_out_of_range():
    with pytest.raises(IndexError):
        make_table().row(4)


def test_ragged_columns_rejected():
    schema = Schema.of(ColumnSpec.numeric("a"), ColumnSpec.numeric("b"))
    with pytest.raises(ValueError, match="ragged"):
        Table(schema, {"a": np.zeros(2), "b": np.zeros(3)})


def test_columns_must_match_schema():
    schema = Schema.of(ColumnSpec.numeric("a"))
    with pytest.raises(ValueError, match="schema"):
        Table(schema, {"b": np.zeros(2)})


def test_column_returns_copy():
    table = make_table()
    column = table.column("age")
    column[0] = -1.0
    assert table.column("age")[0] == 25.0


def test_is_missing_numeric_and_categorical():
    table = make_table()
    assert list(table.is_missing("age")) == [False, False, True, False]
    assert list(table.is_missing("sex")) == [False, False, False, True]


def test_missing_mask_is_row_union():
    assert list(make_table().missing_mask()) == [False, False, True, True]


def test_missing_counts():
    assert make_table().missing_counts() == {"age": 1, "sex": 1, "income": 1}


def test_select_columns_orders():
    table = make_table().select_columns(["income", "sex"])
    assert table.column_names == ("income", "sex")


def test_drop_columns():
    table = make_table().drop_columns(["sex"])
    assert table.column_names == ("age", "income")


def test_mask_rows():
    table = make_table()
    filtered = table.mask_rows(~table.missing_mask())
    assert len(filtered) == 2
    assert filtered.column("age")[0] == 25.0


def test_mask_rows_rejects_wrong_shape():
    with pytest.raises(ValueError):
        make_table().mask_rows(np.array([True, False]))


def test_mask_rows_rejects_non_boolean():
    with pytest.raises(ValueError):
        make_table().mask_rows(np.array([1, 0, 1, 0]))


def test_take_rows_allows_repeats():
    table = make_table().take_rows(np.array([0, 0, 1]))
    assert len(table) == 3
    assert table.column("age")[1] == 25.0


def test_head():
    assert len(make_table().head(2)) == 2
    assert len(make_table().head(10)) == 4


def test_with_numeric_column_replaces():
    table = make_table().with_numeric_column("age", np.array([1.0, 2.0, 3.0, 4.0]))
    assert table.column("age")[2] == 3.0
    assert table.column_names == ("age", "sex", "income")


def test_with_column_appends():
    table = make_table().with_categorical_column(
        "city", ["ams", "nyc", "ams", "nyc"]
    )
    assert "city" in table.schema
    assert table.column("city")[0] == "ams"


def test_with_column_does_not_mutate_original():
    table = make_table()
    table.with_numeric_column("age", np.zeros(4))
    assert table.column("age")[0] == 25.0


def test_copy_is_deep():
    table = make_table()
    clone = table.copy()
    assert clone == table
    assert clone is not table


def test_equality_with_nan():
    assert make_table() == make_table()


def test_inequality_on_value_change():
    other = make_table().with_numeric_column("age", np.array([1.0, 2.0, 3.0, 4.0]))
    assert make_table() != other


def test_sample_rows_without_replacement_unique():
    rng = np.random.default_rng(0)
    table = make_table().sample_rows(4, rng)
    assert sorted(v for v in table.column("income") if not np.isnan(v)) == [
        30000.0,
        41000.0,
        52000.0,
    ]


def test_sample_rows_too_many_without_replacement():
    with pytest.raises(ValueError):
        make_table().sample_rows(5, np.random.default_rng(0))


def test_sample_rows_with_replacement():
    rng = np.random.default_rng(0)
    table = make_table().sample_rows(10, rng, replace=True)
    assert len(table) == 10


def test_shuffled_preserves_multiset():
    rng = np.random.default_rng(7)
    table = make_table().shuffled(rng)
    assert sorted(str(v) for v in table.column("sex")) == sorted(
        str(v) for v in make_table().column("sex")
    )


def test_distinct_categorical_excludes_missing():
    assert make_table().distinct("sex") == ["female", "male"]


def test_value_counts_sorted_by_frequency():
    counts = make_table().value_counts("sex")
    assert counts == {"female": 2, "male": 1}


def test_categorical_coerces_to_str():
    table = Table.from_columns({"code": ["1", "2", "1"]})
    assert table.distinct("code") == ["1", "2"]


def test_empty_table():
    schema = Schema.of(ColumnSpec.numeric("x"), ColumnSpec.categorical("y"))
    table = Table.empty(schema)
    assert len(table) == 0
    assert table.missing_counts() == {"x": 0, "y": 0}


def test_iter_rows():
    rows = list(make_table().iter_rows())
    assert len(rows) == 4
    assert rows[0]["sex"] == "male"


def test_repr_mentions_row_count():
    assert "4 rows" in repr(make_table())


def test_from_trusted_columns_adopts_without_copy():
    schema = Schema.of(ColumnSpec.numeric("x"))
    arr = np.array([1.0, 2.0])
    table = Table.from_trusted_columns(schema, {"x": arr})
    assert table._column_view("x") is arr
    assert table.n_rows == 2


def test_from_trusted_columns_rejects_wrong_dtype():
    schema = Schema.of(ColumnSpec.numeric("x"))
    with pytest.raises(ValueError, match="trusted adoption"):
        Table.from_trusted_columns(schema, {"x": np.array([1, 2], dtype=np.int64)})


def test_from_trusted_columns_rejects_ragged_and_mismatched():
    schema = Schema.of(ColumnSpec.numeric("x"), ColumnSpec.categorical("y"))
    with pytest.raises(ValueError, match="do not match schema"):
        Table.from_trusted_columns(schema, {"x": np.zeros(2)})
    with pytest.raises(ValueError, match="CategoricalColumn"):
        Table.from_trusted_columns(
            schema,
            {"x": np.zeros(2), "y": np.array(["a", "b"], dtype=object)},
        )
    with pytest.raises(ValueError, match="ragged"):
        Table.from_trusted_columns(
            schema,
            {
                "x": np.zeros(2),
                "y": encode_values(np.array(["a", "b", "c"], dtype=object)),
            },
        )
