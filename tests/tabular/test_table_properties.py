"""Property-based tests for the Table substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tabular import Table, concat_rows, train_test_split_table

_numeric_values = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.just(float("nan")),
)
_categorical_values = st.one_of(st.sampled_from(["a", "b", "c"]), st.none())


@st.composite
def tables(draw, min_rows=0, max_rows=30):
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    nums = draw(st.lists(_numeric_values, min_size=n, max_size=n))
    cats = draw(st.lists(_categorical_values, min_size=n, max_size=n))
    return Table.from_columns({"num": np.array(nums, dtype=float), "cat": cats})


@given(tables())
def test_copy_equals_original(table):
    assert table.copy() == table


@given(tables())
def test_missing_mask_matches_columnwise_union(table):
    expected = table.is_missing("num") | table.is_missing("cat")
    assert np.array_equal(table.missing_mask(), expected)


@given(tables())
def test_mask_rows_count(table):
    mask = table.missing_mask()
    assert len(table.mask_rows(mask)) + len(table.mask_rows(~mask)) == len(table)


@given(tables())
def test_concat_with_empty_suffix_is_identity(table):
    combined = concat_rows([table, table.mask_rows(np.zeros(len(table), dtype=bool))])
    assert combined == table


@given(tables(min_rows=1), st.integers(min_value=0, max_value=2**32 - 1))
def test_shuffle_preserves_missing_count(table, seed):
    shuffled = table.shuffled(np.random.default_rng(seed))
    assert shuffled.missing_counts() == table.missing_counts()


@given(tables(min_rows=10), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30)
def test_split_is_a_partition(table, seed):
    train, test = train_test_split_table(table, 0.3, np.random.default_rng(seed))
    assert len(train) + len(test) == len(table)
    totals = table.missing_counts()
    for name in table.column_names:
        assert train.missing_counts()[name] + test.missing_counts()[name] == totals[name]


@given(tables())
def test_csv_roundtrip_property(tmp_path_factory, table):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    from repro.tabular import read_csv, write_csv

    write_csv(table, path)
    loaded = read_csv(path, table.schema)
    assert len(loaded) == len(table)
    assert np.array_equal(
        loaded.is_missing("num"), table.is_missing("num")
    )
    assert np.array_equal(
        loaded.is_missing("cat"), table.is_missing("cat")
    )
    ours = table.column("num")
    theirs = loaded.column("num")
    finite = ~np.isnan(ours)
    assert np.allclose(theirs[finite], ours[finite])
