"""Tests for CSV IO and cross-table ops."""

import numpy as np
import pytest

from repro.tabular import (
    ColumnSpec,
    Schema,
    Table,
    concat_rows,
    read_csv,
    train_test_split_table,
    write_csv,
)


def make_table():
    return Table.from_columns(
        {
            "age": [25.0, np.nan, 61.5],
            "sex": ["male", "female", None],
        }
    )


def test_csv_roundtrip(tmp_path):
    path = tmp_path / "data.csv"
    table = make_table()
    write_csv(table, path)
    loaded = read_csv(path, table.schema)
    assert loaded == table


def test_read_csv_ignores_extra_columns(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("age,extra,sex\n25.0,zzz,male\n")
    schema = Schema.of(ColumnSpec.numeric("age"), ColumnSpec.categorical("sex"))
    table = read_csv(path, schema)
    assert table.column_names == ("age", "sex")
    assert table.column("age")[0] == 25.0


def test_read_csv_missing_schema_column_raises(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("age\n25.0\n")
    schema = Schema.of(ColumnSpec.numeric("age"), ColumnSpec.categorical("sex"))
    with pytest.raises(ValueError, match="missing schema columns"):
        read_csv(path, schema)


def test_read_csv_bad_numeric_reports_location(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("age\n25.0\nnot-a-number\n")
    schema = Schema.of(ColumnSpec.numeric("age"))
    with pytest.raises(ValueError, match=":3"):
        read_csv(path, schema)


def test_read_csv_empty_file_raises(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_csv(path, Schema.of(ColumnSpec.numeric("age")))


def test_concat_rows():
    table = make_table()
    combined = concat_rows([table, table])
    assert len(combined) == 6
    assert combined.column("sex")[3] == "male"


def test_concat_rows_schema_mismatch():
    with pytest.raises(ValueError, match="differing schemas"):
        concat_rows([make_table(), make_table().drop_columns(["sex"])])


def test_concat_rows_empty_list():
    with pytest.raises(ValueError):
        concat_rows([])


def test_train_test_split_partitions_rows():
    table = Table.from_columns({"x": np.arange(100, dtype=float)})
    train, test = train_test_split_table(table, 0.25, np.random.default_rng(3))
    assert len(train) == 75
    assert len(test) == 25
    combined = sorted(np.concatenate([train.column("x"), test.column("x")]))
    assert combined == list(np.arange(100, dtype=float))


def test_train_test_split_bad_fraction():
    table = Table.from_columns({"x": np.arange(10, dtype=float)})
    with pytest.raises(ValueError):
        train_test_split_table(table, 0.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        train_test_split_table(table, 1.0, np.random.default_rng(0))


def test_train_test_split_empty_partition_guard():
    table = Table.from_columns({"x": np.arange(3, dtype=float)})
    with pytest.raises(ValueError, match="empty partition"):
        train_test_split_table(table, 0.01, np.random.default_rng(0))


def test_train_test_split_deterministic_under_seed():
    table = Table.from_columns({"x": np.arange(50, dtype=float)})
    train_a, __ = train_test_split_table(table, 0.2, np.random.default_rng(42))
    train_b, __ = train_test_split_table(table, 0.2, np.random.default_rng(42))
    assert train_a == train_b
