"""Property and unit tests for the dictionary-encoded categorical plane.

The hypothesis properties pin the encoding's contract: encoding any
value sequence and decoding it back is the identity (missing included),
and the (pool, codes) pair is a pure function of the value sequence —
deterministic under duplicates, interleavings, and non-ASCII strings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tabular import (
    CategoricalColumn,
    aligned_codes,
    concat_categorical,
    encode_values,
    union_pool,
)

# value pools deliberately include empty strings, surrogates-free
# unicode, and strings that collide under casefolding
category_text = st.text(
    alphabet=st.characters(codec="utf-8", categories=("L", "N", "P", "Zs")),
    max_size=8,
)
cell_values = st.one_of(st.none(), category_text)
value_lists = st.lists(cell_values, max_size=60)


# -- hypothesis round-trip properties ---------------------------------


@given(value_lists)
@settings(max_examples=200)
def test_encode_decode_is_identity(values):
    column = encode_values(values)
    assert list(column.decode()) == values


@given(value_lists)
@settings(max_examples=200)
def test_missing_entries_are_preserved(values):
    column = encode_values(values)
    expected = np.array([v is None for v in values], dtype=bool)
    assert np.array_equal(column.missing_mask(), expected)
    # missing never leaks into the pool or counts
    assert None not in column.pool
    assert column.counts().sum() == (~expected).sum()


@given(st.lists(category_text, min_size=1, max_size=20), st.data())
@settings(max_examples=200)
def test_pool_is_deterministic_under_duplication_and_order(universe, data):
    """Any two sequences with the same value *set* share a pool, and
    equal sequences produce identical codes."""
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(universe) - 1),
            min_size=len(universe),
            max_size=40,
        )
    )
    # force every universe value to appear at least once
    draws = [universe[i] for i in indices] + list(universe)
    column_a = encode_values(draws)
    column_b = encode_values(list(draws))
    assert column_a.pool == column_b.pool
    assert column_a.pool == tuple(sorted(set(universe)))
    assert np.array_equal(column_a.codes, column_b.codes)


@given(value_lists, value_lists)
@settings(max_examples=100)
def test_concat_matches_object_concatenation(left, right):
    column = concat_categorical([encode_values(left), encode_values(right)])
    assert list(column.decode()) == left + right


@given(value_lists)
@settings(max_examples=100)
def test_recode_to_union_pool_preserves_values(values):
    column = encode_values(values)
    widened = column.recode(union_pool([column.pool, ("zz_extra",)]))
    assert list(widened.decode()) == values
    assert column.values_equal(widened)


# -- unit tests for the code-level operations -------------------------


def test_encoding_normalises_non_strings_and_nan():
    column = encode_values([1, "1", None, float("nan"), 2.5])
    assert list(column.decode()) == ["1", "1", None, None, "2.5"]
    assert column.pool == ("1", "2.5")


def test_eq_and_isin_never_match_missing():
    column = encode_values(["a", None, "b", "a"])
    assert list(column.eq("a")) == [True, False, False, True]
    assert list(column.eq("zzz")) == [False, False, False, False]
    assert list(column.isin(("a", "b"))) == [True, False, True, True]
    assert list(column.isin(("nope",))) == [False, False, False, False]


def test_mode_breaks_ties_lexicographically():
    assert encode_values(["b", "a", "b", "a", "c"]).mode() == "a"
    assert encode_values([None, None]).mode() is None


def test_fill_missing_appends_new_value_to_pool():
    column = encode_values(["a", None, "b"])
    filled = column.fill_missing("zz")
    assert list(filled.decode()) == ["a", "zz", "b"]
    assert filled.pool == ("a", "b", "zz")
    # filling with an existing value reuses its code
    refilled = column.fill_missing("a")
    assert refilled.pool == column.pool
    assert list(refilled.decode()) == ["a", "a", "b"]


def test_take_and_mask_share_the_pool():
    column = encode_values(["a", "b", "c"])
    taken = column.take(np.array([2, 0]))
    assert list(taken.decode()) == ["c", "a"]
    assert taken.pool is column.pool
    masked = column.mask(np.array([True, False, True]))
    assert list(masked.decode()) == ["a", "c"]
    # filtering never re-pools: pool may be a superset of present values
    assert column.mask(np.array([True, False, False])).pool == column.pool


def test_recode_rejects_dropping_present_values():
    column = encode_values(["a", "b"])
    with pytest.raises(KeyError, match="present in column"):
        column.recode(("a",))
    # absent values may be dropped freely
    narrowed = column.mask(np.array([True, False])).recode(("a", "z"))
    assert list(narrowed.decode()) == ["a"]


def test_values_equal_is_pool_layout_independent():
    a = encode_values(["x", "y", None])
    b = CategoricalColumn(np.array([1, 0, -1], dtype=np.int32), ("y", "x"))
    assert a.values_equal(b)
    assert not a.values_equal(encode_values(["x", "x", None]))


def test_constructor_validates_codes_and_pool():
    with pytest.raises(ValueError, match="duplicate"):
        CategoricalColumn(np.array([0], dtype=np.int32), ("a", "a"))
    with pytest.raises(ValueError, match="out of range"):
        CategoricalColumn(np.array([2], dtype=np.int32), ("a", "b")[:1])
    with pytest.raises(ValueError, match="1-d"):
        CategoricalColumn(np.zeros((2, 2), dtype=np.int32), ("a",))


def test_pool_strings_are_interned():
    column = encode_values(["ab" + "c", "abc"])
    import sys

    assert column.pool[0] is sys.intern("abc")
