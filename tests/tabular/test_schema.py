"""Tests for repro.tabular.schema."""

import pytest

from repro.tabular import ColumnKind, ColumnSpec, Schema


def make_schema():
    return Schema.of(
        ColumnSpec.numeric("age"),
        ColumnSpec.categorical("sex"),
        ColumnSpec.numeric("income"),
    )


def test_names_preserve_order():
    assert make_schema().names == ("age", "sex", "income")


def test_duplicate_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Schema.of(ColumnSpec.numeric("x"), ColumnSpec.categorical("x"))


def test_contains_and_lookup():
    schema = make_schema()
    assert "age" in schema
    assert "weight" not in schema
    assert schema["sex"].kind is ColumnKind.CATEGORICAL


def test_lookup_unknown_column_raises_keyerror_listing_available():
    with pytest.raises(KeyError, match="available"):
        make_schema()["nope"]


def test_kind_of():
    schema = make_schema()
    assert schema.kind_of("age") is ColumnKind.NUMERIC
    assert schema.kind_of("sex") is ColumnKind.CATEGORICAL


def test_numeric_and_categorical_names():
    schema = make_schema()
    assert schema.numeric_names() == ("age", "income")
    assert schema.categorical_names() == ("sex",)


def test_without_removes_columns():
    schema = make_schema().without(["sex"])
    assert schema.names == ("age", "income")


def test_without_unknown_column_raises():
    with pytest.raises(KeyError, match="unknown"):
        make_schema().without(["ghost"])


def test_select_reorders():
    schema = make_schema().select(["income", "age"])
    assert schema.names == ("income", "age")


def test_len():
    assert len(make_schema()) == 3


def test_schema_equality():
    assert make_schema() == make_schema()
    assert make_schema() != make_schema().without(["sex"])
