"""Live monitoring of an in-flight multi-worker study.

The acceptance contract of the telemetry pipeline: ``repro monitor``
observes a *running* executor — not a finished store — purely from its
trace sidecars, and its progress, throughput, ETA and heartbeat fields
converge to the planned cell count by the time the run completes.
The study runs on the thread backend so the monitor polls the very
same files the live workers are appending to.
"""

import threading
import time

from repro.benchmark import ExecutorOptions, ResultStore, run_parallel_study
from repro.obs import scan_run
from repro.testing.fixtures import chaos_config


def test_monitor_converges_on_inflight_study(tmp_path):
    config = chaos_config()
    store_path = tmp_path / "study.json"
    store = ResultStore(store_path)
    failures = []

    def run_study():
        try:
            run_parallel_study(
                config,
                store,
                workers=2,
                datasets=("german",),
                error_types=("mislabels",),
                options=ExecutorOptions(backend="thread", trace=True),
            )
        except BaseException as error:  # surfaced after join
            failures.append(error)

    snapshots = []
    study_thread = threading.Thread(target=run_study)
    study_thread.start()
    try:
        while study_thread.is_alive():
            snapshots.append(scan_run(store_path))
            time.sleep(0.05)
    finally:
        study_thread.join(timeout=120)
    assert not study_thread.is_alive(), "study did not finish"
    assert not failures, failures

    # -- mid-flight observations ---------------------------------------
    # progress counters never regress while the run is live
    done_series = [s.cells_done for s in snapshots]
    assert done_series == sorted(done_series)
    planned = [s for s in snapshots if s.planned_cells > 0]
    for snapshot in planned:
        assert snapshot.cells_done <= snapshot.planned_cells
    # once cells complete mid-run, throughput and ETA are live
    inflight = [s for s in planned if 0 < s.cells_done < s.planned_cells]
    for snapshot in inflight:
        assert snapshot.cells_per_second > 0.0
        assert snapshot.eta_seconds is not None and snapshot.eta_seconds >= 0.0

    # -- convergence ----------------------------------------------------
    final = scan_run(store_path)
    assert final.complete
    assert final.planned_units == 2  # german x mislabels x 2 repetitions
    assert final.planned_cells == 2  # one model per unit
    assert final.cells_done == final.planned_cells
    assert final.cells_started == final.planned_cells
    assert final.units_merged == final.planned_units
    assert final.backend == "thread"
    assert final.workers_planned == 2
    assert final.eta_seconds is None
    assert final.retries == 0 and final.poisoned_units == 0
    # every completed cell was heartbeated by a live worker track
    assert final.heartbeats >= 2 * final.planned_cells + final.planned_units
    assert final.workers, "worker heartbeats must yield worker status rows"
    assert sum(worker.cells_done for worker in final.workers) == final.cells_done
    assert all(not worker.stalled for worker in final.workers)
    throughput_cells = sum(
        stats["cells"] for stats in final.throughput.values()
    )
    assert throughput_cells == final.planned_cells
    for key in final.throughput:
        assert key[:2] == ("german", "mislabels")

    # the scan stays valid after save() compacts the shards
    store.save()
    compacted = scan_run(store_path)
    assert compacted.complete
    assert compacted.cells_done == final.cells_done
    assert compacted.store_records == len(store)
