"""End-to-end integration tests across the whole stack.

These exercise the public API exactly as the examples and benches do,
at smoke scale, pinning the cross-module contracts: store persistence
and resume, impact analysis over fresh runs, the deep dive and the
fairness-aware selector, and the RQ1 pipeline.
"""

import numpy as np
import pytest

from repro import (
    DeepDive,
    DisparityAnalysis,
    ExperimentRunner,
    FairnessAwareSelector,
    ImpactAnalysis,
    StudyConfig,
    dataset_definition,
)
from repro.benchmark import ResultStore
from repro.reporting import (
    render_case_counts,
    render_disparity_figure,
    render_impact_matrix,
    render_model_table,
)


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "study.json"
    store = ResultStore(path)
    config = StudyConfig.smoke_scale()
    runner = ExperimentRunner(config, store)
    runner.run_dataset_error("german", "missing_values", models=("log_reg",))
    runner.run_dataset_error("german", "mislabels", models=("log_reg",))
    store.save()
    return path, store


def test_store_resume_after_reload(study):
    path, store = study
    reloaded = ResultStore(path)
    assert len(reloaded) == len(store)
    runner = ExperimentRunner(StudyConfig.smoke_scale(), reloaded)
    assert (
        runner.run_dataset_error("german", "missing_values", models=("log_reg",)) == 0
    )


def test_impact_analysis_from_reloaded_store(study):
    path, __ = study
    analysis = ImpactAnalysis(ResultStore(path))
    matrix = analysis.matrix("missing_values", "EO", intersectional=False)
    assert matrix.total == 12  # 6 repairs x 1 model x 2 groups


def test_full_analysis_pipeline_renders(study):
    __, store = study
    analysis = ImpactAnalysis(store)
    impacts = []
    for error_type in ("missing_values", "mislabels"):
        for metric in ("PP", "EO"):
            impacts.extend(
                analysis.configuration_impacts(error_type, metric, intersectional=False)
            )
    deepdive = DeepDive(impacts)
    model_text = render_model_table(deepdive.model_summaries(), "models")
    case_text = render_case_counts(deepdive.case_counts(), "cases")
    assert "log_reg" in model_text
    assert "cases analysed" in case_text
    matrix = analysis.matrix("mislabels", "EO", intersectional=True)
    assert "100%" in render_impact_matrix(matrix, "t")


def test_selector_covers_all_cases(study):
    __, store = study
    analysis = ImpactAnalysis(store)
    impacts = []
    for metric in ("PP", "EO"):
        impacts.extend(
            analysis.configuration_impacts(
                "missing_values", metric, intersectional=False
            )
        )
    selector = FairnessAwareSelector(impacts)
    recommendations = selector.recommend_all()
    # 2 metrics x 2 single-attribute groups on german
    assert len(recommendations) == 4
    assert 0.0 <= selector.safety_rate() <= 1.0


def test_rq1_pipeline_renders():
    definition = dataset_definition("german")
    table = definition.generate(n_rows=700, seed=1)
    analysis = DisparityAnalysis(random_state=0)
    findings = analysis.single_attribute(definition, table)
    text = render_disparity_figure(findings, "fig")
    assert "german / age" in text
    assert "missing_values" in text


def test_mislabel_records_reference_label_flips(study):
    __, store = study
    records = list(store.records(error_type="mislabels"))
    assert records
    for record in records:
        # mislabel repair must not change the test set: the dirty and
        # repaired confusion totals cover the same test tuples
        dirty_total = sum(
            record.metrics[f"dirty__sex_priv__{cell}"]
            for cell in ("tn", "fp", "fn", "tp")
        )
        clean_total = sum(
            record.metrics[f"flip_labels__sex_priv__{cell}"]
            for cell in ("tn", "fp", "fn", "tp")
        )
        assert dirty_total == clean_total


def test_missing_value_records_keep_test_size_constant(study):
    __, store = study
    for record in store.records(error_type="missing_values"):
        dirty_total = sum(
            record.metrics[f"dirty__age_priv__{cell}"]
            for cell in ("tn", "fp", "fn", "tp")
        ) + sum(
            record.metrics[f"dirty__age_dis__{cell}"]
            for cell in ("tn", "fp", "fn", "tp")
        )
        repair = record.repair
        clean_total = sum(
            record.metrics[f"{repair}__age_priv__{cell}"]
            for cell in ("tn", "fp", "fn", "tp")
        ) + sum(
            record.metrics[f"{repair}__age_dis__{cell}"]
            for cell in ("tn", "fp", "fn", "tp")
        )
        # the dirty baseline imputes (never drops) on the test set, so
        # both versions score the identical test tuples
        assert dirty_total == clean_total


def test_two_identical_studies_produce_identical_metrics(tmp_path):
    def run(path):
        store = ResultStore(path)
        config = StudyConfig.smoke_scale()
        ExperimentRunner(config, store).run_dataset_error(
            "german", "mislabels", models=("log_reg",)
        )
        store.save()
        return store

    a = run(tmp_path / "a.json")
    b = run(tmp_path / "b.json")
    keys = [record.key for record in a.records()]
    assert keys == [record.key for record in b.records()]
    for key in keys:
        metrics_a, metrics_b = a.get(key).metrics, b.get(key).metrics
        assert set(metrics_a) == set(metrics_b)
        for name in metrics_a:
            value_a, value_b = metrics_a[name], metrics_b[name]
            if isinstance(value_a, float) and np.isnan(value_a):
                assert np.isnan(value_b)
            else:
                assert value_a == value_b
