"""Shared obs-suite fixture: always leave the global tracer clean.

The tracer is process-global, so a test that configures it and then
fails would leak an enabled tracer into unrelated tests. Every test in
this package runs under an autouse guard that shuts the tracer down
afterwards.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_tracer():
    assert not obs.is_enabled(), "tracer leaked into the obs suite enabled"
    yield
    obs.shutdown()
