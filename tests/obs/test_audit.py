"""Tests for the fairness audit layer (repro.obs.audit)."""

import json

import pytest

from repro.benchmark import ResultStore, RunRecord
from repro.obs import (
    AUDIT_METRICS,
    AlertRule,
    FairnessAudit,
    GroupAudit,
    build_audit,
    cell_fairness,
    diff_audits,
    evaluate_rules,
    render_audit,
    render_audit_diff,
)


def confusion_keys(technique, fragment, tn, fp, fn, tp):
    return {
        f"{technique}__{fragment}__tn": tn,
        f"{technique}__{fragment}__fp": fp,
        f"{technique}__{fragment}__fn": fn,
        f"{technique}__{fragment}__tp": tp,
    }


def make_metrics(
    repair="impute_mean_mode",
    dirty_priv=(5, 5, 5, 5),     # selection rate 0.5
    dirty_dis=(8, 2, 6, 4),      # selection rate 0.3
    repaired_priv=(5, 5, 5, 5),  # selection rate 0.5
    repaired_dis=(9, 1, 7, 3),   # selection rate 0.2
):
    metrics = {"dirty_test_acc": 0.80, f"{repair}_test_acc": 0.75}
    metrics.update(confusion_keys("dirty", "sex_priv", *dirty_priv))
    metrics.update(confusion_keys("dirty", "sex_dis", *dirty_dis))
    metrics.update(confusion_keys(repair, "sex_priv", *repaired_priv))
    metrics.update(confusion_keys(repair, "sex_dis", *repaired_dis))
    return metrics


def make_record(repetition=0, tuning_seed=0, repair="impute_mean_mode", **overrides):
    return RunRecord(
        dataset="german",
        error_type="missing_values",
        detection="simple",
        repair=repair,
        model="log_reg",
        repetition=repetition,
        tuning_seed=tuning_seed,
        metrics=make_metrics(repair=repair, **overrides),
    )


def store_with(*records):
    store = ResultStore()
    for record in records:
        store.add(record)
    return store


# -- cell_fairness ----------------------------------------------------


def test_cell_fairness_signed_disparities_and_acc():
    payload = cell_fairness(make_metrics(), "impute_mean_mode")
    assert payload["acc"] == {"dirty": 0.80, "repaired": 0.75}
    dp = payload["groups"]["sex"]["DP"]
    # DP = privileged − disadvantaged selection rate, signed
    assert dp[0] == pytest.approx(0.2)
    assert dp[1] == pytest.approx(0.3)
    assert set(payload["groups"]["sex"]) == set(AUDIT_METRICS)


def test_cell_fairness_nan_maps_to_none():
    # disadvantaged group with zero actual positives: recall undefined
    payload = cell_fairness(
        make_metrics(repaired_dis=(10, 10, 0, 0)), "impute_mean_mode"
    )
    assert payload["groups"]["sex"]["EO"][1] is None
    assert json.loads(json.dumps(payload)) == payload  # strict JSON


def test_cell_fairness_returns_none_without_group_counts():
    assert cell_fairness({"dirty_test_acc": 0.8}, "impute_mean_mode") is None


# -- build_audit ------------------------------------------------------


def test_build_audit_aggregates_means_and_counts():
    audit = build_audit(
        store_with(
            make_record(repetition=0, repaired_dis=(9, 1, 7, 3)),   # |DP| 0.3
            make_record(repetition=1, repaired_dis=(10, 0, 8, 2)),  # |DP| 0.4
        )
    )
    assert audit.n_records == 2
    (entry,) = audit.groups
    assert entry.coordinate == (
        "german/missing_values/simple/impute_mean_mode/log_reg/sex"
    )
    assert entry.n_runs == 2
    assert entry.dirty_acc == pytest.approx(0.80)
    assert entry.repaired_acc == pytest.approx(0.75)
    # mean |disparity|: dirty 0.2 both reps, repaired (0.3 + 0.4) / 2
    assert entry.gaps["DP"][0] == pytest.approx(0.2)
    assert entry.gaps["DP"][1] == pytest.approx(0.35)
    assert entry.widening("DP") == pytest.approx(0.15)
    # confusion counts sum across records
    assert entry.counts["repaired_dis"] == [19, 1, 15, 5]
    assert entry.counts["dirty_priv"] == [10, 10, 10, 10]


def test_build_audit_is_record_order_independent():
    records = [make_record(repetition=i) for i in range(3)]
    forward = build_audit(store_with(*records)).to_json()
    backward = build_audit(store_with(*reversed(records))).to_json()
    assert forward == backward
    assert json.dumps(forward, sort_keys=True) == json.dumps(
        backward, sort_keys=True
    )


def test_audit_json_roundtrip():
    audit = build_audit(store_with(make_record()))
    clone = FairnessAudit.from_json(json.loads(json.dumps(audit.to_json())))
    assert clone.to_json() == audit.to_json()
    assert isinstance(clone.groups[0], GroupAudit)


def test_evaluate_rules_on_aggregated_audit():
    audit = build_audit(store_with(make_record(repaired_dis=(10, 0, 9, 1))))
    rules = (AlertRule(name="dp", metric="DP", epsilon=0.05),)
    alerts = evaluate_rules(rules, audit)
    assert len(alerts) == 1
    assert alerts[0].rule == "dp"
    assert alerts[0].coordinate.endswith("/sex/DP")


# -- diff_audits ------------------------------------------------------


def test_self_diff_is_clean():
    audit = build_audit(store_with(make_record(), make_record(repetition=1)))
    diff = diff_audits(audit, audit)
    assert diff.findings
    assert diff.regressions == []
    assert diff.improvements == []
    assert all(f.delta == 0.0 and f.p_value == 1.0 for f in diff.findings)


def _audit_with_counts(dp_gap, repaired_dis, n=200):
    """Single-entry audit with controllable DP gap and dis counts."""
    entry = GroupAudit(
        dataset="german",
        error_type="missing_values",
        detection="simple",
        repair="impute_mean_mode",
        model="log_reg",
        group="sex",
        n_runs=2,
        dirty_acc=0.8,
        repaired_acc=0.75,
        gaps={"DP": [0.1, dp_gap]},
        counts={
            "dirty_priv": [n, n, n, n],
            "dirty_dis": [n, n, n, n],
            "repaired_priv": [n, n, n, n],
            "repaired_dis": list(repaired_dis),
        },
    )
    return FairnessAudit(groups=[entry], metrics=("DP",), n_records=2)


def test_diff_flags_significant_widening_as_regression():
    baseline = _audit_with_counts(0.10, (200, 200, 200, 200))
    candidate = _audit_with_counts(0.45, (390, 10, 390, 10))
    diff = diff_audits(baseline, candidate)
    (finding,) = diff.regressions
    assert finding.coordinate.endswith("/sex/DP")
    assert finding.delta == pytest.approx(0.35)
    assert finding.significant
    assert finding.g_statistic > 0


def test_diff_requires_statistical_evidence():
    # same gap delta but identical confusion counts: G² = 0, no flag
    baseline = _audit_with_counts(0.10, (200, 200, 200, 200))
    candidate = _audit_with_counts(0.45, (200, 200, 200, 200))
    diff = diff_audits(baseline, candidate)
    assert diff.regressions == []
    (finding,) = diff.findings
    assert not finding.significant


def test_diff_noise_floors_suppress_small_changes():
    baseline = _audit_with_counts(0.10, (200, 200, 200, 200))
    candidate = _audit_with_counts(0.105, (390, 10, 390, 10))
    # |delta| 0.005 < min_gap 0.02: never flagged, G² never computed
    diff = diff_audits(baseline, candidate)
    (finding,) = diff.findings
    assert not finding.regression
    assert finding.p_value == 1.0


def test_diff_reports_significant_narrowing_as_improvement():
    baseline = _audit_with_counts(0.45, (390, 10, 390, 10))
    candidate = _audit_with_counts(0.10, (200, 200, 200, 200))
    diff = diff_audits(baseline, candidate)
    assert diff.regressions == []
    (finding,) = diff.improvements
    assert finding.delta == pytest.approx(-0.35)


def test_diff_marks_new_and_vanished_coordinates():
    audit = build_audit(store_with(make_record()))
    diff = diff_audits(FairnessAudit(), audit)
    assert diff.regressions == []
    assert {finding.note for finding in diff.findings} == {"new"}
    reverse = diff_audits(audit, FairnessAudit())
    assert {finding.note for finding in reverse.findings} == {"vanished"}


def test_render_audit_and_diff_are_printable():
    audit = build_audit(store_with(make_record()))
    rules = (AlertRule(name="dp", metric="DP", epsilon=0.05),)
    text = render_audit(audit, evaluate_rules(rules, audit))
    assert "FAIRNESS AUDIT" in text
    assert "german/missing_values" in text
    diff_text = render_audit_diff(diff_audits(audit, audit))
    assert "no fairness regressions" in diff_text
