"""Tests for the append-only run ledger (repro.obs.ledger)."""

import json

import pytest

from repro.benchmark import ResultStore, RunRecord
from repro.obs import (
    build_audit,
    config_fingerprint,
    export_baseline,
    ledger_path,
    pin_baseline,
    pins,
    read_ledger,
    record_run,
    resolve_baseline,
    run_id_for,
    runs,
)


def confusion_keys(technique, fragment, tn, fp, fn, tp):
    return {
        f"{technique}__{fragment}__tn": tn,
        f"{technique}__{fragment}__fp": fp,
        f"{technique}__{fragment}__fn": fn,
        f"{technique}__{fragment}__tp": tp,
    }


def make_record(repetition=0, repaired_dis=(9, 1, 7, 3)):
    metrics = {"dirty_test_acc": 0.8, "impute_mean_mode_test_acc": 0.75}
    metrics.update(confusion_keys("dirty", "sex_priv", 5, 5, 5, 5))
    metrics.update(confusion_keys("dirty", "sex_dis", 8, 2, 6, 4))
    metrics.update(confusion_keys("impute_mean_mode", "sex_priv", 5, 5, 5, 5))
    metrics.update(confusion_keys("impute_mean_mode", "sex_dis", *repaired_dis))
    return RunRecord(
        dataset="german",
        error_type="missing_values",
        detection="simple",
        repair="impute_mean_mode",
        model="log_reg",
        repetition=repetition,
        tuning_seed=0,
        metrics=metrics,
    )


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    store.add(make_record())
    store.save()
    return store


def test_record_run_appends_self_contained_entry(store):
    entry = record_run(store, config={"n_sample": 100}, now=1_000.0)
    path = ledger_path(store.path)
    assert path.name == "study.ledger.jsonl"
    assert path.exists()
    (loaded,) = runs(path)
    assert loaded["kind"] == "run"
    assert loaded["run_id"] == entry["run_id"]
    assert loaded["n_records"] == 1
    # the audit is embedded: baselines resolve without the old store
    assert loaded["audit"]["groups"][0]["group"] == "sex"


def test_record_run_requires_a_path():
    with pytest.raises(RuntimeError, match="no path"):
        record_run(ResultStore())


def test_run_id_is_content_derived(store):
    audit = build_audit(store)
    fingerprint = config_fingerprint({"n": 1})
    assert run_id_for(audit, fingerprint) == run_id_for(audit, fingerprint)
    assert run_id_for(audit, fingerprint) != run_id_for(audit, None)
    first = record_run(store, config={"n": 1}, now=1.0)
    second = record_run(store, config={"n": 1}, now=2.0)
    assert first["run_id"] == second["run_id"]  # identical run, same id


def test_ledger_is_not_a_record_journal(store):
    record_run(store)
    assert store.journal_paths() == []
    assert store.ledger_path.exists()


def test_pin_and_resolve(store):
    entry = record_run(store, now=1.0)
    pin_baseline(store.path, "golden", now=2.0)
    assert pins(ledger_path(store.path)) == {"golden": entry["run_id"]}
    for ref in ("golden", "latest", entry["run_id"][:6]):
        audit = resolve_baseline(store.path, ref)
        assert audit is not None
        assert audit.to_json() == build_audit(store).to_json()
    assert resolve_baseline(store.path, "no-such-ref") is None


def test_pin_unknown_run_raises(store):
    with pytest.raises(LookupError):
        pin_baseline(store.path, "golden")  # empty ledger
    record_run(store)
    with pytest.raises(LookupError):
        pin_baseline(store.path, "golden", run_id="ffffffff")


def test_resolve_latest_prefers_newest_run(store):
    record_run(store, now=1.0)
    store.add(make_record(repetition=1, repaired_dis=(10, 0, 8, 2)))
    store.save()
    newest = record_run(store, now=2.0)
    audit = resolve_baseline(store.path, "latest")
    assert audit.n_records == 2
    assert run_id_for(audit, None) == newest["run_id"]


def test_export_baseline_is_reproducible(store, tmp_path):
    record_run(store, config={"n": 1}, now=123.0)
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    export_baseline(store.path, out_a)
    export_baseline(store.path, out_b)
    assert out_a.read_bytes() == out_b.read_bytes()
    exported = json.loads(out_a.read_text())
    assert "ts" not in exported  # wall clock stripped for committed fixtures
    # an exported file resolves as a baseline ref directly
    audit = resolve_baseline(store.path, str(out_a))
    assert audit.to_json() == build_audit(store).to_json()


def test_export_baseline_accepts_pin_names(store, tmp_path):
    """The pin-then-export flow: `--run` takes the same refs
    resolve_baseline does (pin name or run-id prefix)."""
    record_run(store, config={"n": 1}, now=1.0)
    pin_baseline(store.path, "approved", now=2.0)
    out = tmp_path / "pinned.json"
    exported = export_baseline(store.path, out, run_id="approved")
    assert exported["run_id"] == runs(ledger_path(store.path))[-1]["run_id"]
    assert resolve_baseline(store.path, str(out)) is not None
    with pytest.raises(LookupError):
        export_baseline(store.path, out, run_id="no-such-pin")


def test_export_without_runs_raises(store):
    with pytest.raises(LookupError):
        export_baseline(store.path, "out.json")


def test_read_ledger_tolerates_torn_tail(store):
    record_run(store)
    path = ledger_path(store.path)
    with path.open("a") as handle:
        handle.write('{"torn')
    entries = read_ledger(path)
    assert len(entries) == 1
    assert runs(path)


def test_resolve_against_another_stores_ledger(store, tmp_path):
    record_run(store, now=1.0)
    audit = resolve_baseline(
        tmp_path / "other.json", str(ledger_path(store.path))
    )
    assert audit is not None
    assert audit.to_json() == build_audit(store).to_json()
