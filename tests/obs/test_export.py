"""Tests for Chrome Trace Event Format export (repro.obs.export)."""

import json

import pytest

from repro.obs import EXPORT_FORMATS, export_trace, to_chrome_trace
from repro.obs.export import _track_ids


def span(name, ts, seconds, track="w1", attrs=None, counters=None, path=None):
    event = {
        "v": 1,
        "kind": "span",
        "name": name,
        "path": path or name,
        "seconds": seconds,
        "ts": ts,
        "w": track,
    }
    if attrs:
        event["attrs"] = attrs
    if counters:
        event["counters"] = counters
    return event


def point(name, ts, track="w1", **attrs):
    return {
        "v": 1,
        "kind": "event",
        "name": name,
        "ts": ts,
        "w": track,
        "attrs": attrs,
    }


def counter(name, value, **labels):
    return {
        "v": 1,
        "kind": "metric",
        "type": "counter",
        "name": name,
        "labels": labels,
        "value": value,
    }


def by_phase(trace, phase):
    return [e for e in trace["traceEvents"] if e["ph"] == phase]


def test_track_id_mapping():
    assert _track_ids("w123") == (123, 0)
    assert _track_ids("w123.t456") == (123, 456)
    assert _track_ids("bogus") == (0, 0)
    assert _track_ids("wnope") == (0, 0)


def test_spans_become_rebased_complete_slices():
    trace = to_chrome_trace(
        [
            span("unit", ts=100.0, seconds=2.0, track="w7"),
            span("cell", ts=100.5, seconds=0.25, track="w7", path="unit/cell"),
        ]
    )
    slices = by_phase(trace, "X")
    assert [s["name"] for s in slices] == ["unit", "cell"]
    unit, cell = slices
    assert unit["ts"] == 0.0  # rebased to earliest event
    assert unit["dur"] == pytest.approx(2e6)
    assert cell["ts"] == pytest.approx(0.5e6)
    assert cell["dur"] == pytest.approx(0.25e6)
    assert (unit["pid"], unit["tid"]) == (7, 0)
    assert cell["args"]["path"] == "unit/cell"
    assert trace["otherData"]["skipped_untimestamped_events"] == 0


def test_span_args_carry_attrs_and_prefixed_counters():
    trace = to_chrome_trace(
        [
            span(
                "cell",
                ts=1.0,
                seconds=0.1,
                attrs={"model": "log_reg"},
                counters={"records": 3.0},
            )
        ]
    )
    (slice_,) = by_phase(trace, "X")
    assert slice_["args"]["model"] == "log_reg"
    assert slice_["args"]["counter:records"] == 3.0


def test_point_events_become_thread_instants():
    trace = to_chrome_trace([point("heartbeat", ts=5.0, phase="cell_done")])
    (instant,) = by_phase(trace, "i")
    assert instant["s"] == "t"
    assert instant["args"]["phase"] == "cell_done"


def test_each_track_gets_process_and_thread_metadata():
    trace = to_chrome_trace(
        [
            span("cell", ts=1.0, seconds=0.1, track="w2"),
            span("cell", ts=1.0, seconds=0.1, track="w2.t9"),
        ]
    )
    meta = {(m["name"], m["pid"], m["tid"]): m["args"]["name"] for m in by_phase(trace, "M")}
    assert meta[("process_name", 2, 0)] == "w2"
    assert meta[("thread_name", 2, 0)] == "w2"
    assert meta[("thread_name", 2, 9)] == "w2.t9"


def test_counters_and_gauges_become_counter_samples():
    trace = to_chrome_trace(
        [
            span("cell", ts=1.0, seconds=2.0),
            counter("timeouts", 1.0),
            counter("timeouts", 2.0),
            counter("cache_hit", 5.0, cache="featurizer"),
            {
                "v": 1,
                "kind": "metric",
                "type": "gauge",
                "name": "rss_bytes",
                "labels": {},
                "value": 123.0,
            },
            {
                "v": 1,
                "kind": "metric",
                "type": "histogram",
                "name": "seconds",
                "labels": {},
                "buckets": [1.0],
                "counts": [1, 0],
                "sum": 0.5,
                "count": 1,
            },
        ]
    )
    samples = {c["name"]: c for c in by_phase(trace, "C")}
    assert samples["timeouts"]["args"]["value"] == 3.0  # merged across shards
    assert samples["cache_hit{cache=featurizer}"]["args"]["value"] == 5.0
    assert samples["rss_bytes"]["args"]["value"] == 123.0
    assert not any("seconds" in name for name in samples)  # histograms skipped
    # counter samples land at the end of the timeline (the last span end)
    assert samples["timeouts"]["ts"] == pytest.approx(2e6)


def test_untimestamped_legacy_events_are_skipped_and_counted():
    legacy = {"v": 1, "kind": "span", "name": "cell", "path": "cell", "seconds": 0.1}
    trace = to_chrome_trace([legacy, span("unit", ts=1.0, seconds=0.5)])
    assert [s["name"] for s in by_phase(trace, "X")] == ["unit"]
    assert trace["otherData"]["skipped_untimestamped_events"] == 1


def test_export_trace_round_trips_through_files(tmp_path):
    trace_path = tmp_path / "study.trace.jsonl"
    with trace_path.open("w") as handle:
        for event in (
            span("unit", ts=1.0, seconds=0.5),
            point("heartbeat", ts=1.2, phase="unit_start"),
            counter("timeouts", 1.0),
        ):
            handle.write(json.dumps(event) + "\n")
    out = tmp_path / "out" / "study.chrome.json"
    n_events = export_trace([trace_path], out, format="chrome")
    payload = json.loads(out.read_text())
    assert len(payload["traceEvents"]) == n_events
    phases = sorted({e["ph"] for e in payload["traceEvents"]})
    assert phases == ["C", "M", "X", "i"]
    assert payload["displayTimeUnit"] == "ms"


def test_export_trace_rejects_unknown_format(tmp_path):
    assert EXPORT_FORMATS == ("chrome",)
    with pytest.raises(ValueError, match="unknown export format"):
        export_trace([], tmp_path / "out.json", format="speedscope")
