"""Tests for the metrics registry and its deterministic merge."""

import math

import pytest

from repro.obs import DURATION_BUCKETS, MetricsRegistry, merge_metric_events


def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    registry.counter("cache_hit", cache="featurizer")
    registry.counter("cache_hit", 2.0, cache="featurizer")
    registry.counter("cache_hit", cache="masks")
    snapshot = registry.snapshot()
    values = {
        (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
        for s in snapshot
    }
    assert values[("cache_hit", (("cache", "featurizer"),))] == 3.0
    assert values[("cache_hit", (("cache", "masks"),))] == 1.0


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("workers", 2)
    registry.gauge("workers", 8)
    (snapshot,) = registry.snapshot()
    assert snapshot["type"] == "gauge"
    assert snapshot["value"] == 8.0


def test_histogram_buckets_and_totals():
    registry = MetricsRegistry()
    registry.histogram("seconds", 0.0005)  # first bucket (<= 0.001)
    registry.histogram("seconds", 0.3)  # <= 0.5
    registry.histogram("seconds", 1e9)  # +inf overflow
    (snapshot,) = registry.snapshot()
    assert snapshot["type"] == "histogram"
    assert snapshot["buckets"] == list(DURATION_BUCKETS)
    assert len(snapshot["counts"]) == len(DURATION_BUCKETS) + 1
    assert snapshot["counts"][0] == 1
    assert snapshot["counts"][DURATION_BUCKETS.index(0.5)] == 1
    assert snapshot["counts"][-1] == 1
    assert snapshot["count"] == 3
    assert snapshot["sum"] == pytest.approx(0.0005 + 0.3 + 1e9)


def test_histogram_nan_goes_to_overflow_bucket():
    registry = MetricsRegistry()
    registry.histogram("seconds", math.nan)
    (snapshot,) = registry.snapshot()
    assert snapshot["counts"][-1] == 1


def test_histogram_rejects_changed_buckets():
    registry = MetricsRegistry()
    registry.histogram("seconds", 0.1)
    with pytest.raises(ValueError, match="different buckets"):
        registry.histogram("seconds", 0.1, buckets=(1.0, 2.0))


def test_drain_resets_registry():
    registry = MetricsRegistry()
    registry.counter("hits")
    assert len(registry.drain()) == 1
    assert registry.drain() == []


def test_snapshot_order_is_deterministic():
    first = MetricsRegistry()
    second = MetricsRegistry()
    for registry, order in ((first, (1, 2)), (second, (2, 1))):
        for index in order:
            registry.counter(f"c{index}")
            registry.gauge(f"g{index}", index)
    assert first.snapshot() == second.snapshot()


# -- merge --------------------------------------------------------------


def counter_event(name, value, **labels):
    return {"type": "counter", "name": name, "labels": labels, "value": value}


def test_merge_sums_counters_across_shards():
    merged = merge_metric_events(
        [
            counter_event("cache_hit", 2.0, cache="featurizer"),
            counter_event("cache_hit", 3.0, cache="featurizer"),
            counter_event("cache_hit", 1.0, cache="masks"),
        ]
    )
    values = {
        (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
        for s in merged
    }
    assert values[("cache_hit", (("cache", "featurizer"),))] == 5.0
    assert values[("cache_hit", (("cache", "masks"),))] == 1.0


def test_merge_sums_histograms_bucketwise():
    registry = MetricsRegistry()
    registry.histogram("seconds", 0.3)
    registry.histogram("seconds", 0.0005)
    shard = registry.snapshot()[0]
    (merged,) = merge_metric_events([shard, shard])
    assert merged["count"] == 4
    assert merged["sum"] == pytest.approx(2 * (0.3 + 0.0005))
    assert merged["counts"] == [2 * c for c in shard["counts"]]


def test_merge_rejects_mismatched_histogram_buckets():
    base = {
        "type": "histogram",
        "name": "seconds",
        "labels": {},
        "sum": 1.0,
        "count": 1,
    }
    with pytest.raises(ValueError, match="mismatched buckets"):
        merge_metric_events(
            [
                {**base, "buckets": [1.0, 2.0], "counts": [1, 0, 0]},
                {**base, "buckets": [1.0, 5.0], "counts": [1, 0, 0]},
            ]
        )


def gauge_event(name, value, **labels):
    return {"type": "gauge", "name": name, "labels": labels, "value": value}


def test_merge_gauges_keeps_maximum():
    merged = merge_metric_events(
        [gauge_event("workers", 2.0), gauge_event("workers", 8.0)]
    )
    assert merged == [
        {"type": "gauge", "name": "workers", "labels": {}, "value": 8.0}
    ]
    # max is order-free: reversing the shards changes nothing
    assert (
        merge_metric_events(
            [gauge_event("workers", 8.0), gauge_event("workers", 2.0)]
        )
        == merged
    )


def test_merge_is_deterministic_and_idempotent_shape():
    events = [
        counter_event("b", 1.0),
        counter_event("a", 1.0, x="1"),
        counter_event("a", 2.0, x="1"),
    ]
    once = merge_metric_events(events)
    # merging the merged output again changes nothing
    assert merge_metric_events(once) == once
    assert [s["name"] for s in once] == ["a", "b"]


# -- edge cases: permutation invariance, bucket boundaries, non-finite --


def test_merge_is_invariant_under_event_permutation():
    registry = MetricsRegistry()
    registry.histogram("seconds", 0.3, worker="a")
    hist = registry.snapshot()[0]
    events = [
        counter_event("hits", 2.0, cache="x"),
        counter_event("hits", 3.0, cache="x"),
        counter_event("misses", 1.0),
        gauge_event("rss", 100.0, worker="a"),
        gauge_event("rss", 900.0, worker="a"),
        gauge_event("rss", 400.0, worker="b"),
        hist,
        hist,
    ]
    import itertools

    baseline = merge_metric_events(events)
    # every permutation of a representative prefix merges identically
    for permutation in itertools.permutations(events[:5]):
        assert merge_metric_events(list(permutation) + events[5:]) == baseline


def test_merge_gauge_nan_is_ignored_in_any_position():
    expected = [gauge_event("rss", 7.0)]
    for events in (
        [gauge_event("rss", math.nan), gauge_event("rss", 7.0)],
        [gauge_event("rss", 7.0), gauge_event("rss", math.nan)],
        [
            gauge_event("rss", math.nan),
            gauge_event("rss", 7.0),
            gauge_event("rss", math.nan),
        ],
    ):
        assert merge_metric_events(events) == expected


def test_merge_gauge_all_nan_stays_nan():
    (merged,) = merge_metric_events(
        [gauge_event("rss", math.nan), gauge_event("rss", math.nan)]
    )
    assert math.isnan(merged["value"])


def test_histogram_value_exactly_on_boundary_lands_in_that_bucket():
    registry = MetricsRegistry()
    for edge in DURATION_BUCKETS:
        registry.histogram("seconds", edge)
    (snapshot,) = registry.snapshot()
    # buckets are "value <= edge": an exact-boundary observation counts
    # in the bucket it bounds, never the next one
    assert snapshot["counts"] == [1] * len(DURATION_BUCKETS) + [0]


def test_histogram_infinities():
    registry = MetricsRegistry()
    registry.histogram("seconds", -math.inf)  # below every edge
    registry.histogram("seconds", math.inf)  # above every edge
    (snapshot,) = registry.snapshot()
    assert snapshot["counts"][0] == 1
    assert snapshot["counts"][-1] == 1
    assert snapshot["count"] == 2


def test_histogram_negative_value_lands_in_first_bucket():
    registry = MetricsRegistry()
    registry.histogram("seconds", -1.0)
    (snapshot,) = registry.snapshot()
    assert snapshot["counts"][0] == 1
