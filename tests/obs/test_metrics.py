"""Tests for the metrics registry and its deterministic merge."""

import math

import pytest

from repro.obs import DURATION_BUCKETS, MetricsRegistry, merge_metric_events


def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    registry.counter("cache_hit", cache="featurizer")
    registry.counter("cache_hit", 2.0, cache="featurizer")
    registry.counter("cache_hit", cache="masks")
    snapshot = registry.snapshot()
    values = {
        (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
        for s in snapshot
    }
    assert values[("cache_hit", (("cache", "featurizer"),))] == 3.0
    assert values[("cache_hit", (("cache", "masks"),))] == 1.0


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("workers", 2)
    registry.gauge("workers", 8)
    (snapshot,) = registry.snapshot()
    assert snapshot["type"] == "gauge"
    assert snapshot["value"] == 8.0


def test_histogram_buckets_and_totals():
    registry = MetricsRegistry()
    registry.histogram("seconds", 0.0005)  # first bucket (<= 0.001)
    registry.histogram("seconds", 0.3)  # <= 0.5
    registry.histogram("seconds", 1e9)  # +inf overflow
    (snapshot,) = registry.snapshot()
    assert snapshot["type"] == "histogram"
    assert snapshot["buckets"] == list(DURATION_BUCKETS)
    assert len(snapshot["counts"]) == len(DURATION_BUCKETS) + 1
    assert snapshot["counts"][0] == 1
    assert snapshot["counts"][DURATION_BUCKETS.index(0.5)] == 1
    assert snapshot["counts"][-1] == 1
    assert snapshot["count"] == 3
    assert snapshot["sum"] == pytest.approx(0.0005 + 0.3 + 1e9)


def test_histogram_nan_goes_to_overflow_bucket():
    registry = MetricsRegistry()
    registry.histogram("seconds", math.nan)
    (snapshot,) = registry.snapshot()
    assert snapshot["counts"][-1] == 1


def test_histogram_rejects_changed_buckets():
    registry = MetricsRegistry()
    registry.histogram("seconds", 0.1)
    with pytest.raises(ValueError, match="different buckets"):
        registry.histogram("seconds", 0.1, buckets=(1.0, 2.0))


def test_drain_resets_registry():
    registry = MetricsRegistry()
    registry.counter("hits")
    assert len(registry.drain()) == 1
    assert registry.drain() == []


def test_snapshot_order_is_deterministic():
    first = MetricsRegistry()
    second = MetricsRegistry()
    for registry, order in ((first, (1, 2)), (second, (2, 1))):
        for index in order:
            registry.counter(f"c{index}")
            registry.gauge(f"g{index}", index)
    assert first.snapshot() == second.snapshot()


# -- merge --------------------------------------------------------------


def counter_event(name, value, **labels):
    return {"type": "counter", "name": name, "labels": labels, "value": value}


def test_merge_sums_counters_across_shards():
    merged = merge_metric_events(
        [
            counter_event("cache_hit", 2.0, cache="featurizer"),
            counter_event("cache_hit", 3.0, cache="featurizer"),
            counter_event("cache_hit", 1.0, cache="masks"),
        ]
    )
    values = {
        (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
        for s in merged
    }
    assert values[("cache_hit", (("cache", "featurizer"),))] == 5.0
    assert values[("cache_hit", (("cache", "masks"),))] == 1.0


def test_merge_sums_histograms_bucketwise():
    registry = MetricsRegistry()
    registry.histogram("seconds", 0.3)
    registry.histogram("seconds", 0.0005)
    shard = registry.snapshot()[0]
    (merged,) = merge_metric_events([shard, shard])
    assert merged["count"] == 4
    assert merged["sum"] == pytest.approx(2 * (0.3 + 0.0005))
    assert merged["counts"] == [2 * c for c in shard["counts"]]


def test_merge_rejects_mismatched_histogram_buckets():
    base = {
        "type": "histogram",
        "name": "seconds",
        "labels": {},
        "sum": 1.0,
        "count": 1,
    }
    with pytest.raises(ValueError, match="mismatched buckets"):
        merge_metric_events(
            [
                {**base, "buckets": [1.0, 2.0], "counts": [1, 0, 0]},
                {**base, "buckets": [1.0, 5.0], "counts": [1, 0, 0]},
            ]
        )


def test_merge_gauges_last_value_in_shard_order():
    merged = merge_metric_events(
        [
            {"type": "gauge", "name": "workers", "labels": {}, "value": 2.0},
            {"type": "gauge", "name": "workers", "labels": {}, "value": 8.0},
        ]
    )
    assert merged == [
        {"type": "gauge", "name": "workers", "labels": {}, "value": 8.0}
    ]


def test_merge_is_deterministic_and_idempotent_shape():
    events = [
        counter_event("b", 1.0),
        counter_event("a", 1.0, x="1"),
        counter_event("a", 2.0, x="1"),
    ]
    once = merge_metric_events(events)
    # merging the merged output again changes nothing
    assert merge_metric_events(once) == once
    assert [s["name"] for s in once] == ["a", "b"]
