"""Grid-search timing export: fast and naive paths report comparably.

Satellite of the observability issue: ``cv_results_`` has carried
per-candidate ``fit_seconds`` / ``score_seconds`` since the shared-
computation kernels landed, but nothing exported them. The ``tune``
span now does; these tests pin that both dispatch routes export the
same shape of data — same candidate count, positive totals bounded by
the search's wall time — so a regression in either path's bookkeeping
shows up as a divergence here.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.ml.knn import KNearestNeighborsClassifier
from repro.ml.model_selection import GridSearchCV
from repro.obs import build_health, read_trace_events


@pytest.fixture()
def data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(120, 4))
    y = (X[:, 0] + 0.3 * rng.normal(size=120) > 0).astype(np.int64)
    return X, y


GRID = {"n_neighbors": [1, 3, 5, 7]}


def tuned_search(tmp_path, data, use_fast_path):
    X, y = data
    path = tmp_path / f"tune-{use_fast_path}.jsonl"
    search = GridSearchCV(
        KNearestNeighborsClassifier(),
        GRID,
        n_splits=3,
        use_fast_path=use_fast_path,
    )
    started = time.perf_counter()
    with obs.scoped(path):
        search.fit(X, y)
    wall = time.perf_counter() - started
    events = read_trace_events([path])
    (tune,) = [e for e in events if e.get("name") == "tune"]
    return search, tune, wall


def test_both_paths_export_comparable_phase_totals(tmp_path, data):
    fast_search, fast, fast_wall = tuned_search(tmp_path, data, True)
    naive_search, naive, naive_wall = tuned_search(tmp_path, data, False)
    assert fast_search.used_fast_path_ and not naive_search.used_fast_path_
    assert fast["attrs"]["fast_path"] is True
    assert naive["attrs"]["fast_path"] is False
    for tune, wall in ((fast, fast_wall), (naive, naive_wall)):
        assert tune["attrs"]["n_candidates"] == 4
        assert tune["attrs"]["model"] == "KNearestNeighborsClassifier"
        fit = tune["counters"]["fit_seconds"]
        score = tune["counters"]["score_seconds"]
        assert fit > 0.0 and score > 0.0
        # exported totals are real time actually spent inside the search
        assert fit + score <= wall
        assert tune["seconds"] <= wall
    # both routes select identical hyperparameters and scores
    assert fast_search.best_params_ == naive_search.best_params_
    assert fast_search.best_score_ == naive_search.best_score_


def test_candidate_fit_seconds_histogram_exported(tmp_path, data):
    _, __, ___ = tuned_search(tmp_path, data, True)
    events = read_trace_events([tmp_path / "tune-True.jsonl"])
    (histogram,) = [
        e
        for e in events
        if e["kind"] == "metric" and e["name"] == "candidate_fit_seconds"
    ]
    assert histogram["count"] == 4  # one observation per candidate


def test_health_tallies_dispatch_routes(tmp_path, data):
    _, fast, __ = tuned_search(tmp_path, data, True)
    _, naive, __ = tuned_search(tmp_path, data, False)
    health = build_health([fast, naive])
    assert health.tuning["fast_path"] == 1
    assert health.tuning["naive"] == 1
    assert health.tuning["fit_seconds"] == pytest.approx(
        fast["counters"]["fit_seconds"] + naive["counters"]["fit_seconds"]
    )


def test_untraced_fit_exports_nothing_and_stays_identical(data):
    X, y = data
    traced_off = GridSearchCV(KNearestNeighborsClassifier(), GRID, n_splits=3)
    traced_off.fit(X, y)
    assert traced_off.best_params_ is not None
    assert not obs.is_enabled()
