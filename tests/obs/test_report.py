"""Tests for run-health folding and the plain-text report."""

import json

from repro.obs import (
    build_health,
    load_health,
    render_health_report,
    RunHealth,
)


def span_event(name, seconds=0.1, attrs=None, counters=None):
    event = {"v": 1, "kind": "span", "name": name, "path": name, "seconds": seconds}
    if attrs:
        event["attrs"] = attrs
    if counters:
        event["counters"] = counters
    return event


def point_event(name, **attrs):
    return {"v": 1, "kind": "event", "name": name, "attrs": attrs}


def cell(dataset="german", repetition=0, model="log_reg", seed=0, seconds=0.1):
    return span_event(
        "cell",
        seconds=seconds,
        attrs={
            "dataset": dataset,
            "error_type": "mislabels",
            "repetition": repetition,
            "model": model,
            "seed": seed,
        },
    )


SYNTHETIC_EVENTS = [
    span_event("unit", seconds=1.0),
    cell(repetition=0, seconds=0.4),
    cell(repetition=1, model="knn", seconds=0.6),
    span_event(
        "detect",
        seconds=0.2,
        attrs={"detector": "cleanlab"},
        counters={"flagged": 40},
    ),
    span_event("repair", seconds=0.05, attrs={"repair": "flip_labels"}),
    span_event(
        "tune",
        seconds=0.3,
        attrs={"model": "LogisticRegressionClassifier", "fast_path": True},
        counters={"fit_seconds": 0.25, "score_seconds": 0.02},
    ),
    span_event(
        "tune",
        seconds=0.3,
        attrs={"model": "DecisionTreeClassifier", "fast_path": False},
        counters={"fit_seconds": 0.2, "score_seconds": 0.01},
    ),
    point_event(
        "retry", dataset="german", attempt=1, error="CellTimeoutError: slow"
    ),
    point_event("retry", dataset="german", attempt=2, error="RuntimeError: x"),
    point_event(
        "poison", dataset="german", attempts=3, error="RuntimeError: dead"
    ),
    point_event("backoff_sleep", seconds=0.5),
    point_event("backoff_sleep", seconds=0.25),
    point_event("fault_injected", fault="crash_pre_append"),
    point_event("fault_injected", fault="crash_pre_append"),
    point_event("fault_injected", fault="slow_cell"),
    {
        "v": 1,
        "kind": "metric",
        "type": "counter",
        "name": "cache_hit",
        "labels": {"cache": "featurizer"},
        "value": 3.0,
    },
    {
        "v": 1,
        "kind": "metric",
        "type": "counter",
        "name": "cache_miss",
        "labels": {"cache": "featurizer"},
        "value": 1.0,
    },
    {
        "v": 1,
        "kind": "metric",
        "type": "counter",
        "name": "timeouts",
        "labels": {},
        "value": 1.0,
    },
]


def test_build_health_folds_all_event_kinds():
    health = build_health(SYNTHETIC_EVENTS)
    assert health.n_events == len(SYNTHETIC_EVENTS)
    assert health.phase_totals["cell"] == {"count": 2, "seconds": 1.0}
    assert health.model_seconds == {"log_reg": 0.4, "knn": 0.6}
    assert health.detector_stats["cleanlab"]["flagged"] == 40
    assert health.repair_stats["flip_labels"]["count"] == 1
    assert health.tuning["fit_seconds"] == 0.45
    assert health.tuning["fast_path"] == 1
    assert health.tuning["naive"] == 1
    assert health.retries == 2
    assert health.poisoned == 1
    assert health.timeouts == 1  # only the CellTimeoutError retry
    assert health.backoff_seconds == 0.75
    assert health.faults == {"crash_pre_append": 2, "slow_cell": 1}
    assert health.cache["featurizer"]["hit_rate"] == 0.75
    assert health.counters["timeouts"] == 1.0
    assert health.counters["cache_hit{cache=featurizer}"] == 3.0


def test_slowest_cells_sorted_descending():
    health = build_health(SYNTHETIC_EVENTS)
    assert [c["seconds"] for c in health.slowest_cells] == [0.6, 0.4]
    assert health.slowest_cells[0]["model"] == "knn"


def test_failures_count_as_poisoned():
    failure = {
        "dataset": "german",
        "error_type": "mislabels",
        "repetition": 1,
        "attempts": 3,
        "error": "RuntimeError: boom",
    }
    health = build_health([], failures=[failure])
    assert health.poisoned == 1
    assert health.failures == [failure]


def test_empty_health_renders_without_sections():
    report = render_health_report(build_health([]))
    assert report.startswith("RUN HEALTH")
    assert "Phase totals" not in report
    assert "Slowest cells" not in report


def test_render_contains_every_populated_section():
    failure = {"dataset": "adult", "attempts": 3, "error": "boom"}
    report = render_health_report(build_health(SYNTHETIC_EVENTS, [failure]))
    for heading in (
        "Phase totals",
        "Cell time by model",
        "Detectors",
        "Repairs",
        "Hyperparameter tuning",
        "Caches",
        "Slowest cells (top 10)",
        "Injected faults observed",
        "Poisoned work units",
    ):
        assert heading in report, heading
    assert "fast-path searches: 1" in report
    assert "naive searches: 1" in report
    assert "75.0%" in report  # featurizer hit rate


def test_render_top_limits_cell_rows():
    events = [cell(repetition=i, seconds=float(i + 1)) for i in range(5)]
    report = render_health_report(build_health(events), top=2)
    assert "Slowest cells (top 2)" in report
    assert report.count("german/mislabels/") == 2
    assert "german/mislabels/4" in report and "german/mislabels/3" in report
    assert "german/mislabels/2" not in report


def test_to_json_is_json_serialisable():
    health = build_health(SYNTHETIC_EVENTS)
    payload = json.loads(json.dumps(health.to_json()))
    assert payload["retries"] == 2
    assert payload["faults"]["slow_cell"] == 1


def test_load_health_reads_shards_and_sidecar(tmp_path):
    trace = tmp_path / "t.trace.jsonl"
    with trace.open("w") as handle:
        for event in SYNTHETIC_EVENTS:
            handle.write(json.dumps(event) + "\n")
        handle.write('{"kind":"span","torn')  # crash-torn tail
    failures = tmp_path / "t.failures.jsonl"
    failures.write_text(
        json.dumps({"dataset": "german", "attempts": 3, "error": "x"}) + "\n"
    )
    health = load_health([trace], failures)
    assert health.n_events == len(SYNTHETIC_EVENTS)
    assert health.poisoned == 2  # poison event + sidecar entry


def test_default_run_health_is_empty():
    health = RunHealth()
    assert health.n_events == 0
    assert health.to_json()["phase_totals"] == {}
    assert health.to_json()["untraced"] is False


def fairness_point(model="log_reg", groups=None):
    return point_event(
        "fairness",
        dataset="german",
        error_type="mislabels",
        detection="cleanlab",
        repair="flip_labels",
        model=model,
        repetition=0,
        seed=0,
        acc={"dirty": 0.8, "repaired": 0.7},
        groups=groups
        or {
            "sex": {"DP": [0.05, 0.30], "EO": [0.10, 0.05]},
            "age": {"DP": [0.02, None]},
        },
    )


def test_build_health_folds_fairness_events():
    health = build_health([fairness_point(), fairness_point(model="knn")])
    assert health.fairness_cells == 2
    dp = health.fairness["DP"]
    assert dp["pairs"] == 2  # age's None pair never counts
    assert dp["widened"] == 2
    assert dp["max_widening"] == 0.25
    assert health.fairness["EO"]["widened"] == 0
    worst = health.worst_widenings[0]
    assert worst["coordinate"].endswith("/sex/DP")
    assert worst["widening"] == 0.25
    # the default DP rule fires on the 0.25 widening
    assert any(a["rule"] == "dp-not-widened" for a in health.alerts)


def test_render_health_report_shows_fairness_sections():
    report = render_health_report(build_health([fairness_point()]))
    assert "Fairness telemetry (1 cells audited)" in report
    assert "worst gap widenings" in report
    assert "Fairness alerts" in report
    assert "[dp-not-widened]" in report


def test_render_untraced_banner():
    health = build_health([])
    health.untraced = True
    assert "untraced" in render_health_report(health).lower()


# -- S2: byte-stable JSON output --------------------------------------


def test_to_json_is_byte_stable_under_event_permutation():
    """`obs-report --json` must emit identical bytes regardless of the
    shard order events are read in."""
    events = [
        *SYNTHETIC_EVENTS,
        fairness_point(),
        fairness_point(model="knn"),
        {
            "v": 1,
            "kind": "metric",
            "type": "gauge",
            "name": "rss_bytes",
            "labels": {"site": "cell"},
            "value": 123.0,
        },
    ]
    forward = build_health(events).to_json()
    backward = build_health(list(reversed(events))).to_json()
    # reversal changes per-shard arrival order; scalar sums, dict key
    # order and list tiebreaks must all still line up byte-for-byte
    forward.pop("n_events"), backward.pop("n_events")
    assert json.dumps(forward, sort_keys=True) == json.dumps(
        backward, sort_keys=True
    )


def test_to_json_dict_keys_are_sorted_recursively():
    health = build_health([*SYNTHETIC_EVENTS, fairness_point()])
    payload = health.to_json()

    def assert_sorted(value, path="$"):
        if isinstance(value, dict):
            assert list(value) == sorted(value), path
            for key, child in value.items():
                assert_sorted(child, f"{path}.{key}")
        elif isinstance(value, list):
            for index, child in enumerate(value):
                assert_sorted(child, f"{path}[{index}]")

    assert_sorted(payload)


def test_slowest_cell_ties_break_deterministically():
    ties = [
        cell(repetition=i, model=model, seconds=0.5)
        for model in ("log_reg", "knn")
        for i in range(2)
    ]
    forward = build_health(ties).to_json()["slowest_cells"]
    backward = build_health(list(reversed(ties))).to_json()["slowest_cells"]
    assert forward == backward
