"""Tests for cross-run regression diffs (repro.obs.diff)."""

import json
import math

import pytest

from repro.obs import diff_runs, diff_stores, render_diff, span_stats


def span(name, seconds):
    return {"v": 1, "kind": "span", "name": name, "path": name, "seconds": seconds}


def counter(name, value, **labels):
    return {
        "v": 1,
        "kind": "metric",
        "type": "counter",
        "name": name,
        "labels": labels,
        "value": value,
    }


def entries_by_name(diff):
    return {f"{entry.kind}:{entry.name}": entry for entry in diff.entries}


# -- span_stats ---------------------------------------------------------


def test_span_stats_quantiles_nearest_rank():
    events = [span("cell", float(i)) for i in range(1, 101)]  # 1..100
    stats = span_stats(events)["cell"]
    assert stats["count"] == 100.0
    assert stats["mean"] == pytest.approx(50.5)
    assert stats["p50"] == 50.0
    assert stats["p95"] == 95.0
    assert stats["total"] == pytest.approx(5050.0)


def test_span_stats_single_observation():
    stats = span_stats([span("unit", 2.0)])["unit"]
    assert stats["p50"] == stats["p95"] == stats["mean"] == 2.0


def test_span_stats_ignores_non_span_events():
    assert span_stats([counter("timeouts", 1.0)]) == {}


# -- diff_runs ----------------------------------------------------------


def test_flags_only_changes_clearing_both_thresholds():
    # 20 identical baseline cells at 1.0s; candidate regresses to 2.0s
    a = [span("cell", 1.0) for _ in range(20)]
    b = [span("cell", 2.0) for _ in range(20)]
    diff = diff_runs(a, b)
    entry = entries_by_name(diff)["span:cell.mean_seconds"]
    assert entry.flagged
    assert entry.ratio == pytest.approx(2.0)
    assert entry.delta == pytest.approx(1.0)


def test_small_absolute_changes_are_noise_even_when_relative_is_large():
    # 3x relative change but only 2ms absolute: below min_seconds
    diff = diff_runs([span("tune", 0.001)], [span("tune", 0.003)])
    entry = entries_by_name(diff)["span:tune.mean_seconds"]
    assert not entry.flagged
    assert diff.flagged == []


def test_small_relative_changes_are_noise_even_when_absolute_is_large():
    diff = diff_runs([span("unit", 100.0)], [span("unit", 104.0)])  # +4%
    assert diff.flagged == []


def test_threshold_and_floor_are_tunable():
    a, b = [span("unit", 100.0)], [span("unit", 104.0)]
    assert diff_runs(a, b, threshold=0.03).flagged
    diff = diff_runs([span("tune", 0.001)], [span("tune", 0.003)], min_seconds=0.0001)
    assert entries_by_name(diff)["span:tune.mean_seconds"].flagged


def test_new_and_vanished_spans():
    diff = diff_runs([span("old", 1.0)], [span("new", 1.0)])
    by_name = entries_by_name(diff)
    appeared = by_name["span:new.mean_seconds"]
    vanished = by_name["span:old.mean_seconds"]
    assert appeared.flagged and math.isinf(appeared.ratio)
    assert vanished.flagged and vanished.ratio == 0.0


def test_counter_changes_respect_min_count():
    a = [counter("timeouts", 1.0)]
    b = [counter("timeouts", 3.0)]
    diff = diff_runs(a, b)
    entry = entries_by_name(diff)["counter:timeouts"]
    assert entry.flagged and entry.delta == 2.0
    # +0.5 of a counter is sub-integral noise
    assert not entries_by_name(
        diff_runs([counter("timeouts", 1.0)], [counter("timeouts", 1.5)])
    )["counter:timeouts"].flagged


def test_cache_hit_rate_compares_in_absolute_points():
    a = [counter("cache_hit", 90.0, cache="featurizer"),
         counter("cache_miss", 10.0, cache="featurizer")]
    b = [counter("cache_hit", 50.0, cache="featurizer"),
         counter("cache_miss", 50.0, cache="featurizer")]
    diff = diff_runs(a, b)
    entry = entries_by_name(diff)["cache:featurizer.hit_rate"]
    assert entry.flagged
    assert entry.a == pytest.approx(0.9)
    assert entry.b == pytest.approx(0.5)
    # a 2-point shift stays quiet
    c = [counter("cache_hit", 88.0, cache="featurizer"),
         counter("cache_miss", 12.0, cache="featurizer")]
    assert not entries_by_name(diff_runs(a, c))["cache:featurizer.hit_rate"].flagged


def test_identical_runs_flag_nothing():
    events = [span("cell", 1.0), span("unit", 3.0), counter("timeouts", 2.0)]
    diff = diff_runs(events, events)
    assert diff.flagged == []
    assert all(entry.ratio == 1.0 for entry in diff.entries)


def test_diff_to_json_is_serialisable():
    payload = diff_runs([span("cell", 1.0)], [span("cell", 5.0)]).to_json()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["flagged"] >= 1
    assert {"kind", "name", "a", "b", "delta", "ratio", "flagged"} <= set(
        payload["entries"][0]
    )


def test_render_diff_flagged_only_and_all():
    diff = diff_runs(
        [span("cell", 1.0), span("unit", 3.0)],
        [span("cell", 5.0), span("unit", 3.0)],
    )
    flagged_view = render_diff(diff)
    assert "span:cell.mean_seconds" in flagged_view
    assert "unit.mean_seconds" not in flagged_view
    full_view = render_diff(diff, all_entries=True)
    assert "span:unit.mean_seconds" in full_view
    assert "<-- flagged" in full_view


def test_render_diff_quiet_runs():
    text = render_diff(diff_runs([span("cell", 1.0)], [span("cell", 1.0)]))
    assert "no changes beyond the noise thresholds" in text


def test_diff_stores_reads_trace_files(tmp_path):
    path_a = tmp_path / "a.trace.jsonl"
    path_b = tmp_path / "b.trace.jsonl"
    path_a.write_text(json.dumps(span("cell", 1.0)) + "\n")
    path_b.write_text(json.dumps(span("cell", 5.0)) + "\n")
    diff = diff_stores([path_a], [path_b])
    assert entries_by_name(diff)["span:cell.mean_seconds"].flagged
