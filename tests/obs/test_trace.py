"""Tests for the structured-tracing core (spans, sink, scoping)."""

import json
import threading

import pytest

from repro import obs
from repro.obs import NOOP_SPAN, TraceSink, Tracer, read_trace_events


def events_in(path):
    return read_trace_events([path])


# -- disabled fast path -------------------------------------------------


def test_disabled_helpers_are_noops(tmp_path):
    assert not obs.is_enabled()
    assert obs.span("cell", model="log_reg") is NOOP_SPAN
    obs.event("retry", attempt=1)
    obs.counter("cache_hit", cache="featurizer")
    obs.gauge("workers", 2)
    obs.histogram("seconds", 0.5)
    obs.flush()
    assert list(tmp_path.iterdir()) == []


def test_noop_span_supports_full_span_protocol():
    with obs.span("cell") as span:
        assert span.set(model="x") is span
        assert span.add("records", 2) is span


def test_configure_with_none_path_stays_disabled():
    obs.configure(None, enabled=True)
    assert not obs.is_enabled()


# -- span semantics -----------------------------------------------------


def test_span_event_carries_timing_attrs_and_counters(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    with obs.span("cell", model="log_reg") as span:
        span.set(seed=3)
        span.add("records", 2)
        span.add("records", 1)
    obs.flush()
    (event,) = events_in(path)
    assert event["kind"] == "span"
    assert event["name"] == "cell"
    assert event["v"] == obs.SCHEMA_VERSION
    assert event["seconds"] >= 0.0
    assert event["attrs"] == {"model": "log_reg", "seed": 3}
    assert event["counters"] == {"records": 3.0}


def test_nested_spans_record_enclosing_path(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    with obs.span("unit"):
        with obs.span("cell"):
            with obs.span("tune"):
                pass
    obs.flush()
    assert [e["path"] for e in events_in(path)] == [
        "unit/cell/tune",
        "unit/cell",
        "unit",
    ]


def test_span_records_error_type_on_exception(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    with pytest.raises(ValueError):
        with obs.span("cell"):
            raise ValueError("boom")
    obs.flush()
    (event,) = events_in(path)
    assert event["attrs"]["error"] == "ValueError"


def test_threads_nest_independently(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    gate = threading.Barrier(2)

    def worker(name):
        with obs.span(name):
            gate.wait(timeout=5)
            with obs.span("inner"):
                gate.wait(timeout=5)

    threads = [
        threading.Thread(target=worker, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    obs.flush()
    inner_paths = {e["path"] for e in events_in(path) if e["name"] == "inner"}
    # each thread's inner span nests under its own outer span only
    assert inner_paths == {"a/inner", "b/inner"}


def test_event_and_metric_emission(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    obs.event("retry", attempt=1, error="Boom")
    obs.counter("timeouts")
    obs.gauge("workers", 4)
    obs.histogram("latency", 0.02)
    obs.flush()
    events = events_in(path)
    kinds = [e["kind"] for e in events]
    assert kinds.count("event") == 1
    assert kinds.count("metric") == 3
    (retry,) = [e for e in events if e["kind"] == "event"]
    assert retry["attrs"] == {"attempt": 1, "error": "Boom"}


def test_flush_drains_metrics_once(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    obs.counter("hits", 2)
    obs.flush()
    obs.flush()
    counters = [e for e in events_in(path) if e["kind"] == "metric"]
    assert len(counters) == 1
    assert counters[0]["value"] == 2.0


# -- sink ---------------------------------------------------------------


def test_sink_buffers_until_flush_every(tmp_path):
    path = tmp_path / "s.jsonl"
    sink = TraceSink(path, flush_every=3)
    sink.emit({"kind": "event", "name": "a"})
    sink.emit({"kind": "event", "name": "b"})
    assert not path.exists()
    sink.emit({"kind": "event", "name": "c"})
    assert len(path.read_text().splitlines()) == 3
    sink.close()


def test_sink_rejects_bad_flush_every(tmp_path):
    with pytest.raises(ValueError, match="flush_every"):
        TraceSink(tmp_path / "s.jsonl", flush_every=0)


def test_sink_appends_across_instances(tmp_path):
    path = tmp_path / "s.jsonl"
    for name in ("a", "b"):
        sink = TraceSink(path)
        sink.emit({"kind": "event", "name": name})
        sink.close()
    assert [json.loads(l)["name"] for l in path.read_text().splitlines()] == [
        "a",
        "b",
    ]


def test_read_trace_events_skips_torn_tail_and_garbage(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text(
        '{"kind":"event","name":"ok"}\n'
        "not json at all\n"
        '["a","list"]\n'
        '{"kind":"event","name":"to'  # torn mid-write, no newline
    )
    events = events_in(path)
    assert [e["name"] for e in events] == ["ok"]


def test_read_trace_events_tolerates_missing_file(tmp_path):
    assert events_in(tmp_path / "never-written.jsonl") == []


# -- scoped redirection -------------------------------------------------


def test_scoped_redirects_and_restores(tmp_path):
    parent = tmp_path / "parent.jsonl"
    child = tmp_path / "child.jsonl"
    obs.configure(parent)
    obs.event("before")
    with obs.scoped(child):
        obs.event("inside")
        obs.counter("hits")
    obs.event("after")
    obs.flush()
    assert [e["name"] for e in events_in(child)] == ["inside", "hits"]
    assert [e["name"] for e in events_in(parent)] == ["before", "after"]


def test_scoped_flushes_on_exception(tmp_path):
    """Injected crashes must not lose the events that reported them."""
    child = tmp_path / "child.jsonl"
    with pytest.raises(RuntimeError):
        with obs.scoped(child):
            obs.event("fault_injected", fault="crash_pre_append")
            raise RuntimeError("injected crash")
    assert [e["name"] for e in events_in(child)] == ["fault_injected"]


def test_scoped_preserves_parent_buffer(tmp_path):
    """Unflushed parent events survive a nested scope untouched."""
    parent = tmp_path / "parent.jsonl"
    obs.configure(parent)
    obs.event("buffered")  # still in the parent sink's buffer
    with obs.scoped(tmp_path / "child.jsonl"):
        pass
    assert not parent.exists()
    obs.flush()
    assert [e["name"] for e in events_in(parent)] == ["buffered"]


def test_scoped_disabled_suppresses_emission(tmp_path):
    child = tmp_path / "child.jsonl"
    with obs.scoped(child, enabled=False):
        assert not obs.is_enabled()
        obs.event("dropped")
    assert not child.exists()


def test_independent_tracer_instances_do_not_interact(tmp_path):
    tracer = Tracer()
    tracer.configure(tmp_path / "own.jsonl")
    tracer.event("own")
    tracer.shutdown()
    assert not obs.is_enabled()
    assert [e["name"] for e in events_in(tmp_path / "own.jsonl")] == ["own"]
