"""Tests for the in-flight progress scanner (repro.obs.progress)."""

import json

import pytest

from repro.obs import ProgressSnapshot, render_progress, scan_run
from repro.obs.progress import monitor_run, trace_files


def write_events(path, events):
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def planned_event(ts, units, cells, workers=2, backend="process"):
    return {
        "v": 1,
        "kind": "event",
        "name": "planned",
        "ts": ts,
        "w": "w1",
        "attrs": {
            "units": units,
            "cells": cells,
            "workers": workers,
            "backend": backend,
            "transport": "pickle",
        },
    }


def heartbeat_event(ts, track, phase, **attrs):
    return {
        "v": 1,
        "kind": "event",
        "name": "heartbeat",
        "ts": ts,
        "w": track,
        "attrs": {"phase": phase, **attrs},
    }


def unit_merged_event(ts, records):
    return {
        "v": 1,
        "kind": "event",
        "name": "unit_merged",
        "ts": ts,
        "w": "w1",
        "attrs": {
            "dataset": "german",
            "error_type": "mislabels",
            "repetition": 0,
            "records": records,
        },
    }


@pytest.fixture
def run_dir(tmp_path):
    """A synthetic in-flight run: 2 workers, 4 planned cells, 2 done."""
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl",
        [planned_event(100.0, units=2, cells=4), unit_merged_event(130.0, 1)],
    )
    write_events(
        tmp_path / "study.trace.w2.jsonl",
        [
            heartbeat_event(101.0, "w2", "unit_start", n_cells=2),
            heartbeat_event(
                102.0, "w2", "cell_start", dataset="german",
                error_type="mislabels", model="log_reg",
            ),
            heartbeat_event(
                110.0, "w2", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=8.0,
            ),
        ],
    )
    write_events(
        tmp_path / "study.trace.w3.jsonl",
        [
            heartbeat_event(101.0, "w3", "unit_start", n_cells=2),
            heartbeat_event(
                120.0, "w3", "cell_done", dataset="german",
                error_type="mislabels", model="knn", seconds=19.0,
            ),
        ],
    )
    return store_path


def test_scan_counts_cells_and_units(run_dir):
    snapshot = scan_run(run_dir, now=125.0)
    assert snapshot.planned_units == 2
    assert snapshot.planned_cells == 4
    assert snapshot.workers_planned == 2
    assert snapshot.backend == "process"
    assert snapshot.cells_started == 1
    assert snapshot.cells_done == 2
    assert snapshot.units_merged == 1
    assert snapshot.records_merged == 1
    assert snapshot.heartbeats == 5
    assert not snapshot.complete


def test_scan_throughput_and_eta(run_dir):
    snapshot = scan_run(run_dir, now=125.0)
    assert snapshot.started_ts == 100.0
    assert snapshot.elapsed == pytest.approx(25.0)
    assert snapshot.cells_per_second == pytest.approx(2 / 25.0)
    # 2 remaining cells at 0.08 cells/s
    assert snapshot.eta_seconds == pytest.approx(25.0)
    key = ("german", "mislabels", "log_reg")
    assert snapshot.throughput[key]["cells"] == 1
    assert snapshot.throughput[key]["cells_per_second"] == pytest.approx(1 / 8.0)


def test_scan_detects_stalled_worker(run_dir):
    snapshot = scan_run(run_dir, now=200.0, stall_after=60.0)
    by_track = {worker.track: worker for worker in snapshot.workers}
    assert by_track["w2"].stalled  # last heartbeat at 110 -> age 90
    assert by_track["w3"].age == pytest.approx(80.0)
    assert by_track["w3"].stalled
    assert by_track["w2"].cells_done == 1
    assert by_track["w2"].last_phase == "cell_done"


def test_scan_complete_run_reports_no_stalls(tmp_path):
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl",
        [
            planned_event(100.0, units=1, cells=1),
            heartbeat_event(
                101.0, "w1", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=1.0,
            ),
        ],
    )
    snapshot = scan_run(store_path, now=10_000.0)
    assert snapshot.complete
    assert snapshot.eta_seconds is None
    assert all(not worker.stalled for worker in snapshot.workers)


def test_poisoned_cells_count_toward_completion(tmp_path):
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl", [planned_event(100.0, units=2, cells=2)]
    )
    (tmp_path / "study.failures.jsonl").write_text(
        json.dumps(
            {
                "dataset": "german",
                "error_type": "mislabels",
                "repetition": 0,
                "attempts": 3,
                "error": "RuntimeError: dead",
                "pending_cells": [["log_reg", 0], ["knn", 0]],
            }
        )
        + "\n"
    )
    snapshot = scan_run(store_path, now=200.0)
    assert snapshot.cells_poisoned == 2
    assert snapshot.complete  # nothing left to wait for


def test_scan_counts_store_and_journal_records(run_dir, tmp_path):
    (tmp_path / "study.w2.jsonl").write_text(
        json.dumps({"dataset": "german", "metrics": {"acc": 0.7}}) + "\n"
        + '{"torn'  # in-flight torn tail is skipped, not fatal
    )
    snapshot = scan_run(run_dir, now=125.0)
    assert snapshot.journal_records == 1
    assert snapshot.store_records == 0


def test_scan_empty_run(tmp_path):
    snapshot = scan_run(tmp_path / "study.json", now=1.0)
    assert isinstance(snapshot, ProgressSnapshot)
    assert snapshot.planned_cells == 0
    assert not snapshot.complete
    assert snapshot.workers == []


def test_render_progress_mentions_key_fields(run_dir):
    text = render_progress(scan_run(run_dir, now=200.0, stall_after=60.0))
    assert "cells: 2/4" in text
    assert "eta:" in text
    assert "german/mislabels/log_reg" in text
    assert "STALLED" in text


def test_snapshot_to_json_round_trips(run_dir):
    payload = scan_run(run_dir, now=125.0).to_json()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["cells_done"] == 2
    assert payload["throughput"]["german/mislabels/log_reg"]["cells"] == 1
    assert payload["workers"][0]["track"] == "w2"


def test_monitor_run_once_and_until_complete(run_dir, tmp_path):
    lines = []
    snapshot = monitor_run(run_dir, once=True, emit=lines.append)
    assert not snapshot.complete
    assert lines and "cells:" in lines[0]
    # completing the run makes the polling loop exit on its own
    write_events(
        tmp_path / "study.trace.w4.jsonl",
        [
            heartbeat_event(
                121.0, "w4", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=1.0,
            ),
            heartbeat_event(
                122.0, "w4", "cell_done", dataset="german",
                error_type="mislabels", model="knn", seconds=1.0,
            ),
        ],
    )
    snapshot = monitor_run(run_dir, interval=0.01, emit=lambda _: None)
    assert snapshot.complete
    assert snapshot.cells_done == 4


def test_trace_files_lists_main_then_shards(run_dir, tmp_path):
    names = [path.name for path in trace_files(run_dir)]
    assert names[0] == "study.trace.jsonl"
    assert set(names[1:]) == {"study.trace.w2.jsonl", "study.trace.w3.jsonl"}
