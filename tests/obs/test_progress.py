"""Tests for the in-flight progress scanner (repro.obs.progress)."""

import json

import pytest

from repro.obs import ProgressSnapshot, render_progress, scan_run
from repro.obs.progress import monitor_run, trace_files


def write_events(path, events):
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def planned_event(ts, units, cells, workers=2, backend="process"):
    return {
        "v": 1,
        "kind": "event",
        "name": "planned",
        "ts": ts,
        "w": "w1",
        "attrs": {
            "units": units,
            "cells": cells,
            "workers": workers,
            "backend": backend,
            "transport": "pickle",
        },
    }


def heartbeat_event(ts, track, phase, **attrs):
    return {
        "v": 1,
        "kind": "event",
        "name": "heartbeat",
        "ts": ts,
        "w": track,
        "attrs": {"phase": phase, **attrs},
    }


def unit_merged_event(ts, records):
    return {
        "v": 1,
        "kind": "event",
        "name": "unit_merged",
        "ts": ts,
        "w": "w1",
        "attrs": {
            "dataset": "german",
            "error_type": "mislabels",
            "repetition": 0,
            "records": records,
        },
    }


@pytest.fixture
def run_dir(tmp_path):
    """A synthetic in-flight run: 2 workers, 4 planned cells, 2 done."""
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl",
        [planned_event(100.0, units=2, cells=4), unit_merged_event(130.0, 1)],
    )
    write_events(
        tmp_path / "study.trace.w2.jsonl",
        [
            heartbeat_event(101.0, "w2", "unit_start", n_cells=2),
            heartbeat_event(
                102.0, "w2", "cell_start", dataset="german",
                error_type="mislabels", model="log_reg",
            ),
            heartbeat_event(
                110.0, "w2", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=8.0,
            ),
        ],
    )
    write_events(
        tmp_path / "study.trace.w3.jsonl",
        [
            heartbeat_event(101.0, "w3", "unit_start", n_cells=2),
            heartbeat_event(
                120.0, "w3", "cell_done", dataset="german",
                error_type="mislabels", model="knn", seconds=19.0,
            ),
        ],
    )
    return store_path


def test_scan_counts_cells_and_units(run_dir):
    snapshot = scan_run(run_dir, now=125.0)
    assert snapshot.planned_units == 2
    assert snapshot.planned_cells == 4
    assert snapshot.workers_planned == 2
    assert snapshot.backend == "process"
    assert snapshot.cells_started == 1
    assert snapshot.cells_done == 2
    assert snapshot.units_merged == 1
    assert snapshot.records_merged == 1
    assert snapshot.heartbeats == 5
    assert not snapshot.complete


def test_scan_throughput_and_eta(run_dir):
    snapshot = scan_run(run_dir, now=125.0)
    assert snapshot.started_ts == 100.0
    assert snapshot.elapsed == pytest.approx(25.0)
    assert snapshot.cells_per_second == pytest.approx(2 / 25.0)
    # 2 remaining cells at 0.08 cells/s
    assert snapshot.eta_seconds == pytest.approx(25.0)
    key = ("german", "mislabels", "log_reg")
    assert snapshot.throughput[key]["cells"] == 1
    assert snapshot.throughput[key]["cells_per_second"] == pytest.approx(1 / 8.0)


def test_scan_detects_stalled_worker(run_dir):
    snapshot = scan_run(run_dir, now=200.0, stall_after=60.0)
    by_track = {worker.track: worker for worker in snapshot.workers}
    assert by_track["w2"].stalled  # last heartbeat at 110 -> age 90
    assert by_track["w3"].age == pytest.approx(80.0)
    assert by_track["w3"].stalled
    assert by_track["w2"].cells_done == 1
    assert by_track["w2"].last_phase == "cell_done"


def test_scan_complete_run_reports_no_stalls(tmp_path):
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl",
        [
            planned_event(100.0, units=1, cells=1),
            heartbeat_event(
                101.0, "w1", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=1.0,
            ),
        ],
    )
    snapshot = scan_run(store_path, now=10_000.0)
    assert snapshot.complete
    assert snapshot.eta_seconds is None
    assert all(not worker.stalled for worker in snapshot.workers)


def test_poisoned_cells_count_toward_completion(tmp_path):
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl", [planned_event(100.0, units=2, cells=2)]
    )
    (tmp_path / "study.failures.jsonl").write_text(
        json.dumps(
            {
                "dataset": "german",
                "error_type": "mislabels",
                "repetition": 0,
                "attempts": 3,
                "error": "RuntimeError: dead",
                "pending_cells": [["log_reg", 0], ["knn", 0]],
            }
        )
        + "\n"
    )
    snapshot = scan_run(store_path, now=200.0)
    assert snapshot.cells_poisoned == 2
    assert snapshot.complete  # nothing left to wait for


def test_scan_counts_store_and_journal_records(run_dir, tmp_path):
    (tmp_path / "study.w2.jsonl").write_text(
        json.dumps({"dataset": "german", "metrics": {"acc": 0.7}}) + "\n"
        + '{"torn'  # in-flight torn tail is skipped, not fatal
    )
    snapshot = scan_run(run_dir, now=125.0)
    assert snapshot.journal_records == 1
    assert snapshot.store_records == 0


def test_scan_empty_run(tmp_path):
    snapshot = scan_run(tmp_path / "study.json", now=1.0)
    assert isinstance(snapshot, ProgressSnapshot)
    assert snapshot.planned_cells == 0
    assert not snapshot.complete
    assert snapshot.workers == []


def test_render_progress_mentions_key_fields(run_dir):
    text = render_progress(scan_run(run_dir, now=200.0, stall_after=60.0))
    assert "cells: 2/4" in text
    assert "eta:" in text
    assert "german/mislabels/log_reg" in text
    assert "STALLED" in text


def test_snapshot_to_json_round_trips(run_dir):
    payload = scan_run(run_dir, now=125.0).to_json()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["cells_done"] == 2
    assert payload["throughput"]["german/mislabels/log_reg"]["cells"] == 1
    assert payload["workers"][0]["track"] == "w2"


def test_monitor_run_once_and_until_complete(run_dir, tmp_path):
    lines = []
    snapshot = monitor_run(run_dir, once=True, emit=lines.append)
    assert not snapshot.complete
    assert lines and "cells:" in lines[0]
    # completing the run makes the polling loop exit on its own
    write_events(
        tmp_path / "study.trace.w4.jsonl",
        [
            heartbeat_event(
                121.0, "w4", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=1.0,
            ),
            heartbeat_event(
                122.0, "w4", "cell_done", dataset="german",
                error_type="mislabels", model="knn", seconds=1.0,
            ),
        ],
    )
    snapshot = monitor_run(run_dir, interval=0.01, emit=lambda _: None)
    assert snapshot.complete
    assert snapshot.cells_done == 4


def test_trace_files_lists_main_then_shards(run_dir, tmp_path):
    names = [path.name for path in trace_files(run_dir)]
    assert names[0] == "study.trace.jsonl"
    assert set(names[1:]) == {"study.trace.w2.jsonl", "study.trace.w3.jsonl"}


def fairness_event(ts, track="w2", **overrides):
    attrs = {
        "dataset": "german",
        "error_type": "mislabels",
        "detection": "cleanlab",
        "repair": "flip_labels",
        "model": "log_reg",
        "repetition": 0,
        "seed": 0,
        "acc": {"dirty": 0.8, "repaired": 0.7},
        "groups": {
            "sex": {"DP": [0.05, 0.25], "EO": [0.10, 0.05]},
            "age": {"DP": [0.02, None]},
        },
    }
    attrs.update(overrides)
    return {
        "v": 1,
        "kind": "event",
        "name": "fairness",
        "ts": ts,
        "w": track,
        "attrs": attrs,
    }


# -- S1 regression tests: ETA edge cases ------------------------------


def test_zero_elapsed_heartbeat_has_no_eta_and_no_crash(tmp_path):
    """A heartbeat burst at the planning timestamp must not divide by
    zero or report a rate/ETA."""
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl",
        [
            planned_event(100.0, units=2, cells=4),
            heartbeat_event(
                100.0, "w1", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=0.0,
            ),
        ],
    )
    snapshot = scan_run(store_path, now=100.0)
    assert snapshot.elapsed == 0.0
    assert snapshot.cells_per_second == 0.0
    assert snapshot.eta_seconds is None
    assert not snapshot.complete


def test_clock_skew_never_yields_negative_elapsed(tmp_path):
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl", [planned_event(100.0, units=1, cells=1)]
    )
    snapshot = scan_run(store_path, now=90.0)  # scanner clock behind writer
    assert snapshot.elapsed == 0.0
    assert snapshot.eta_seconds is None


def test_all_remaining_cells_poisoned_completes_without_eta(tmp_path):
    """Done + poisoned exceeding the plan (a retried unit poisoned
    after partial progress) must clamp: complete, no negative ETA,
    percent capped at 100 in the rendering."""
    store_path = tmp_path / "study.json"
    write_events(
        tmp_path / "study.trace.jsonl",
        [
            planned_event(100.0, units=2, cells=2),
            heartbeat_event(
                101.0, "w1", "cell_done", dataset="german",
                error_type="mislabels", model="log_reg", seconds=1.0,
            ),
        ],
    )
    (tmp_path / "study.failures.jsonl").write_text(
        json.dumps(
            {
                "dataset": "german",
                "error_type": "mislabels",
                "repetition": 0,
                "attempts": 3,
                "error": "RuntimeError: dead",
                "pending_cells": [["log_reg", 0], ["knn", 0]],
            }
        )
        + "\n"
    )
    snapshot = scan_run(store_path, now=200.0)
    assert snapshot.complete
    assert snapshot.eta_seconds is None
    assert "eta: -" in render_progress(snapshot)


def test_render_clamps_replayed_heartbeats_to_100_percent(tmp_path):
    """A resumed run can replay more cell_done heartbeats than this
    run planned; the display caps at 100% instead of overflowing."""
    store_path = tmp_path / "study.json"
    done = [
        heartbeat_event(
            101.0 + i, "w1", "cell_done", dataset="german",
            error_type="mislabels", model="log_reg", seconds=1.0,
        )
        for i in range(3)
    ]
    write_events(
        tmp_path / "study.trace.jsonl",
        [planned_event(100.0, units=1, cells=2), *done],
    )
    text = render_progress(scan_run(store_path, now=200.0))
    assert "cells: 3/2 (100%)" in text


# -- live fairness telemetry ------------------------------------------


def test_scan_folds_fairness_events(run_dir, tmp_path):
    write_events(
        tmp_path / "study.trace.w4.jsonl",
        [fairness_event(111.0), fairness_event(112.0, repetition=1)],
    )
    snapshot = scan_run(run_dir, now=125.0)
    assert snapshot.fairness_cells == 2
    key = ("german", "mislabels", "log_reg", "flip_labels")
    stats = snapshot.fairness[key]
    assert stats["cells"] == 2
    assert stats["widened"] == 2
    assert stats["max_widening"] == pytest.approx(0.20)
    assert stats["worst_group"] == "sex"
    assert stats["worst_metric"] == "DP"
    # the sex/DP widening (0.05 -> 0.25) trips the default DP rule
    assert any(alert["rule"] == "dp-not-widened" for alert in snapshot.alerts)


def test_render_progress_shows_fairness_and_alerts(run_dir, tmp_path):
    write_events(tmp_path / "study.trace.w4.jsonl", [fairness_event(111.0)])
    text = render_progress(scan_run(run_dir, now=125.0))
    assert "fairness (live, 1 cells audited):" in text
    assert "german/mislabels/log_reg/flip_labels" in text
    assert "worst +0.200 DP on group sex" in text
    assert "[dp-not-widened]" in text


def test_fairness_snapshot_json_is_serialisable_and_sorted(run_dir, tmp_path):
    write_events(
        tmp_path / "study.trace.w4.jsonl",
        [fairness_event(111.0), fairness_event(112.0, model="knn")],
    )
    payload = scan_run(run_dir, now=125.0).to_json()
    assert json.loads(json.dumps(payload)) == payload
    keys = list(payload["fairness"])
    assert keys == sorted(keys)
    assert payload["fairness_cells"] == 2
