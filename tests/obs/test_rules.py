"""Tests for the declarative fairness alert rules (repro.obs.rules)."""

import json

import pytest

from repro.obs import (
    DEFAULT_RULES,
    Alert,
    AlertRule,
    dedupe_alerts,
    evaluate_gaps,
    load_rules,
)

COORDS = dict(
    dataset="german",
    error_type="mislabels",
    detection="cleanlab",
    repair="flip_labels",
    model="log_reg",
)


def test_rule_validation_rejects_unknown_kind_and_negative_epsilon():
    with pytest.raises(ValueError, match="unknown rule kind"):
        AlertRule(name="bad", kind="nope")
    with pytest.raises(ValueError, match="epsilon"):
        AlertRule(name="bad", epsilon=-0.1)


def test_rule_scope_filters():
    rule = AlertRule(name="scoped", dataset="german", group="sex")
    assert rule.matches(dataset="german", group="sex", model="knn")
    assert not rule.matches(dataset="adult", group="sex")
    assert not rule.matches(dataset="german", group="age")
    # unmentioned coordinates match anything
    assert rule.matches(model="knn")


def test_rule_to_json_omits_none_filters():
    payload = AlertRule(name="dp", dataset="german").to_json()
    assert payload["dataset"] == "german"
    assert "group" not in payload
    assert payload["kind"] == "no_widening"


def test_no_widening_rule_fires_on_widened_gap():
    rules = (AlertRule(name="dp", kind="no_widening", metric="DP", epsilon=0.1),)
    alerts = evaluate_gaps(
        rules, gaps={"sex": {"DP": [0.05, 0.30]}}, **COORDS
    )
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.rule == "dp"
    assert alert.coordinate.endswith("/sex/DP")
    assert alert.observed == pytest.approx(0.25)
    # narrowing or within tolerance: silent
    assert not evaluate_gaps(rules, gaps={"sex": {"DP": [0.30, 0.05]}}, **COORDS)
    assert not evaluate_gaps(rules, gaps={"sex": {"DP": [0.05, 0.10]}}, **COORDS)


def test_signed_gaps_compare_by_magnitude():
    rules = (AlertRule(name="dp", metric="DP", epsilon=0.1),)
    # sign flip with equal magnitude is not a widening
    assert not evaluate_gaps(rules, gaps={"sex": {"DP": [0.2, -0.2]}}, **COORDS)
    alerts = evaluate_gaps(rules, gaps={"sex": {"DP": [0.05, -0.30]}}, **COORDS)
    assert alerts and alerts[0].observed == pytest.approx(0.25)


def test_max_gap_rule():
    rules = (AlertRule(name="cap", kind="max_gap", metric="EO", epsilon=0.2),)
    alerts = evaluate_gaps(rules, gaps={"sex": {"EO": [None, 0.35]}}, **COORDS)
    assert alerts and alerts[0].observed == pytest.approx(0.35)
    assert not evaluate_gaps(rules, gaps={"sex": {"EO": [None, 0.15]}}, **COORDS)


def test_accuracy_floor_rule():
    rules = (AlertRule(name="acc", kind="accuracy_floor", epsilon=0.05),)
    alerts = evaluate_gaps(
        rules, gaps={}, dirty_acc=0.80, repaired_acc=0.70, **COORDS
    )
    assert alerts and alerts[0].observed == pytest.approx(0.10)
    assert not evaluate_gaps(
        rules, gaps={}, dirty_acc=0.80, repaired_acc=0.78, **COORDS
    )
    # missing accuracies never fire
    assert not evaluate_gaps(rules, gaps={}, dirty_acc=None, **COORDS)


def test_none_gap_values_never_fire():
    rules = (
        AlertRule(name="dp", metric="DP", epsilon=0.0),
        AlertRule(name="cap", kind="max_gap", metric="DP", epsilon=0.0),
    )
    assert not evaluate_gaps(rules, gaps={"sex": {"DP": [None, None]}}, **COORDS)
    assert not evaluate_gaps(rules, gaps={"sex": {"DP": [0.1, None]}}, **COORDS)
    # no_widening needs the dirty side too
    assert not evaluate_gaps(
        (rules[0],), gaps={"sex": {"DP": [None, 0.9]}}, **COORDS
    )


def test_alerts_sorted_and_deduped():
    rules = (AlertRule(name="dp", metric="DP", epsilon=0.0),)
    first = evaluate_gaps(rules, gaps={"sex": {"DP": [0.0, 0.1]}}, **COORDS)
    second = evaluate_gaps(rules, gaps={"sex": {"DP": [0.0, 0.4]}}, **COORDS)
    deduped = dedupe_alerts(first + second + first)
    assert len(deduped) == 1
    assert deduped[0].observed == pytest.approx(0.4)


def test_default_rules_cover_dp_eodds_and_accuracy():
    kinds = {(rule.kind, rule.metric if rule.kind != "accuracy_floor" else None)
             for rule in DEFAULT_RULES}
    assert ("no_widening", "DP") in kinds
    assert ("no_widening", "EOdds") in kinds
    assert ("accuracy_floor", None) in kinds


def test_load_rules_roundtrip_and_validation(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(
        json.dumps(
            [
                {"name": "tight-dp", "metric": "DP", "epsilon": 0.02},
                {
                    "name": "german-only",
                    "kind": "max_gap",
                    "metric": "EO",
                    "epsilon": 0.3,
                    "dataset": "german",
                },
            ]
        )
    )
    rules = load_rules(path)
    assert [rule.name for rule in rules] == ["tight-dp", "german-only"]
    assert rules[1].dataset == "german"

    path.write_text(json.dumps({"name": "not-a-list"}))
    with pytest.raises(ValueError, match="JSON list"):
        load_rules(path)
    path.write_text(json.dumps([{"name": "x", "bogus": 1}]))
    with pytest.raises(ValueError, match="unknown fields"):
        load_rules(path)


def test_alert_to_json_is_plain_data():
    alert = Alert(rule="r", coordinate="c", observed=0.5, limit=0.1, message="m")
    assert json.loads(json.dumps(alert.to_json())) == alert.to_json()
