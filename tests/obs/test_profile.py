"""Tests for opt-in memory telemetry (repro.obs.profile)."""

import tracemalloc

import pytest

from repro import obs
from repro.obs import (
    HOT_SPANS,
    disable_memory_profiling,
    enable_memory_profiling,
    memory_profiling_enabled,
    profile_memory,
    read_trace_events,
    rss_bytes,
)


@pytest.fixture(autouse=True)
def clean_profiler():
    assert not memory_profiling_enabled(), "profiler leaked into the suite"
    yield
    disable_memory_profiling()


def test_rss_bytes_reports_a_sane_resident_set():
    rss = rss_bytes()
    assert rss > 1024 * 1024  # a python process is comfortably over 1 MiB
    assert isinstance(rss, int)


def test_enable_disable_toggles_state_and_tracemalloc():
    assert not tracemalloc.is_tracing()
    enable_memory_profiling()
    assert memory_profiling_enabled()
    assert tracemalloc.is_tracing()
    disable_memory_profiling()
    assert not memory_profiling_enabled()
    assert not tracemalloc.is_tracing()  # we started it, we stop it


def test_disable_leaves_foreign_tracemalloc_running():
    tracemalloc.start()
    try:
        enable_memory_profiling()
        disable_memory_profiling()
        assert tracemalloc.is_tracing()  # not ours to stop
    finally:
        tracemalloc.stop()


def test_hot_spans_gain_memory_attrs(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    with profile_memory():
        with obs.span("cell", model="log_reg"):
            ballast = [0] * 50_000  # noqa: F841 -- force net allocations
        with obs.span("tune"):
            pass
    obs.flush()
    by_name = {event["name"]: event for event in read_trace_events([path])
               if event["kind"] == "span"}
    cell = by_name["cell"]
    assert cell["attrs"]["mem_delta_bytes"] > 0
    assert cell["attrs"]["rss_bytes"] > 0
    assert cell["attrs"]["model"] == "log_reg"  # ordinary attrs intact
    # spans outside HOT_SPANS are not sampled
    assert "tune" not in HOT_SPANS
    assert "mem_delta_bytes" not in by_name["tune"].get("attrs", {})


def test_profiled_span_set_is_configurable(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    with profile_memory(spans=frozenset({"tune"})):
        with obs.span("tune"):
            pass
    obs.flush()
    (event,) = [e for e in read_trace_events([path]) if e["kind"] == "span"]
    assert "rss_bytes" in event["attrs"]


def test_profiling_emits_per_worker_rss_gauge(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.configure(path)
    with profile_memory():
        with obs.span("unit"):
            pass
    obs.flush()
    gauges = [
        event
        for event in read_trace_events([path])
        if event.get("kind") == "metric" and event.get("type") == "gauge"
        and event.get("name") == "rss_bytes"
    ]
    assert gauges, "profiling must publish an rss_bytes gauge"
    assert gauges[0]["value"] > 0
    assert gauges[0]["labels"]["worker"].startswith("w")


def test_profiling_without_tracer_is_inert(tmp_path):
    # hooks installed but tracer disabled: spans are NOOP, nothing leaks
    with profile_memory():
        with obs.span("cell"):
            pass
    assert list(tmp_path.iterdir()) == []


def test_profile_memory_is_reentrant():
    with profile_memory():
        with profile_memory():
            assert memory_profiling_enabled()
        assert memory_profiling_enabled()  # inner exit must not disable
    assert not memory_profiling_enabled()


def test_hooks_do_not_change_span_event_shape(tmp_path):
    """Record-facing guarantee: profiling adds attrs, never removes or
    reorders the span fields the identity fixtures depend on."""
    path_plain = tmp_path / "plain.jsonl"
    obs.configure(path_plain)
    with obs.span("cell"):
        pass
    obs.shutdown()
    path_profiled = tmp_path / "profiled.jsonl"
    obs.configure(path_profiled)
    with profile_memory():
        with obs.span("cell"):
            pass
    obs.shutdown()
    (plain,) = [e for e in read_trace_events([path_plain]) if e["kind"] == "span"]
    (profiled,) = [
        e for e in read_trace_events([path_profiled]) if e["kind"] == "span"
    ]
    extra = {"mem_delta_bytes", "rss_bytes"}
    assert set(profiled.get("attrs", {})) - set(plain.get("attrs", {})) == extra
    assert set(profiled) == set(plain) | {"attrs"}
