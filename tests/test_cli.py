"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "german" in out and "378,817" in out


def test_rq1_command_single_dataset(capsys):
    assert main(["rq1", "--dataset", "german", "--n-rows", "600"]) == 0
    out = capsys.readouterr().out
    assert "german / age" in out


def test_rq1_intersectional(capsys):
    assert (
        main(["rq1", "--dataset", "german", "--n-rows", "600", "--intersectional"])
        == 0
    )
    out = capsys.readouterr().out
    assert "sex_x_age" in out


def test_study_and_tables_roundtrip(tmp_path, capsys):
    store_path = str(tmp_path / "store.json")
    code = main(
        [
            "study",
            "--store",
            store_path,
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "300",
            "--repetitions",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "german/mislabels: +" in out

    assert main(["tables", "--store", store_path]) == 0
    out = capsys.readouterr().out
    assert "TABLE X:" in out
    assert "TABLE XIV" in out


def test_study_with_workers(tmp_path, capsys):
    store_path = str(tmp_path / "store.json")
    code = main(
        [
            "study",
            "--store",
            store_path,
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "300",
            "--repetitions",
            "2",
            "--workers",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "planned 2 work units" in out
    # 2 repetitions x 3 default models x 1 mislabel repair
    assert "added 6 records (6 in store)" in out


def test_report_command(tmp_path, capsys):
    store_path = str(tmp_path / "store.json")
    main(
        [
            "study",
            "--store",
            store_path,
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "300",
            "--repetitions",
            "2",
        ]
    )
    capsys.readouterr()
    output = tmp_path / "report.md"
    assert main(["report", "--store", store_path, "--output", str(output)]) == 0
    text = output.read_text()
    assert text.startswith("# Study report")
    assert "## Table X:" in text


def test_report_empty_store(tmp_path, capsys):
    assert main(["report", "--store", str(tmp_path / "none.json")]) == 1


def test_tables_empty_store(tmp_path, capsys):
    assert main(["tables", "--store", str(tmp_path / "empty.json")]) == 1
    assert "empty" in capsys.readouterr().out


def test_parser_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["rq1", "--dataset", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.parametrize(
    "flag,value",
    [
        ("--workers", "0"),
        ("--workers", "-2"),
        ("--max-retries", "-1"),
        ("--max-retries", "two"),
        ("--cell-timeout", "abc"),
        ("--cell-timeout", "0"),
        ("--cell-timeout", "-1.5"),
    ],
)
def test_study_rejects_bad_executor_flags(capsys, flag, value):
    """argparse rejects malformed executor flags with exit code 2 and a
    message naming the offending flag."""
    with pytest.raises(SystemExit) as excinfo:
        main(["study", "--store", "s.json", flag, value])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert flag in err


@pytest.mark.parametrize(
    "argv,flag",
    [
        (["study", "--store", "s.json", "--trace=yes"], "--trace"),
        (["obs-report"], "store"),
        (["obs-report", "s.json", "--top", "0"], "--top"),
        (["obs-report", "s.json", "--top", "-3"], "--top"),
        (["obs-report", "s.json", "--top", "ten"], "--top"),
    ],
)
def test_observability_flags_rejected_with_message(capsys, argv, flag):
    """Malformed --trace / obs-report arguments exit 2 naming the
    offending flag, mirroring the executor-flag validation."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert flag in capsys.readouterr().err


def test_study_accepts_no_trace_default(tmp_path):
    args = build_parser().parse_args(
        ["study", "--store", "s.json", "--no-trace"]
    )
    assert args.trace is False
    assert build_parser().parse_args(["study", "--store", "s.json"]).trace is False


def test_obs_report_without_trace_data(tmp_path, capsys):
    assert main(["obs-report", str(tmp_path / "none.json")]) == 1
    assert "--trace" in capsys.readouterr().out


def test_traced_study_and_obs_report_roundtrip(tmp_path, capsys):
    """--trace produces a trace sidecar an obs-report can render,
    without changing the study records."""
    store_path = str(tmp_path / "store.json")
    code = main(
        [
            "study",
            "--store",
            store_path,
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "300",
            "--repetitions",
            "1",
            "--trace",
        ]
    )
    assert code == 0
    capsys.readouterr()
    assert (tmp_path / "store.trace.jsonl").exists()
    assert main(["obs-report", store_path, "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "RUN HEALTH" in out
    assert "Slowest cells (top 3)" in out
    assert "Cell time by model" in out
    from repro.benchmark import ResultStore

    store = ResultStore(tmp_path / "store.json")
    assert store.verify() == []
    assert len(store) == 3  # 1 repetition x 3 default models


def test_study_with_hardening_flags(tmp_path, capsys):
    """The retry/timeout/fsync flags route through the hardened
    executor and still produce a complete, verifiable store."""
    store_path = str(tmp_path / "store.json")
    code = main(
        [
            "study",
            "--store",
            store_path,
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "300",
            "--repetitions",
            "1",
            "--max-retries",
            "1",
            "--cell-timeout",
            "120",
            "--fsync-journal",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "planned 1 work units" in out
    from repro.benchmark import ResultStore

    store = ResultStore(tmp_path / "store.json")
    assert store.verify() == []
    assert not store.failures_path.exists()


# -- backends, transports & store migration -----------------------------


@pytest.mark.parametrize(
    "flag,value",
    [
        ("--backend", "fibers"),
        ("--transport", "carrier-pigeon"),
    ],
)
def test_study_rejects_unknown_backend_and_transport(capsys, flag, value):
    with pytest.raises(SystemExit) as excinfo:
        main(["study", "--store", "s.json", flag, value])
    assert excinfo.value.code == 2
    assert flag in capsys.readouterr().err


def test_study_backend_and_transport_defaults():
    args = build_parser().parse_args(["study", "--store", "s.json"])
    assert args.backend == "process"
    assert args.transport == "auto"


def test_study_serial_backend_runs_study(tmp_path, capsys):
    store = tmp_path / "study.json"
    code = main(
        [
            "study",
            "--store",
            str(store),
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "120",
            "--repetitions",
            "1",
            "--backend",
            "serial",
        ]
    )
    assert code == 0
    assert "added" in capsys.readouterr().out
    assert store.exists()


def test_store_migrate_requires_store_argument(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["store-migrate"])
    assert excinfo.value.code == 2
    assert "store" in capsys.readouterr().err


def test_store_migrate_missing_file(tmp_path, capsys):
    assert main(["store-migrate", str(tmp_path / "nope.json")]) == 1
    assert "no store" in capsys.readouterr().out


def test_store_migrate_legacy_roundtrip(tmp_path, capsys):
    from repro.benchmark import ResultStore, RunRecord, write_legacy_store

    path = tmp_path / "study.json"
    write_legacy_store(
        path,
        [
            RunRecord(
                dataset="german",
                error_type="mislabels",
                detection="cleanlab",
                repair="flip_labels",
                model="log_reg",
                repetition=0,
                tuning_seed=0,
                metrics={"dirty_test_acc": 0.5},
            )
        ],
    )
    assert main(["store-migrate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "migrated legacy store" in out
    assert (tmp_path / "study.store").exists()
    migrated = ResultStore(path)
    assert not migrated.is_legacy
    assert len(migrated) == 1 and migrated.verify() == []
    # idempotent: a second invocation is a clean no-op
    assert main(["store-migrate", str(path)]) == 0
    assert "nothing to migrate" in capsys.readouterr().out


def test_store_migrate_refuses_corrupt_store_unless_no_verify(tmp_path, capsys):
    from repro.benchmark import RunRecord, write_legacy_store

    path = tmp_path / "study.json"
    record = RunRecord(
        dataset="german",
        error_type="mislabels",
        detection="cleanlab",
        repair="flip_labels",
        model="log_reg",
        repetition=0,
        tuning_seed=0,
        metrics={"dirty_test_acc": 0.5},
    )
    write_legacy_store(path, [record])
    import json as json_module

    payload = json_module.loads(path.read_text())
    payload["records"][0]["metrics"]["dirty_test_acc"] = 0.99  # bit rot
    path.write_text(json_module.dumps(payload))
    assert main(["store-migrate", str(path)]) == 1
    assert "not migrating" in capsys.readouterr().out
    assert main(["store-migrate", str(path), "--no-verify"]) == 0


# -- live telemetry commands --------------------------------------------


@pytest.fixture(scope="module")
def telemetry_study(tmp_path_factory):
    """One traced + memory-profiled study reused by the telemetry
    command tests (monitor / obs-export / obs-diff / obs-report)."""
    store_dir = tmp_path_factory.mktemp("telemetry")
    store_path = str(store_dir / "store.json")
    code = main(
        [
            "study",
            "--store",
            store_path,
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "300",
            "--repetitions",
            "1",
            "--profile-memory",  # implies --trace
        ]
    )
    assert code == 0
    return store_path


def test_profile_memory_implies_trace_and_annotates_spans(telemetry_study):
    from repro.benchmark import ResultStore
    from repro.obs import read_trace_events

    store = ResultStore(telemetry_study)
    assert store.verify() == []
    trace_path = store.trace_path
    assert trace_path.exists()
    events = read_trace_events([trace_path])
    assert any(event.get("name") == "heartbeat" for event in events)
    assert any(
        "mem_delta_bytes" in event.get("attrs", {})
        for event in events
        if event.get("kind") == "span"
    )


def test_monitor_once_and_json(telemetry_study, capsys):
    import json

    assert main(["monitor", telemetry_study, "--once"]) == 0
    out = capsys.readouterr().out
    assert "cells:" in out and "[COMPLETE]" in out
    assert main(["monitor", telemetry_study, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["complete"] is True
    assert payload["cells_done"] == payload["planned_cells"] > 0


def test_monitor_without_trace_data(tmp_path, capsys):
    assert main(["monitor", str(tmp_path / "none.json")]) == 1
    assert "--trace" in capsys.readouterr().out


def test_obs_export_default_and_explicit_output(telemetry_study, tmp_path, capsys):
    import json
    from pathlib import Path

    assert main(["obs-export", telemetry_study]) == 0
    out = capsys.readouterr().out
    assert "perfetto" in out
    default_output = Path(telemetry_study).with_suffix("")
    default_output = default_output.parent / (default_output.name + ".trace.chrome.json")
    payload = json.loads(default_output.read_text())
    assert payload["traceEvents"]
    assert {"X", "M"} <= {event["ph"] for event in payload["traceEvents"]}
    explicit = tmp_path / "out.json"
    assert main(["obs-export", telemetry_study, "--output", str(explicit)]) == 0
    capsys.readouterr()
    assert json.loads(explicit.read_text())["otherData"]["source"] == "repro.obs"


def test_obs_export_without_trace_data(tmp_path, capsys):
    assert main(["obs-export", str(tmp_path / "none.json")]) == 1
    assert "--trace" in capsys.readouterr().out


def test_obs_diff_self_is_quiet(telemetry_study, capsys):
    import json

    assert main(["obs-diff", telemetry_study, telemetry_study]) == 0
    out = capsys.readouterr().out
    assert "RUN DIFF" in out
    assert "no changes beyond the noise thresholds" in out
    assert (
        main(
            ["obs-diff", telemetry_study, telemetry_study, "--fail-on-regression"]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["obs-diff", telemetry_study, telemetry_study, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["flagged"] == 0 and payload["entries"]


def test_obs_diff_flags_synthetic_regression(tmp_path, capsys):
    import json

    for name, seconds in (("a", 1.0), ("b", 5.0)):
        run_dir = tmp_path / name
        run_dir.mkdir()
        (run_dir / "study.trace.jsonl").write_text(
            "\n".join(
                json.dumps(
                    {
                        "v": 1,
                        "kind": "span",
                        "name": "cell",
                        "path": "cell",
                        "seconds": seconds,
                    }
                )
                for _ in range(3)
            )
            + "\n"
        )
    store_a = str(tmp_path / "a" / "study.json")
    store_b = str(tmp_path / "b" / "study.json")
    assert (
        main(["obs-diff", store_a, store_b, "--fail-on-regression"]) == 1
    )
    assert "cell.mean_seconds" in capsys.readouterr().out
    assert main(["obs-diff", store_a, store_b]) == 0  # report-only default


def test_obs_diff_without_trace_data(telemetry_study, tmp_path, capsys):
    missing = str(tmp_path / "none.json")
    assert main(["obs-diff", missing, telemetry_study]) == 1
    assert "run A" in capsys.readouterr().out
    assert main(["obs-diff", telemetry_study, missing]) == 1
    assert "run B" in capsys.readouterr().out


def test_obs_report_json_output(telemetry_study, capsys):
    import json

    assert main(["obs-report", telemetry_study, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n_events"] > 0
    assert payload["heartbeats"] > 0
    assert payload["peak_rss_bytes"] > 0
    assert "cell" in payload["memory"]


@pytest.mark.parametrize(
    "argv,flag",
    [
        (["monitor", "s.json", "--interval", "0"], "--interval"),
        (["monitor", "s.json", "--interval", "-1"], "--interval"),
        (["monitor", "s.json", "--stall-after", "0"], "--stall-after"),
        (["obs-export", "s.json", "--format", "speedscope"], "--format"),
        (["obs-diff", "a.json"], "store_b"),
        (["obs-diff", "a.json", "b.json", "--threshold", "nope"], "--threshold"),
    ],
)
def test_telemetry_flags_rejected_with_message(capsys, argv, flag):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert flag in capsys.readouterr().err


# -- fairness observatory: obs-audit / obs-baseline ---------------------


def test_study_records_a_run_ledger(telemetry_study, capsys):
    """The telemetry study ran with the default --ledger: its fairness
    audit landed in the sidecar ledger, listable via obs-baseline."""
    from pathlib import Path

    ledger = Path(telemetry_study).with_suffix("")
    ledger = ledger.parent / (ledger.name + ".ledger.jsonl")
    assert ledger.exists()
    assert main(["obs-baseline", "list", telemetry_study]) == 0
    out = capsys.readouterr().out
    assert "records=3" in out


def test_obs_baseline_pin_and_audit_self_is_clean(telemetry_study, capsys):
    assert main(["obs-baseline", "pin", telemetry_study, "--name", "golden"]) == 0
    capsys.readouterr()
    code = main(
        [
            "obs-audit",
            telemetry_study,
            "--baseline",
            "golden",
            "--fail-on-fairness-regression",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "FAIRNESS AUDIT" in out
    assert "no fairness regressions" in out


def test_obs_audit_json_and_markdown(telemetry_study, tmp_path, capsys):
    import json

    report = tmp_path / "audit.md"
    code = main(
        [
            "obs-audit",
            telemetry_study,
            "--baseline",
            "latest",
            "--json",
            "--markdown",
            str(report),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["audit"]["n_records"] == 3
    assert payload["diff"]["regressions"] == []
    assert "alerts" in payload
    document = report.read_text()
    assert document.startswith("# Fairness audit")
    assert "No fairness regressions" in document
    assert "## Audited coordinates" in document


def test_obs_audit_gate_fires_on_injected_regression(
    telemetry_study, tmp_path, capsys
):
    from repro.testing import inject_fairness_regression

    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "obs-baseline",
                "export",
                telemetry_study,
                "--output",
                str(baseline),
            ]
        )
        == 0
    )
    sabotaged = tmp_path / "sabotaged.json"
    assert inject_fairness_regression(telemetry_study, sabotaged) == 3
    capsys.readouterr()
    report = tmp_path / "audit.md"
    code = main(
        [
            "obs-audit",
            str(sabotaged),
            "--baseline",
            str(baseline),
            "--markdown",
            str(report),
            "--fail-on-fairness-regression",
        ]
    )
    assert code == 3
    assert "REGRESSION" in capsys.readouterr().out
    assert "fairness regression" in report.read_text()
    # report-only mode still exits 0 on the same regression
    assert main(["obs-audit", str(sabotaged), "--baseline", str(baseline)]) == 0


def test_obs_audit_gate_without_baseline_is_misuse(telemetry_study, capsys):
    code = main(
        ["obs-audit", telemetry_study, "--fail-on-fairness-regression"]
    )
    assert code == 2
    assert "--baseline" in capsys.readouterr().out


def test_obs_audit_empty_store_and_unknown_baseline(
    telemetry_study, tmp_path, capsys
):
    assert main(["obs-audit", str(tmp_path / "none.json")]) == 1
    capsys.readouterr()
    assert main(["obs-audit", telemetry_study, "--baseline", "nope"]) == 1
    assert "cannot resolve baseline" in capsys.readouterr().out


def test_obs_audit_custom_rules_file(telemetry_study, tmp_path, capsys):
    import json

    rules = tmp_path / "rules.json"
    rules.write_text(
        json.dumps([{"name": "zero-tolerance", "metric": "DP", "epsilon": 0.0}])
    )
    assert main(["obs-audit", telemetry_study, "--rules", str(rules)]) == 0
    out = capsys.readouterr().out
    assert "FAIRNESS AUDIT" in out


def test_obs_baseline_pin_requires_name_and_export_output(
    telemetry_study, capsys
):
    assert main(["obs-baseline", "pin", telemetry_study]) == 2
    assert "--name" in capsys.readouterr().out
    assert main(["obs-baseline", "export", telemetry_study]) == 2
    assert "--output" in capsys.readouterr().out


def test_obs_baseline_list_without_ledger(tmp_path, capsys):
    assert main(["obs-baseline", "list", str(tmp_path / "none.json")]) == 1
    assert "no runs recorded" in capsys.readouterr().out


def test_study_models_and_no_ledger_flags(tmp_path, capsys):
    from repro.benchmark import ResultStore

    store_path = str(tmp_path / "store.json")
    code = main(
        [
            "study",
            "--store",
            store_path,
            "--dataset",
            "german",
            "--error-type",
            "mislabels",
            "--n-sample",
            "300",
            "--repetitions",
            "1",
            "--models",
            "log_reg",
            "--no-ledger",
        ]
    )
    assert code == 0
    capsys.readouterr()
    store = ResultStore(store_path)
    assert len(store) == 1  # one model, one repetition
    assert {record.model for record in store.iter_records()} == {"log_reg"}
    assert not (tmp_path / "store.ledger.jsonl").exists()


def test_study_rejects_unknown_model(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["study", "--store", "s.json", "--models", "resnet"])
    assert excinfo.value.code == 2
    assert "--models" in capsys.readouterr().err
