"""Suite-wide collection gates.

The ``identity``-marked tests (the full cold-vs-incremental
differential matrix in ``tests/identity``) re-run real study slices
across every backend x transport combination, which is nightly-scale
work. They are collected but skipped by default; opt in with::

    pytest --identity-full            # whole suite + full matrix
    pytest -m identity                # the matrix alone

The one-configuration smoke test in ``tests/identity`` is unmarked and
always runs, so tier-1 still exercises the byte-identity contract.

The ``scale``-marked tests (``tests/scale``) exercise the
dictionary-encoded data plane at 100k+ rows — minutes, not seconds —
and are gated the same way::

    pytest --scale                    # whole suite + scale tests
    pytest -m scale                   # the scale tests alone
"""

import pytest

#: marker name -> (opt-in flag, skip reason)
_GATED_MARKERS = {
    "identity": (
        "--identity-full",
        "full identity matrix; opt in with --identity-full or -m identity",
    ),
    "scale": (
        "--scale",
        "100k-row scale tests; opt in with --scale or -m scale",
    ),
}


def pytest_addoption(parser):
    parser.addoption(
        "--identity-full",
        action="store_true",
        default=False,
        help="run the full incremental-identity differential matrix "
        "(every backend x transport x error type; nightly-scale)",
    )
    parser.addoption(
        "--scale",
        action="store_true",
        default=False,
        help="run the 100k-row-plus scale tests of the encoded data plane",
    )


def pytest_collection_modifyitems(config, items):
    markexpr = config.getoption("markexpr", "") or ""
    for marker, (flag, reason) in _GATED_MARKERS.items():
        if config.getoption(flag) or marker in markexpr:
            continue
        skip = pytest.mark.skip(reason=reason)
        for item in items:
            if item.get_closest_marker(marker) is not None:
                item.add_marker(skip)
