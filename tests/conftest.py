"""Suite-wide collection gates.

The ``identity``-marked tests (the full cold-vs-incremental
differential matrix in ``tests/identity``) re-run real study slices
across every backend x transport combination, which is nightly-scale
work. They are collected but skipped by default; opt in with::

    pytest --identity-full            # whole suite + full matrix
    pytest -m identity                # the matrix alone

The one-configuration smoke test in ``tests/identity`` is unmarked and
always runs, so tier-1 still exercises the byte-identity contract.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--identity-full",
        action="store_true",
        default=False,
        help="run the full incremental-identity differential matrix "
        "(every backend x transport x error type; nightly-scale)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--identity-full"):
        return
    if "identity" in (config.getoption("markexpr", "") or ""):
        return
    skip = pytest.mark.skip(
        reason="full identity matrix; opt in with --identity-full or -m identity"
    )
    for item in items:
        if item.get_closest_marker("identity") is not None:
            item.add_marker(skip)
