"""100k-row exercises of the dictionary-encoded data plane.

Gated behind the ``scale`` marker (``pytest --scale`` or ``-m scale``;
see ``tests/conftest.py``) because each test touches hundreds of
thousands of rows — minutes of work in aggregate, not tier-1 material.
The assertions mirror the tier-1 identity contract at size: whatever
the codes-native fast paths compute must match a per-value reference
on real generated data.
"""

import numpy as np
import pytest

from repro.cleaning.repair import CategoricalImputation, MissingValueRepair
from repro.datasets import load_dataset
from repro.ml.featurize import TabularFeaturizer
from repro.ml.preprocessing import OneHotEncoder
from repro.tabular import encode_values

pytestmark = pytest.mark.scale

N_ROWS = 100_000


@pytest.fixture(scope="module")
def adult_100k():
    __, table = load_dataset("adult", N_ROWS, seed=0)
    return table


def test_generators_produce_encoded_columns_at_scale(adult_100k):
    column = adult_100k.categorical("occupation")
    assert column.codes.dtype == np.int32
    assert len(column) == N_ROWS
    # decode round-trips through the object representation
    assert encode_values(column.decode()).values_equal(column)


def test_mode_imputation_matches_per_cell_reference(adult_100k):
    repair = MissingValueRepair(categorical=CategoricalImputation.MODE)
    repaired = repair.fit_transform(adult_100k)
    for name in ("workclass", "occupation", "native_country"):
        values = adult_100k.column(name)
        present = [v for v in values if v is not None]
        counts = {}
        for v in present:
            counts[v] = counts.get(v, 0) + 1
        mode = max(sorted(counts), key=lambda k: counts[k])
        expected = [mode if v is None else v for v in values]
        assert list(repaired.column(name)) == expected


def test_one_hot_from_codes_matches_object_encoding(adult_100k):
    names = ("workclass", "occupation", "sex", "race")
    encoded_cols = [adult_100k.categorical(name) for name in names]
    object_cols = [adult_100k.column(name) for name in names]
    from_codes = OneHotEncoder().fit(encoded_cols)
    from_objects = OneHotEncoder().fit(object_cols)
    assert from_codes.categories_ == from_objects.categories_
    assert np.array_equal(
        from_codes.transform(encoded_cols), from_objects.transform(object_cols)
    )


def test_featurize_after_repair_is_finite_at_scale(adult_100k):
    repaired = MissingValueRepair().fit_transform(adult_100k)
    matrix = TabularFeaturizer().fit_transform(repaired)
    assert matrix.shape[0] == N_ROWS
    assert np.isfinite(matrix).all()
