"""Tests for paired-t-test impact classification."""

import numpy as np
import pytest

from repro.stats import Impact, classify_impact, paired_t_test


def test_paired_t_test_identical_vectors_p1():
    x = np.array([0.8, 0.7, 0.9])
    assert paired_t_test(x, x) == 1.0


def test_paired_t_test_clear_shift_small_p():
    rng = np.random.default_rng(0)
    baseline = rng.normal(0.7, 0.01, size=50)
    treated = baseline + 0.1
    assert paired_t_test(baseline, treated) < 1e-10


def test_paired_t_test_drops_nan_pairs():
    baseline = np.array([0.5, np.nan, 0.5, 0.5])
    treated = np.array([0.9, 0.9, 0.9, np.nan])
    assert paired_t_test(baseline, treated) < 1.0


def test_paired_t_test_too_few_pairs_p1():
    assert paired_t_test(np.array([0.5]), np.array([0.9])) == 1.0


def test_paired_t_test_shape_mismatch():
    with pytest.raises(ValueError):
        paired_t_test(np.zeros(3), np.zeros(4))


def _vectors(shift, n=40, noise=0.01, seed=1):
    rng = np.random.default_rng(seed)
    baseline = rng.normal(0.7, noise, size=n)
    return baseline, baseline + shift


def test_classify_better_for_accuracy_gain():
    baseline, treated = _vectors(+0.05)
    assert classify_impact(baseline, treated, higher_is_better=True) is Impact.BETTER


def test_classify_worse_for_accuracy_loss():
    baseline, treated = _vectors(-0.05)
    assert classify_impact(baseline, treated, higher_is_better=True) is Impact.WORSE


def test_classify_insignificant_for_noise():
    rng = np.random.default_rng(2)
    baseline = rng.normal(0.7, 0.05, size=20)
    treated = baseline + rng.normal(0.0, 0.001, size=20)
    assert (
        classify_impact(baseline, treated, higher_is_better=True)
        is Impact.INSIGNIFICANT
    )


def test_magnitude_mode_rewards_shrinking_disparity():
    # disparity moves from -0.2 to -0.05: |d| shrinks -> fairness better
    baseline, treated = np.full(30, -0.2), np.full(30, -0.05)
    treated = treated + np.random.default_rng(3).normal(0, 0.001, 30)
    assert (
        classify_impact(baseline, treated, higher_is_better=False, use_magnitude=True)
        is Impact.BETTER
    )


def test_magnitude_mode_penalises_growing_disparity():
    baseline = np.full(30, 0.05) + np.random.default_rng(4).normal(0, 0.001, 30)
    treated = np.full(30, -0.3) + np.random.default_rng(5).normal(0, 0.001, 30)
    assert (
        classify_impact(baseline, treated, higher_is_better=False, use_magnitude=True)
        is Impact.WORSE
    )


def test_bonferroni_raises_bar():
    rng = np.random.default_rng(6)
    baseline = rng.normal(0.7, 0.01, size=8)
    treated = baseline + 0.01 + rng.normal(0.0, 0.008, size=8)
    unadjusted = classify_impact(baseline, treated, higher_is_better=True)
    adjusted = classify_impact(
        baseline, treated, higher_is_better=True, n_hypotheses=10_000_000
    )
    assert unadjusted is Impact.BETTER
    assert adjusted is Impact.INSIGNIFICANT


def test_invalid_n_hypotheses():
    with pytest.raises(ValueError):
        classify_impact(np.zeros(3), np.zeros(3), True, n_hypotheses=0)


def test_impact_enum_values():
    assert {impact.value for impact in Impact} == {
        "worse",
        "insignificant",
        "better",
    }
