"""Tests for the G² independence test."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import g_test, g_test_counts


def test_strong_dependence_is_significant():
    result = g_test(np.array([[90, 10], [10, 90]]))
    assert result.significant
    assert result.p_value < 1e-10


def test_independence_not_significant():
    result = g_test(np.array([[50, 50], [50, 50]]))
    assert not result.significant
    assert result.statistic == pytest.approx(0.0)


def test_matches_scipy_log_likelihood_chi2():
    table = np.array([[30, 70], [45, 55]], dtype=float)
    ours = g_test(table)
    theirs = scipy_stats.chi2_contingency(
        table, correction=False, lambda_="log-likelihood"
    )
    assert ours.statistic == pytest.approx(theirs[0])
    assert ours.p_value == pytest.approx(theirs[1])


def test_dof_for_2x2():
    assert g_test(np.array([[5, 5], [5, 5]])).dof == 1


def test_larger_tables_supported():
    table = np.array([[10, 20, 30], [30, 20, 10]])
    result = g_test(table)
    assert result.dof == 2
    assert result.significant


def test_zero_row_dropped():
    result = g_test(np.array([[0, 0], [10, 20]]))
    assert not result.significant
    assert result.dof == 0


def test_zero_column_dropped():
    result = g_test(np.array([[0, 10], [0, 20]]))
    assert not result.significant


def test_zero_cell_contributes_nothing():
    # a zero cell must not produce NaN
    result = g_test(np.array([[0, 100], [50, 50]]))
    assert np.isfinite(result.statistic)
    assert result.significant


def test_negative_counts_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        g_test(np.array([[-1, 2], [3, 4]]))


def test_non_2d_rejected():
    with pytest.raises(ValueError, match="2-d"):
        g_test(np.array([1, 2, 3]))


def test_alpha_threshold_respected():
    table = np.array([[60, 40], [45, 55]])
    loose = g_test(table, alpha=0.05)
    strict = g_test(table, alpha=1e-6)
    assert loose.significant
    assert not strict.significant


def test_g_test_counts_wrapper():
    result = g_test_counts(90, 100, 10, 100)
    direct = g_test(np.array([[90, 10], [10, 90]]))
    assert result.statistic == pytest.approx(direct.statistic)


def test_g_test_counts_validates_totals():
    with pytest.raises(ValueError):
        g_test_counts(11, 10, 0, 10)
    with pytest.raises(ValueError):
        g_test_counts(0, 10, 11, 10)


def test_small_disparity_large_sample_significant():
    # 51% vs 49% flagged is significant with enough data
    result = g_test_counts(5100, 10000, 4900, 10000)
    assert result.significant


def test_small_disparity_small_sample_not_significant():
    result = g_test_counts(51, 100, 49, 100)
    assert not result.significant
