"""Tests for the paper-style text renderers."""

from repro.benchmark.deepdive import ModelSummary
from repro.benchmark.disparity import DisparityFinding
from repro.benchmark.impact import ImpactMatrix
from repro.reporting import (
    render_case_counts,
    render_dataset_table,
    render_disparity_figure,
    render_impact_matrix,
    render_model_table,
)
from repro.stats.gtest import GTestResult
from repro.stats.impact import Impact


def make_matrix():
    matrix = ImpactMatrix()
    matrix.add(Impact.WORSE, Impact.BETTER)
    matrix.add(Impact.BETTER, Impact.BETTER)
    matrix.add(Impact.INSIGNIFICANT, Impact.INSIGNIFICANT)
    matrix.add(Impact.INSIGNIFICANT, Impact.INSIGNIFICANT)
    return matrix


def test_impact_matrix_renders_counts_and_percentages():
    text = render_impact_matrix(make_matrix(), "TABLE TEST")
    assert "TABLE TEST" in text
    assert "50.0% (2)" in text  # insignificant/insignificant cell
    assert "100% (4)" in text


def test_impact_matrix_rows_in_paper_order():
    text = render_impact_matrix(make_matrix(), "T")
    lines = text.splitlines()
    assert lines[3].startswith("worse")
    assert lines[4].startswith("insignificant")
    assert lines[5].startswith("better")
    assert lines[6].startswith("total")


def test_empty_impact_matrix_renders():
    text = render_impact_matrix(ImpactMatrix(), "EMPTY")
    assert "100% (0)" in text


def test_model_table():
    summaries = [
        ModelSummary(
            model="log_reg",
            n_configurations=100,
            fairness_worse=36,
            fairness_better=21,
            both_better=16,
        )
    ]
    text = render_model_table(summaries, "TABLE XIV")
    assert "log_reg" in text
    assert "36.0% (36)" in text
    assert "21.0% (21)" in text
    assert "16.0% (16)" in text


def test_dataset_table():
    rows = [
        {
            "name": "german",
            "source": "finance",
            "n_tuples": 1000,
            "sensitive_attributes": ("age", "sex"),
        }
    ]
    text = render_dataset_table(rows, "TABLE I")
    assert "german" in text
    assert "1,000" in text
    assert "age, sex" in text


def test_case_counts():
    text = render_case_counts(
        {"total": 40, "non_worsening": 37, "fairness_improving": 23, "win_win": 17},
        "CASES",
    )
    assert "37 / 40" in text
    assert "23 / 40" in text
    assert "17 / 40" in text


def make_finding(significant=True):
    return DisparityFinding(
        dataset="adult",
        detector="missing_values",
        group_key="race",
        privileged_flagged=50,
        privileged_total=1000,
        disadvantaged_flagged=150,
        disadvantaged_total=1000,
        test=GTestResult(
            statistic=10.0,
            p_value=0.001 if significant else 0.5,
            dof=1,
            significant=significant,
        ),
    )


def test_disparity_figure_marks_significance():
    text = render_disparity_figure([make_finding()], "FIG 1")
    assert "FIG 1" in text
    assert "missing_values  * " in text
    assert "5.0%" in text
    assert "15.0%" in text


def test_disparity_figure_no_marker_when_insignificant():
    text = render_disparity_figure([make_finding(significant=False)], "FIG")
    assert "missing_values  * " not in text


def test_disparity_figure_empty():
    assert "(no findings)" in render_disparity_figure([], "FIG")
