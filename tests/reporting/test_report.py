"""Tests for the markdown study-report builder."""

import pytest

from repro.benchmark import ExperimentRunner, ResultStore, StudyConfig
from repro.reporting import build_study_report


@pytest.fixture(scope="module")
def mini_store():
    store = ResultStore()
    runner = ExperimentRunner(StudyConfig.smoke_scale(), store)
    runner.run_dataset_error("german", "missing_values", models=("log_reg",))
    return store


def test_report_contains_expected_sections(mini_store):
    report = build_study_report(mini_store, title="Smoke study")
    assert report.startswith("# Smoke study")
    assert "## Table II" in report
    assert "## Table IV" in report  # intersectional groups exist on german
    assert "## Table XIV" in report
    assert "Headline:" in report


def test_report_skips_absent_error_types(mini_store):
    report = build_study_report(mini_store)
    assert "## Table VI:" not in report  # no outlier runs in the store
    assert "## Table X:" not in report


def test_report_mentions_store_size(mini_store):
    report = build_study_report(mini_store)
    assert f"{len(mini_store)} run records" in report


def test_empty_store_report():
    report = build_study_report(ResultStore(), title="Empty")
    assert report.startswith("# Empty")
    assert "## Table" not in report
