"""Property tests of each incremental reuse path in isolation.

Hypothesis generates random parent->child row deltas — label flips,
imputations, outlier clamps — and each property pins one reuse path
to its cold counterpart: the delta manifest against a scalar oracle,
patched featurisation against a cold featurise, and every scoped
estimator fast path (kNN distance memo, booster presort sharing, warm
logistic starts) against the unscoped fit, byte for byte. Settings are
derandomized so tier-1 runs are reproducible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    GradientBoostedTreesClassifier,
    KNearestNeighborsClassifier,
    LogisticRegressionClassifier,
    incremental,
)
from repro.ml.tree import presort_orders
from repro.tabular import Table
from repro.testing.strategies import DELTA_EDIT_KINDS, delta_cases, version_cases

SETTINGS = settings(max_examples=50, deadline=None, derandomize=True)


# -- delta manifests ------------------------------------------------------


@SETTINGS
@given(case=delta_cases())
def test_table_delta_matches_scalar_oracle(case):
    delta = incremental.table_delta(case.parent, case.child)
    assert delta is not None
    assert delta.n_rows == case.parent.n_rows
    assert tuple(delta.changed_rows) == case.changed_rows
    assert delta.changed_columns == case.changed_columns
    assert delta.changed_categorical == tuple(
        name for name in case.changed_columns if name.startswith("cat_")
    )
    assert delta.is_empty == (not case.changed_cells)


@SETTINGS
@given(case=delta_cases(edit_kinds=("impute",)))
def test_imputation_deltas_touch_only_missing_cells(case):
    """Imputation edits change exactly the parent's missing cells."""
    for row, name in case.changed_cells:
        value = case.parent.column(name)[row]
        if name.startswith("num_"):
            assert np.isnan(value)
        else:
            assert value is None


def test_table_delta_declines_on_misaligned_tables():
    parent = Table.from_columns({"x": [1.0, 2.0], "c": ["a", "b"]})
    fewer_rows = Table.from_columns({"x": [1.0], "c": ["a"]})
    renamed = Table.from_columns({"y": [1.0, 2.0], "c": ["a", "b"]})
    kind_change = Table.from_columns({"x": ["1", "2"], "c": ["a", "b"]})
    assert incremental.table_delta(parent, fewer_rows) is None
    assert incremental.table_delta(parent, renamed) is None
    assert incremental.table_delta(parent, kind_change) is None


@SETTINGS
@given(case=version_cases(edit_kinds=DELTA_EDIT_KINDS, allow_missing=True))
def test_version_delta_reports_label_flips(case):
    delta = incremental.version_delta(
        case.train.parent,
        case.parent_labels,
        case.test.parent,
        case.train.child,
        case.child_labels,
        case.test.child,
    )
    assert delta is not None
    assert tuple(delta.label_rows) == case.label_rows
    assert tuple(delta.train.changed_rows) == case.train.changed_rows
    assert tuple(delta.test.changed_rows) == case.test.changed_rows


# -- incremental featurisation -------------------------------------------


@SETTINGS
@given(case=version_cases())
def test_incremental_featurize_is_byte_identical_or_declines(case):
    parent = incremental.featurize_version(None, case.train.parent, case.test.parent)
    delta = incremental.version_delta(
        case.train.parent,
        case.parent_labels,
        case.test.parent,
        case.train.child,
        case.child_labels,
        case.test.child,
    )
    assert delta is not None
    patched = incremental.incremental_featurize(
        None, parent, delta, case.train.child, case.test.child
    )
    if patched is None:
        return  # declined; the runner falls back to the cold path
    cold = incremental.featurize_version(None, case.train.child, case.test.child)
    assert patched.X_train.tobytes() == cold.X_train.tobytes()
    assert patched.X_test.tobytes() == cold.X_test.tobytes()
    assert patched.numeric_width == cold.numeric_width


def test_incremental_featurize_patches_a_flip():
    """A category flip within the parent's categories must not decline."""
    parent_train = Table.from_columns(
        {"x": [0.0, 1.0, 2.0, 3.0], "c": ["a", "b", "a", "b"]}
    )
    child_train = Table.from_columns(
        {"x": [0.0, 1.0, 2.0, 3.0], "c": ["b", "b", "a", "b"]}
    )
    test = Table.from_columns({"x": [0.5, 1.5], "c": ["a", "b"]})
    labels = np.zeros(4, dtype=np.int64)
    parent = incremental.featurize_version(None, parent_train, test)
    delta = incremental.version_delta(
        parent_train, labels, test, child_train, labels, test
    )
    patched = incremental.incremental_featurize(
        None, parent, delta, child_train, test
    )
    assert patched is not None
    cold = incremental.featurize_version(None, child_train, test)
    assert patched.X_train.tobytes() == cold.X_train.tobytes()
    assert patched.X_test.tobytes() == cold.X_test.tobytes()
    # the unchanged test table reuses the parent's block outright
    assert patched.X_test[:, patched.numeric_width :] is parent.X_test[
        :, parent.numeric_width :
    ] or np.array_equal(patched.X_test, parent.X_test)


def test_incremental_featurize_declines_on_new_category():
    parent_train = Table.from_columns({"x": [0.0, 1.0], "c": ["a", "b"]})
    child_train = Table.from_columns({"x": [0.0, 1.0], "c": ["a", "zzz"]})
    test = Table.from_columns({"x": [0.5], "c": ["a"]})
    labels = np.zeros(2, dtype=np.int64)
    parent = incremental.featurize_version(None, parent_train, test)
    delta = incremental.version_delta(
        parent_train, labels, test, child_train, labels, test
    )
    assert (
        incremental.incremental_featurize(None, parent, delta, child_train, test)
        is None
    )


@SETTINGS
@given(case=version_cases(edit_kinds=("flip",)))
def test_masks_reusable_tracks_changed_test_columns(case):
    delta = incremental.version_delta(
        case.train.parent,
        case.parent_labels,
        case.test.parent,
        case.train.child,
        case.child_labels,
        case.test.child,
    )
    assert delta is not None
    changed = set(case.test.changed_columns)
    for name in case.test.parent.column_names:
        assert incremental.masks_reusable([name], delta.test) == (name not in changed)
    assert incremental.masks_reusable([], delta.test)


# -- the reuse scope ------------------------------------------------------


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_fingerprints_are_content_addressed(seed):
    rng = np.random.default_rng(seed)
    scope = incremental.ReuseScope()
    array = rng.normal(size=(7, 3))
    twin = array.copy()
    other = array.copy()
    other[0, 0] += 1.0
    assert scope.fingerprint(array) == scope.fingerprint(twin)
    assert scope.fingerprint(array) != scope.fingerprint(other)
    assert scope.fingerprint(array) != scope.fingerprint(array.astype(np.float32))


def test_memo_hits_return_the_cached_object_and_count():
    scope = incremental.ReuseScope()
    a = np.arange(6, dtype=np.float64)
    first = scope.memo("demo", (a,), (), lambda: {"value": 1})
    second = scope.memo("demo", (a.copy(),), (), lambda: {"value": 2})
    assert second is first
    assert scope.counts() == {"demo": {"hits": 1, "misses": 1}}
    assert scope.hits() == 1


# -- scoped estimator fast paths ------------------------------------------


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_knn_scope_is_byte_identical(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(40, 4))
    y = (rng.random(40) > 0.5).astype(np.int64)
    X_test = rng.normal(size=(12, 4))
    cold = KNearestNeighborsClassifier(n_neighbors=5).fit(X, y).predict_proba(X_test)
    scope = incremental.ReuseScope()
    with incremental.reuse_scope(scope):
        first = (
            KNearestNeighborsClassifier(n_neighbors=5).fit(X, y).predict_proba(X_test)
        )
        second = (
            KNearestNeighborsClassifier(n_neighbors=5)
            .fit(X.copy(), y)
            .predict_proba(X_test.copy())
        )
    assert first.tobytes() == cold.tobytes()
    assert second.tobytes() == cold.tobytes()
    assert scope.stats["knn_train_sq"][0] >= 1  # second fit reused the norms
    assert scope.stats["knn_distances"][0] >= 1


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_boosting_scope_is_byte_identical(seed):
    rng = np.random.default_rng(seed)
    # a coarse value grid forces argsort ties, exercising stability
    X = rng.choice([-1.0, 0.0, 0.5, 2.0], size=(50, 3))
    y = (rng.random(50) > 0.5).astype(np.int64)
    X_test = rng.choice([-1.0, 0.25, 2.0], size=(15, 3))
    params = dict(n_estimators=5, max_depth=2, random_state=0)
    cold = (
        GradientBoostedTreesClassifier(**params).fit(X, y).predict_proba(X_test)
    )
    scope = incremental.ReuseScope()
    with incremental.reuse_scope(scope):
        first = (
            GradientBoostedTreesClassifier(**params).fit(X, y).predict_proba(X_test)
        )
        second = (
            GradientBoostedTreesClassifier(**params)
            .fit(X.copy(), y)
            .predict_proba(X_test)
        )
    assert first.tobytes() == cold.tobytes()
    assert second.tobytes() == cold.tobytes()
    # one presort per fit, second fit served from the memo
    assert scope.stats["tree_presort"] == [1, 1]


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_presort_orders_match_per_round_argsorts(seed):
    rng = np.random.default_rng(seed)
    X = rng.choice([-3.0, 0.0, 0.0, 1.0, 4.0], size=(30, 4))
    orders = presort_orders(X)
    for feature in range(X.shape[1]):
        expected = np.argsort(X[:, feature], kind="mergesort")
        assert np.array_equal(orders[feature], expected)


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**12))
def test_logistic_warm_start_predictions_match_cold(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 4))
    y = (X[:, 0] + 0.5 * rng.normal(size=60) > 0).astype(np.int64)
    child_X = X.copy()
    child_X[:3] += 0.1  # a small repair-sized perturbation
    X_test = rng.normal(size=(20, 4))
    cold = LogisticRegressionClassifier(C=1.0).fit(child_X, y).predict(X_test)
    scope = incremental.ReuseScope()
    with incremental.reuse_scope(scope):
        LogisticRegressionClassifier(C=1.0).fit(X, y)  # parent seeds the store
        warm_model = LogisticRegressionClassifier(C=1.0).fit(child_X, y)
        warm = warm_model.predict(X_test)
    assert scope.stats["logreg_warm"] == [1, 1]  # second fit warm-started
    assert warm.tobytes() == cold.tobytes()


def test_logistic_warm_guard_resolves_boundary_logits():
    """A test point engineered onto the boundary must trigger the cold
    re-solve, and predictions still match the cold fit."""
    rng = np.random.default_rng(7)
    X = rng.normal(size=(50, 3))
    y = (X[:, 0] > 0).astype(np.int64)
    scope = incremental.ReuseScope()
    with incremental.reuse_scope(scope):
        LogisticRegressionClassifier(C=1.0).fit(X, y)
        model = LogisticRegressionClassifier(C=1.0).fit(X.copy(), y)
        assert model._warm_pending is not None
        # place a probe exactly on the warm solution's boundary
        w = model.coef_
        probe = (-model.intercept_ / np.dot(w, w)) * w
        cold_model = LogisticRegressionClassifier(C=1.0)
    cold = cold_model.fit(X, y).predict(probe[None, :])
    with incremental.reuse_scope(scope):
        warm = model.predict(probe[None, :])
        assert model._warm_pending is None  # guard fired and re-solved
    assert scope.stats["logreg_warm_guard"][1] >= 1
    assert warm.tobytes() == cold.tobytes()


def test_scope_is_inert_outside_runner():
    assert incremental.active() is None
    scope = incremental.ReuseScope()
    with incremental.reuse_scope(scope):
        assert incremental.active() is scope
        inner = incremental.ReuseScope()
        with incremental.reuse_scope(inner):
            assert incremental.active() is inner
        assert incremental.active() is scope
    assert incremental.active() is None
