"""Cold-vs-incremental differential tests.

The smoke test runs in tier-1 and pins the headline contract on one
configuration; the ``identity``-marked matrix (opt-in, see
``tests/conftest.py``) sweeps all three error types across every
backend x transport combination with all three model families.
"""

import pytest

from repro.benchmark.transport import shared_memory_available
from repro.testing.fixtures import chaos_config

ERROR_TYPES = ("missing_values", "outliers", "mislabels")

#: (backend, transport): the runner loop, the three executor backends,
#: and both process-pool dataset transports. Transport only crosses a
#: process boundary, so non-process backends pin it to "auto".
BACKEND_MATRIX = [
    ("runner", "auto"),
    ("serial", "auto"),
    ("thread", "auto"),
    ("process", "pickle"),
    pytest.param(
        "process",
        "shm",
        marks=pytest.mark.skipif(
            not shared_memory_available(),
            reason="POSIX shared memory + fork unavailable",
        ),
    ),
]


def test_incremental_smoke_byte_identical(assert_cells_identical):
    """Tier-1 smoke: one config, serial runner, store bytes identical."""
    assert_cells_identical()


def test_incremental_smoke_all_models(assert_cells_identical):
    """Tier-1 smoke: every model family shares one warm repetition."""
    assert_cells_identical(
        chaos_config(models=("log_reg", "knn", "xgboost"), n_repetitions=1)
    )


@pytest.mark.identity
@pytest.mark.parametrize("error_type", ERROR_TYPES)
@pytest.mark.parametrize(("backend", "transport"), BACKEND_MATRIX)
def test_incremental_matrix_byte_identical(
    assert_cells_identical, backend, transport, error_type
):
    """Full matrix: 3 models x 3 error types x every backend/transport."""
    assert_cells_identical(
        chaos_config(models=("log_reg", "knn", "xgboost")),
        backend=backend,
        transport=transport,
        error_types=(error_type,),
    )
