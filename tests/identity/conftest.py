"""Identity-suite fixtures: the cold-vs-incremental differential harness.

``assert_cells_identical`` runs the same study slice twice — once cold
(``incremental=False``, serial, memoized across tests) and once with
the reuse scope enabled on the requested backend/transport — and diffs
the resulting store's manifest and every compressed shard byte for
byte. It is the executable form of the incremental subsystem's
contract: reuse may only ever change *when* results are computed,
never a single bit of *what*.
"""

from dataclasses import replace

import pytest

from repro.benchmark import (
    ExecutorOptions,
    ExperimentRunner,
    ResultStore,
    run_parallel_study,
)
from repro.testing.fixtures import (
    chaos_config,
    serial_baseline_fingerprint,
    store_fingerprint,
)


@pytest.fixture
def assert_cells_identical(tmp_path):
    """Callable asserting an incremental run matches the cold store.

    Parameters mirror the study surface: pass a full ``config`` (its
    ``incremental`` flag is overridden on each side) or keyword
    overrides for :func:`repro.testing.fixtures.chaos_config`;
    ``backend`` selects the in-process runner (``"runner"``) or an
    executor backend (``"serial"``/``"thread"``/``"process"``), with
    ``transport`` applying to the process pool. Returns the matching
    fingerprint so callers can chain further comparisons.
    """

    def check(
        config=None,
        *,
        backend="runner",
        transport="auto",
        workers=2,
        datasets=("german",),
        error_types=("mislabels",),
        **overrides,
    ):
        base = config if config is not None else chaos_config(**overrides)
        cold = replace(base, incremental=False)
        warm = replace(base, incremental=True)
        baseline = serial_baseline_fingerprint(cold, datasets, error_types, tmp_path)
        path = tmp_path / f"incremental-{backend}-{transport}.json"
        store = ResultStore(path)
        if backend == "runner":
            runner = ExperimentRunner(warm, store)
            for error_type in error_types:
                for dataset in datasets:
                    runner.run_dataset_error(dataset, error_type)
            store.save()
        else:
            run_parallel_study(
                warm,
                store,
                workers=workers,
                datasets=datasets,
                error_types=error_types,
                options=ExecutorOptions(backend=backend, transport=transport),
            )
        actual = store_fingerprint(path)
        assert actual.keys() == baseline.keys(), (
            f"{backend}/{transport}: shard layout diverged from cold baseline: "
            f"{sorted(actual)} != {sorted(baseline)}"
        )
        diverged = [name for name in baseline if actual[name] != baseline[name]]
        assert not diverged, (
            f"{backend}/{transport}: incremental store diverged from the "
            f"cold baseline in {diverged}"
        )
        return actual

    return check
