"""Cross-version byte-identity against a checked-in golden store.

The differential tests in this package compare two runs of the *same*
code. This test pins the store bytes against a fixture captured with
the pre-dictionary-encoding object-array representation (PR 8), so a
representation change that shifted values, category order, mode
tie-breaks, or shard layout — even one that is internally consistent —
fails loudly. Regenerate the fixture only for an *intentional* output
change, by running the snippet in ``tests/identity/golden/``'s history:
one ``chaos_config()`` german/mislabels slice saved via
``ResultStore``.
"""

from pathlib import Path

from repro import obs
from repro.benchmark import ExperimentRunner, ResultStore
from repro.obs import profile_memory
from repro.testing.fixtures import chaos_config, store_fingerprint

GOLDEN = Path(__file__).parent / "golden" / "study.json"


def test_store_bytes_match_pre_encoding_golden(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    runner = ExperimentRunner(chaos_config(), store)
    runner.run_dataset_error("german", "mislabels")
    store.save()

    actual = store_fingerprint(tmp_path / "study.json")
    golden = store_fingerprint(GOLDEN)
    assert actual.keys() == golden.keys(), (
        f"shard layout diverged from golden: "
        f"{sorted(actual)} != {sorted(golden)}"
    )
    diverged = [name for name in golden if actual[name] != golden[name]]
    assert not diverged, (
        f"store bytes diverged from the pre-encoding golden in {diverged}; "
        "the dictionary-encoded data plane must be byte-invisible"
    )


def test_store_bytes_match_golden_with_full_telemetry(tmp_path):
    """Heartbeats + memory profiling must be byte-invisible to records.

    The same golden slice runs with the whole telemetry pipeline on —
    tracing with heartbeat emission and tracemalloc/RSS memory
    profiling — and must still produce a store fingerprint identical
    to the fixture. Telemetry may only ever land in trace sidecars,
    never in a record.
    """
    store_path = tmp_path / "study.json"
    store = ResultStore(store_path)
    runner = ExperimentRunner(chaos_config(), store)
    with obs.scoped(tmp_path / "study.trace.jsonl"):
        with profile_memory():
            obs.heartbeat(phase="unit_start", n_cells=0)  # explicit beat too
            runner.run_dataset_error("german", "mislabels")
        store.save()

    trace_path = tmp_path / "study.trace.jsonl"
    assert trace_path.exists() and trace_path.stat().st_size > 0
    events = obs.read_trace_events([trace_path])
    assert any(event.get("name") == "heartbeat" for event in events)
    assert any(
        "mem_delta_bytes" in event.get("attrs", {})
        for event in events
        if event.get("kind") == "span"
    ), "profiling must annotate hot spans"

    actual = store_fingerprint(store_path)
    golden = store_fingerprint(GOLDEN)
    assert actual.keys() == golden.keys()
    diverged = [name for name in golden if actual[name] != golden[name]]
    assert not diverged, (
        f"store bytes diverged from golden in {diverged} with telemetry "
        "enabled; heartbeats and memory profiling must be byte-invisible"
    )


def test_store_bytes_match_golden_with_fairness_telemetry_and_ledger(tmp_path):
    """Fairness events + the run ledger must be byte-invisible too.

    The golden slice runs with tracing on (which now emits a
    ``fairness`` event per record) and its audit appended to the run
    ledger; the store fingerprint must stay identical to the fixture —
    fairness telemetry lives in trace sidecars and the ledger only.
    A second audit of the identical bytes must also diff clean.
    """
    from repro.obs import build_audit, diff_audits, record_run

    store_path = tmp_path / "study.json"
    store = ResultStore(store_path)
    runner = ExperimentRunner(chaos_config(), store)
    with obs.scoped(tmp_path / "study.trace.jsonl"):
        runner.run_dataset_error("german", "mislabels")
        store.save()
    record_run(store, config=chaos_config())

    events = obs.read_trace_events([tmp_path / "study.trace.jsonl"])
    fairness_events = [e for e in events if e.get("name") == "fairness"]
    assert len(fairness_events) == len(store)
    assert (tmp_path / "study.ledger.jsonl").exists()
    assert store.journal_paths() == []  # the ledger is not a journal

    actual = store_fingerprint(store_path)
    golden = store_fingerprint(GOLDEN)
    assert actual.keys() == golden.keys()
    diverged = [name for name in golden if actual[name] != golden[name]]
    assert not diverged, (
        f"store bytes diverged from golden in {diverged} with fairness "
        "telemetry and the run ledger enabled; fairness outcomes must "
        "only ever land in sidecars"
    )

    # self-diff discipline: auditing the same bytes twice reports
    # nothing — the CI gate can never flag an unchanged run
    audit = build_audit(store)
    diff = diff_audits(audit, build_audit(ResultStore(store_path)))
    assert diff.findings and diff.regressions == []
    assert all(f.p_value == 1.0 for f in diff.findings)
