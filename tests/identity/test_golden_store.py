"""Cross-version byte-identity against a checked-in golden store.

The differential tests in this package compare two runs of the *same*
code. This test pins the store bytes against a fixture captured with
the pre-dictionary-encoding object-array representation (PR 8), so a
representation change that shifted values, category order, mode
tie-breaks, or shard layout — even one that is internally consistent —
fails loudly. Regenerate the fixture only for an *intentional* output
change, by running the snippet in ``tests/identity/golden/``'s history:
one ``chaos_config()`` german/mislabels slice saved via
``ResultStore``.
"""

from pathlib import Path

from repro.benchmark import ExperimentRunner, ResultStore
from repro.testing.fixtures import chaos_config, store_fingerprint

GOLDEN = Path(__file__).parent / "golden" / "study.json"


def test_store_bytes_match_pre_encoding_golden(tmp_path):
    store = ResultStore(tmp_path / "study.json")
    runner = ExperimentRunner(chaos_config(), store)
    runner.run_dataset_error("german", "mislabels")
    store.save()

    actual = store_fingerprint(tmp_path / "study.json")
    golden = store_fingerprint(GOLDEN)
    assert actual.keys() == golden.keys(), (
        f"shard layout diverged from golden: "
        f"{sorted(actual)} != {sorted(golden)}"
    )
    diverged = [name for name in golden if actual[name] != golden[name]]
    assert not diverged, (
        f"store bytes diverged from the pre-encoding golden in {diverged}; "
        "the dictionary-encoded data plane must be byte-invisible"
    )
