"""The acceptance tests of the fault-injection harness.

For every injectable fault kind, a parallel study that crashes and is
retried/resumed must converge to a result store **byte-identical** to
the serial baseline, with zero integrity violations and no journal or
failure residue — the property the paper's study apparatus (like
CleanML's and FairPrep's) silently depends on.
"""

import pytest

from repro.benchmark import ResultStore, StudyAborted
from repro.testing import FAULT_KINDS, Fault, FaultPlan, FaultyExecutor
from repro.testing.fixtures import chaos_config

pytestmark = pytest.mark.chaos


#: Generous per-cell deadline: a real cell takes ~0.1 s, so legitimate
#: cells never trip the watchdog even under pool contention, while an
#: injected slow cell (sleeping slow_factor x this) reliably does.
CELL_TIMEOUT = 1.0


def plan_for(kind, repetition=0, at=0, attempts=1):
    return FaultPlan(
        faults=(
            Fault(
                kind=kind,
                dataset="german",
                error_type="mislabels",
                repetition=repetition,
                at=at,
                attempts=attempts,
            ),
        ),
        slow_factor=1.5,
    )


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_each_fault_kind_recovers_byte_identical(chaos_study, kind):
    """Killed-and-resumed under every fault kind == serial baseline."""
    plan = plan_for(kind)
    cell_timeout = CELL_TIMEOUT if kind == "slow_cell" else None
    added = chaos_study.run(plan=plan, workers=2, cell_timeout=cell_timeout)
    assert added == 2
    chaos_study.assert_converged()


@pytest.mark.parametrize("kind", ("crash_pre_append", "crash_post_append"))
def test_crash_recovers_in_process_executor(chaos_study, kind):
    """The workers=1 in-process path retries and recovers identically."""
    chaos_study.run(plan=plan_for(kind), workers=1)
    chaos_study.assert_converged()


@pytest.mark.parametrize("kind", ("crash_post_append", "transient_error"))
def test_thread_backend_recovers_byte_identical(chaos_study, kind):
    """The thread backend heals faults exactly like the process pool —
    including journal replay from per-thread shards."""
    added = chaos_study.run(plan=plan_for(kind), workers=2, backend="thread")
    assert added == 2
    chaos_study.assert_converged()


def test_thread_backend_slow_cell_trips_monotonic_fallback(chaos_study):
    """Off the main thread the deadline check is post-hoc, but an
    injected slow cell still fails, retries and converges."""
    added = chaos_study.run(
        plan=plan_for("slow_cell"),
        workers=2,
        backend="thread",
        cell_timeout=CELL_TIMEOUT,
    )
    assert added == 2
    chaos_study.assert_converged()


def test_parent_kill_then_resume_converges(chaos_study):
    """A simulated parent kill leaves journal shards; a resume run
    recovers them without recomputation and converges."""
    with pytest.raises(StudyAborted):
        chaos_study.run(abort_after_units=1)
    # the compacted save never ran: the first unit lives only in its shard
    assert not chaos_study.store_path.exists()
    shards = list(chaos_study.store_path.parent.glob("chaos-study.*.jsonl"))
    assert shards, "journal shards should survive the kill"
    resumed = ResultStore(chaos_study.store_path)
    recovered = len(resumed)
    assert recovered >= 1
    added = chaos_study.resume()
    assert added == 2 - recovered
    chaos_study.assert_converged()


def test_kill_under_faults_then_resume_converges(chaos_study):
    """Faults and a parent kill in the same run still converge."""
    plan = plan_for("crash_post_append", repetition=1)
    with pytest.raises(StudyAborted):
        chaos_study.run(plan=plan, workers=1, abort_after_units=1)
    chaos_study.resume()
    chaos_study.assert_converged()


def test_crash_post_append_records_recovered_not_recomputed(chaos_study):
    """After a post-append crash the journaled record is recovered from
    the shard: the retried unit plans no pending cells for it."""
    plan = plan_for("crash_post_append", attempts=1)
    progress_lines = []
    executor = FaultyExecutor(plan=plan, max_retries=2)
    store = ResultStore(chaos_study.store_path)
    executor.run(
        chaos_study.config,
        store,
        workers=1,
        datasets=("german",),
        error_types=("mislabels",),
        progress=progress_lines.append,
    )
    assert any("recovered from journal" in line for line in progress_lines)
    chaos_study.assert_converged()


def test_poisoned_unit_does_not_abort_study(chaos_study):
    """A unit that keeps failing is poisoned into the sidecar while the
    rest of the study completes; a later clean run heals it."""
    plan = plan_for("transient_error", attempts=99)
    added = chaos_study.run(plan=plan, workers=2, max_retries=1)
    assert added == 1  # repetition 1 completed, repetition 0 poisoned
    store = chaos_study.store()
    failures = store.failures_path
    assert failures.exists()
    violations = store.verify()
    assert any("poisoned" in violation for violation in violations)
    # the resume completes the poisoned unit and clears the sidecar
    assert chaos_study.resume() == 1
    chaos_study.assert_converged()


def test_fsync_journal_run_converges(chaos_study):
    """The durable-journal option changes nothing about the results."""
    chaos_study.run(
        plan=plan_for("crash_post_append"), workers=2, fsync_journal=True
    )
    chaos_study.assert_converged()


def test_scheduled_plan_is_deterministic(chaos_study):
    """FaultPlan.scheduled is a pure function of seed and coordinates."""
    units = chaos_study.unit_coords
    assert FaultPlan.scheduled(7, units) == FaultPlan.scheduled(7, units)
    seeds = [FaultPlan.scheduled(seed, units) for seed in range(20)]
    assert any(plan.faults for plan in seeds), "no seed scheduled any fault"


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6))
def test_randomized_fault_sweep_converges(tmp_path, seed):
    """Seeded pseudo-random plans over all units always converge."""
    from repro.testing.fixtures import ChaosStudy

    study = ChaosStudy(tmp_path, config=chaos_config())
    plan = FaultPlan.scheduled(
        seed, study.unit_coords, rate=0.9, attempts=2, slow_factor=1.5
    )
    study.run(plan=plan, workers=2, cell_timeout=CELL_TIMEOUT, max_retries=3)
    study.assert_converged()
