"""Observed-fault accounting: the trace must agree with the schedule.

The chaos suite previously trusted that a :class:`FaultPlan` fired
what it scheduled. With fault firings now emitted as ``fault_injected``
trace events — flushed by the worker's trace scope even when the fault
is a crash — these tests tighten that to an *observed* property: the
compacted trace reports exactly the scheduled number of firings, and
tracing a chaos run changes nothing about its byte-identical recovery.
"""

import pytest

from repro.testing import Fault, FaultPlan

pytestmark = pytest.mark.chaos


def plan_for(kind, repetition=0, attempts=1):
    return FaultPlan(
        faults=(
            Fault(
                kind=kind,
                dataset="german",
                error_type="mislabels",
                repetition=repetition,
                attempts=attempts,
            ),
        ),
        slow_factor=1.5,
    )


@pytest.mark.parametrize(
    "kind, expect_retry",
    [
        # the record is lost before the append: the unit must be re-run
        ("crash_pre_append", True),
        ("transient_error", True),
        # the record survives in the journal shard: the parent replays
        # it and the unit completes with no retry at all
        ("crash_post_append", False),
    ],
)
def test_traced_chaos_run_observes_each_scheduled_firing(
    chaos_study, kind, expect_retry
):
    """One fault, one firing observed, recovery route recorded, and a
    store still byte-identical to the baseline."""
    added = chaos_study.run(plan=plan_for(kind), workers=2, trace=True)
    assert added == 2
    chaos_study.assert_converged()
    store = chaos_study.store()
    assert store.trace_path.exists()
    # worker trace shards were compacted away with the journal shards
    assert store.trace_paths() == [store.trace_path]
    health = store.health()
    assert health.faults == {kind: 1}
    assert health.retries == (1 if expect_retry else 0)
    assert health.recovered == (0 if expect_retry else 1)
    assert health.poisoned == 0


def test_multi_attempt_fault_observed_once_per_attempt(chaos_study):
    """A fault scheduled for 2 attempt windows fires twice and is
    observed twice; the third attempt succeeds."""
    chaos_study.run(
        plan=plan_for("transient_error", attempts=2),
        workers=2,
        max_retries=2,
        trace=True,
    )
    chaos_study.assert_converged()
    health = chaos_study.store().health()
    assert health.faults == {"transient_error": 2}
    assert health.retries == 2


def test_poisoned_unit_firings_and_sidecar_both_observed(chaos_study):
    """Exhausting retries: every attempt's firing is observed and the
    health report counts the poisoned unit from the sidecar too."""
    plan = plan_for("transient_error", repetition=1, attempts=99)
    added = chaos_study.run(plan=plan, workers=2, max_retries=1, trace=True)
    assert added == 1  # the healthy repetition
    store = chaos_study.store()
    failures = store.failures_path
    assert failures is not None and failures.exists()
    health = store.health()
    # max_retries=1 -> attempts 0 and 1 both fire before poisoning
    assert health.faults == {"transient_error": 2}
    assert health.retries == 1
    assert health.poisoned == 2  # poison event + sidecar entry
    assert len(health.failures) == 1
    assert health.failures[0]["repetition"] == 1


def test_untraced_chaos_run_leaves_no_trace_files(chaos_study):
    chaos_study.run(plan=plan_for("transient_error"), workers=2)
    chaos_study.assert_converged()
    store = chaos_study.store()
    assert store.trace_paths() == []
    assert list(chaos_study.root.glob("*.trace.*")) == []
