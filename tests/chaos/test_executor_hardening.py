"""Tests for the executor's retry, backoff, timeout and poison plumbing."""

import time

import pytest

from repro.benchmark import CellTimeoutError, ExecutorOptions, backoff_delay
from repro.benchmark.parallel import _cell_deadline, _replan_unit, WorkUnit
from repro.benchmark import ResultStore, RunRecord, StudyConfig
from repro.benchmark.parallel import expected_cell_keys

pytestmark = pytest.mark.chaos


# -- options validation --------------------------------------------------


def test_options_reject_negative_max_retries():
    with pytest.raises(ValueError, match="max_retries"):
        ExecutorOptions(max_retries=-1)


def test_options_reject_non_positive_cell_timeout():
    with pytest.raises(ValueError, match="cell_timeout"):
        ExecutorOptions(cell_timeout=0)
    with pytest.raises(ValueError, match="cell_timeout"):
        ExecutorOptions(cell_timeout=-2.5)


def test_options_reject_bad_abort_point():
    with pytest.raises(ValueError, match="abort_after_units"):
        ExecutorOptions(abort_after_units=0)


def test_options_reject_negative_backoff():
    with pytest.raises(ValueError, match="backoff"):
        ExecutorOptions(backoff_base=-0.1)


# -- seeded backoff ------------------------------------------------------


def test_backoff_is_deterministic_and_capped():
    options = ExecutorOptions(backoff_base=0.1, backoff_cap=0.4, backoff_seed=7)
    coords = ("german", "mislabels", 0)
    delays = [backoff_delay(options, coords, attempt) for attempt in (1, 2, 3, 9)]
    assert delays == [
        backoff_delay(options, coords, attempt) for attempt in (1, 2, 3, 9)
    ]
    # jitter keeps every delay within [0.5, 1.5) of the raw schedule
    for attempt, delay in zip((1, 2, 3, 9), delays):
        raw = min(0.4, 0.1 * 2 ** (attempt - 1))
        assert raw * 0.5 <= delay < raw * 1.5
    # distinct units get distinct jitter
    other = backoff_delay(options, ("german", "mislabels", 1), 1)
    assert other != delays[0]


def test_backoff_zero_base_never_sleeps():
    options = ExecutorOptions(backoff_base=0.0)
    assert backoff_delay(options, ("a", "b", 0), 5) == 0.0


# -- per-cell deadline ---------------------------------------------------


def test_cell_deadline_interrupts_hung_cell():
    with pytest.raises(CellTimeoutError, match="deadline"):
        with _cell_deadline(0.05):
            time.sleep(5.0)


def test_cell_deadline_disarms_after_fast_cell():
    with _cell_deadline(0.05):
        pass
    time.sleep(0.08)  # a stale alarm would fire here and kill the test


def test_cell_deadline_none_is_noop():
    with _cell_deadline(None):
        pass


# -- unit replanning -----------------------------------------------------


def _record_for(key: str) -> RunRecord:
    dataset, error_type, detection, repair, model, rep, seed = key.split("/")
    return RunRecord(
        dataset=dataset,
        error_type=error_type,
        detection=detection,
        repair=repair,
        model=model,
        repetition=int(rep.removeprefix("rep")),
        tuning_seed=int(seed.removeprefix("seed")),
        metrics={"dirty_test_acc": 0.5},
    )


def test_replan_drops_recovered_cells():
    config = StudyConfig(
        n_sample=300, models=("log_reg", "knn"), dataset_sizes={"german": 600}
    )
    unit = WorkUnit(
        dataset="german",
        error_type="mislabels",
        repetition=0,
        cells=(("log_reg", 0), ("knn", 0)),
    )
    store = ResultStore()
    # simulate the journal recovery of the log_reg cell's single record
    for key in expected_cell_keys("german", "mislabels", 0, "log_reg", 0):
        store.add(_record_for(key))
    replanned = _replan_unit(config, store, unit)
    assert replanned.cells == (("knn", 0),)
    assert set(replanned.done_keys) == set(
        expected_cell_keys("german", "mislabels", 0, "log_reg", 0)
    )


def test_replan_returns_none_when_everything_recovered():
    config = StudyConfig(n_sample=300, models=("log_reg",))
    unit = WorkUnit(
        dataset="german",
        error_type="mislabels",
        repetition=0,
        cells=(("log_reg", 0),),
    )
    store = ResultStore()
    for key in expected_cell_keys("german", "mislabels", 0, "log_reg", 0):
        store.add(_record_for(key))
    assert _replan_unit(config, store, unit) is None
