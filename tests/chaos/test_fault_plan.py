"""Unit tests for the fault-injection primitives themselves."""

import pickle

import pytest

from repro.testing import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    FaultyExecutor,
    SimulatedWorkerCrash,
    TransientCellError,
    truncate_tail,
)

pytestmark = pytest.mark.chaos

UNIT = dict(dataset="german", error_type="mislabels", repetition=0)


def test_fault_rejects_unknown_kind():
    with pytest.raises(ValueError, match="fault kind"):
        Fault(kind="meteor_strike", **UNIT)


def test_fault_rejects_bad_positions():
    with pytest.raises(ValueError, match="at"):
        Fault(kind="slow_cell", at=-1, **UNIT)
    with pytest.raises(ValueError, match="attempts"):
        Fault(kind="slow_cell", attempts=0, **UNIT)


def test_plan_is_picklable():
    plan = FaultPlan(faults=(Fault(kind="crash_pre_append", **UNIT),))
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_faults_for_filters_by_unit():
    plan = FaultPlan(
        faults=(
            Fault(kind="crash_pre_append", **UNIT),
            Fault(
                kind="slow_cell",
                dataset="german",
                error_type="mislabels",
                repetition=1,
            ),
        )
    )
    assert len(plan.faults_for("german", "mislabels", 0)) == 1
    assert len(plan.faults_for("german", "mislabels", 1)) == 1
    assert plan.faults_for("adult", "outliers", 0) == ()
    assert plan.unit_injector("adult", "outliers", 0) is None


def test_injector_transient_error_respects_attempt_window():
    plan = FaultPlan(
        faults=(Fault(kind="transient_error", attempts=2, **UNIT),)
    )
    for attempt in (0, 1):
        injector = plan.unit_injector(**UNIT, attempt=attempt)
        with pytest.raises(TransientCellError):
            injector.on_cell(0, "log_reg", 0)
    healed = plan.unit_injector(**UNIT, attempt=2)
    healed.on_cell(0, "log_reg", 0)  # no raise: fault expired


def test_injector_targets_cell_index():
    plan = FaultPlan(faults=(Fault(kind="transient_error", at=1, **UNIT),))
    injector = plan.unit_injector(**UNIT)
    injector.on_cell(0, "log_reg", 0)
    with pytest.raises(TransientCellError):
        injector.on_cell(1, "knn", 0)


def test_injector_crash_windows_count_appends():
    plan = FaultPlan(faults=(Fault(kind="crash_post_append", at=1, **UNIT),))
    injector = plan.unit_injector(**UNIT)
    injector.before_append("k0", None)
    injector.after_append("k0", None)  # append 0 passes
    injector.before_append("k1", None)
    with pytest.raises(SimulatedWorkerCrash):
        injector.after_append("k1", None)


def test_injector_crash_pre_append_fires_before_write():
    plan = FaultPlan(faults=(Fault(kind="crash_pre_append", **UNIT),))
    injector = plan.unit_injector(**UNIT)
    with pytest.raises(SimulatedWorkerCrash):
        injector.before_append("k0", None)


def test_truncate_tail_cuts_last_line_only(tmp_path):
    shard = tmp_path / "study.w1.jsonl"
    shard.write_text('{"a": 1}\n{"b": 2222222222}\n')
    truncate_tail(shard)
    lines = shard.read_bytes().split(b"\n")
    assert lines[0] == b'{"a": 1}'
    assert 0 < len(lines[1]) < len(b'{"b": 2222222222}')


def test_truncate_tail_single_line(tmp_path):
    shard = tmp_path / "study.w1.jsonl"
    shard.write_text('{"only": "line"}\n')
    truncate_tail(shard)
    data = shard.read_bytes()
    assert 0 < len(data) < len(b'{"only": "line"}')
    assert b"\n" not in data


def test_scheduled_plan_pure_function_of_seed():
    units = [("german", "mislabels", r) for r in range(4)]
    a = FaultPlan.scheduled(3, units, rate=1.0)
    b = FaultPlan.scheduled(3, units, rate=1.0)
    assert a == b
    assert len(a.faults) == len(units)
    assert all(fault.kind in FAULT_KINDS for fault in a.faults)
    assert FaultPlan.scheduled(4, units, rate=0.0).faults == ()


def test_faulty_executor_builds_zero_backoff_options():
    executor = FaultyExecutor(max_retries=5, cell_timeout=1.5)
    options = executor.options()
    assert options.max_retries == 5
    assert options.cell_timeout == 1.5
    assert options.backoff_base == 0.0
    assert options.fault_plan is None


def test_hypothesis_strategies_produce_valid_plans():
    from hypothesis import given, settings

    from repro.testing.strategies import fault_plans

    units = [("german", "mislabels", 0), ("german", "mislabels", 1)]

    @given(fault_plans(units))
    @settings(max_examples=25, deadline=None)
    def check(plan):
        assert isinstance(plan, FaultPlan)
        for fault in plan.faults:
            assert fault.kind in FAULT_KINDS
            assert fault.unit in units
        pickle.loads(pickle.dumps(plan))

    check()
