"""Hypothesis property: journal replay is invariant under corruption.

Arbitrary interleavings of duplicated, out-of-order and
trailing-truncated journal lines — spread across any number of
``study.w*.jsonl`` shards — must always load to exactly the same
``ResultStore.records()`` as the clean journal. This is the invariant
the crash-recovery story rests on: a worker may die and re-journal the
same record any number of times, shards merge in arbitrary order, and
the last line of any shard may be torn mid-byte.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmark import JournalWriter, ResultStore, RunRecord

pytestmark = pytest.mark.chaos

N_RECORDS = 5


def make_record(index: int) -> RunRecord:
    return RunRecord(
        dataset="german",
        error_type="mislabels",
        detection="cleanlab",
        repair="flip_labels",
        model="log_reg",
        repetition=index,
        tuning_seed=0,
        metrics={"dirty_test_acc": 0.5 + index / 100, "nested": {"n": index}},
    )


RECORDS = [make_record(index) for index in range(N_RECORDS)]


@st.composite
def journal_layouts(draw):
    """(lines per shard, torn-tail flags): a corrupted journal layout.

    Every record index appears at least once in full; beyond that,
    arbitrary duplicates, arbitrary order, arbitrary sharding, and an
    optional torn (half-written) copy of some record at the tail of
    any shard.
    """
    order = draw(st.permutations(range(N_RECORDS)))
    duplicates = draw(
        st.lists(
            st.integers(min_value=0, max_value=N_RECORDS - 1), max_size=6
        )
    )
    entries = list(order) + duplicates
    n_shards = draw(st.integers(min_value=1, max_value=3))
    assignment = [
        draw(st.integers(min_value=0, max_value=n_shards - 1))
        for __ in entries
    ]
    shards = [[] for __ in range(n_shards)]
    for entry, shard_index in zip(entries, assignment):
        shards[shard_index].append(entry)
    torn = [
        draw(st.one_of(st.none(), st.integers(0, N_RECORDS - 1)))
        for __ in range(n_shards)
    ]
    return shards, torn


def write_layout(tmp_path, shards, torn):
    path = tmp_path / "study.json"
    for shard_index, entries in enumerate(shards):
        shard_path = tmp_path / f"study.w{shard_index}.jsonl"
        with JournalWriter(shard_path) as journal:
            for entry in entries:
                journal.write(RECORDS[entry])
        if torn[shard_index] is not None:
            payload = json.dumps(RECORDS[torn[shard_index]].to_json())
            with shard_path.open("a") as handle:
                handle.write(payload[: max(1, len(payload) // 2)])
    return path


@given(journal_layouts())
@settings(max_examples=40, deadline=None)
def test_replay_is_invariant_under_corruption(tmp_path_factory, layout):
    shards, torn = layout
    tmp_path = tmp_path_factory.mktemp("journal")
    path = write_layout(tmp_path, shards, torn)
    store = ResultStore(path)
    loaded = list(store.records())
    assert loaded == sorted(RECORDS, key=lambda record: record.key)
    # every payload survived intact, not just the keys
    for index, record in enumerate(sorted(RECORDS, key=lambda r: r.key)):
        assert loaded[index].metrics == record.metrics


@given(journal_layouts())
@settings(max_examples=15, deadline=None)
def test_corrupted_layout_compacts_to_clean_bytes(tmp_path_factory, layout):
    """Saving any corrupted layout yields the same bytes as saving the
    clean journal: compaction normalises corruption away entirely."""
    shards, torn = layout
    corrupt_dir = tmp_path_factory.mktemp("corrupt")
    clean_dir = tmp_path_factory.mktemp("clean")

    corrupt_store = ResultStore(write_layout(corrupt_dir, shards, torn))
    corrupt_store.save()

    clean_path = clean_dir / "study.json"
    with JournalWriter(clean_dir / "study.w0.jsonl") as journal:
        for record in RECORDS:
            journal.write(record)
    clean_store = ResultStore(clean_path)
    clean_store.save()

    assert (corrupt_dir / "study.json").read_bytes() == clean_path.read_bytes()
    assert corrupt_store.verify() == []
