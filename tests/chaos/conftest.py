"""Chaos-suite fixtures (re-exported from the testing subsystem)."""

from repro.testing.fixtures import chaos_study  # noqa: F401
