"""Shared-memory lifecycle under faults.

The transport's contract: no segment this process created outlives a
study run — not after clean completion, not after worker crashes, not
after poisoned units, not after a simulated parent kill. Leaked
``/dev/shm`` segments are the classic failure mode of shm transports
(they survive process death by design), so every scenario asserts the
parent's live-segment ledger is empty afterwards.
"""

import pytest

from repro.benchmark import StudyAborted
from repro.benchmark.transport import live_segment_names, shared_memory_available
from repro.testing import Fault, FaultPlan

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.shm,
    pytest.mark.skipif(
        not shared_memory_available(),
        reason="POSIX shared memory + fork unavailable",
    ),
]


def plan_for(kind, repetition=0, attempts=1):
    return FaultPlan(
        faults=(
            Fault(
                kind=kind,
                dataset="german",
                error_type="mislabels",
                repetition=repetition,
                at=0,
                attempts=attempts,
            ),
        ),
        slow_factor=1.5,
    )


def assert_no_leaked_segments():
    assert live_segment_names() == frozenset(), (
        f"leaked shared-memory segments: {sorted(live_segment_names())}"
    )


def test_segments_unlinked_after_normal_completion(chaos_study):
    added = chaos_study.run(workers=2, transport="shm")
    assert added == 2
    chaos_study.assert_converged()
    assert_no_leaked_segments()


def test_segments_unlinked_after_worker_crash(chaos_study):
    """A crashed worker's unit is retried; its dataset segments stay
    alive for the retry and are unlinked once the unit resolves."""
    added = chaos_study.run(
        plan=plan_for("crash_post_append"), workers=2, transport="shm"
    )
    assert added == 2
    chaos_study.assert_converged()
    assert_no_leaked_segments()


def test_segments_unlinked_after_poisoned_unit(chaos_study):
    """Even a unit that exhausts its retries and is poisoned must
    release its dataset lease."""
    plan = plan_for("transient_error", attempts=99)
    added = chaos_study.run(
        plan=plan, workers=2, max_retries=1, transport="shm"
    )
    assert added == 1  # repetition 1 completed, repetition 0 poisoned
    assert_no_leaked_segments()
    # the later clean run heals the poisoned unit, still leak-free
    assert chaos_study.resume() == 1
    chaos_study.assert_converged()
    assert_no_leaked_segments()


def test_segments_unlinked_after_parent_abort(chaos_study):
    """StudyAborted unwinds through the registry's close: the simulated
    kill must not leave segments behind either."""
    with pytest.raises(StudyAborted):
        chaos_study.run(abort_after_units=1, workers=2, transport="shm")
    assert_no_leaked_segments()
    chaos_study.resume()
    chaos_study.assert_converged()
    assert_no_leaked_segments()


def test_shm_transport_is_byte_identical_to_pickle(chaos_study):
    """Transports must not change a single stored byte."""
    added = chaos_study.run(workers=2, transport="shm")
    assert added == 2
    chaos_study.assert_converged()  # fingerprint vs the serial baseline
