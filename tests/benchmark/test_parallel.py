"""Tests for the sharded parallel study executor.

The headline guarantee under test: parallel and serial execution
produce byte-identical result stores, because every random draw is
seeded from configuration coordinates rather than execution order.
"""

import json

import pytest

from repro.benchmark import (
    ExperimentRunner,
    ResultStore,
    RunRecord,
    StudyConfig,
    WorkUnit,
    plan_work_units,
    run_parallel_study,
)
from repro.benchmark.parallel import expected_cell_keys


def tiny_config(**overrides) -> StudyConfig:
    defaults = dict(
        n_sample=300,
        n_repetitions=2,
        models=("log_reg",),
        dataset_sizes={"german": 600},
    )
    defaults.update(overrides)
    return StudyConfig(**defaults)


def run_serial(config, path, error_type, dataset="german"):
    store = ResultStore(path)
    ExperimentRunner(config, store).run_dataset_error(dataset, error_type)
    store.save()
    return store


# -- expected keys ------------------------------------------------------


def test_expected_cell_keys_missing_values():
    keys = expected_cell_keys("german", "missing_values", 1, "log_reg", 0)
    assert len(keys) == 6
    assert all(key.startswith("german/missing_values/missing_values/") for key in keys)
    assert all(key.endswith("/log_reg/rep1/seed0") for key in keys)


def test_expected_cell_keys_outliers_cover_detector_repair_grid():
    keys = expected_cell_keys("german", "outliers", 0, "knn", 2)
    assert len(keys) == 9
    detections = {key.split("/")[2] for key in keys}
    assert detections == {"outliers_sd", "outliers_iqr", "outliers_if"}


def test_expected_cell_keys_mislabels():
    assert expected_cell_keys("german", "mislabels", 0, "log_reg", 0) == [
        "german/mislabels/cleanlab/flip_labels/log_reg/rep0/seed0"
    ]


def test_expected_cell_keys_rejects_unknown_error_type():
    with pytest.raises(ValueError, match="error type"):
        expected_cell_keys("german", "typos", 0, "log_reg", 0)


# -- planner ------------------------------------------------------------


def test_plan_enumerates_pending_cells():
    config = tiny_config(models=("log_reg", "knn"))
    units = plan_work_units(
        config, ResultStore(), datasets=("german",), error_types=("mislabels",)
    )
    assert [unit.repetition for unit in units] == [0, 1]
    for unit in units:
        assert unit.dataset == "german"
        assert unit.error_type == "mislabels"
        assert unit.cells == (("log_reg", 0), ("knn", 0))
        assert unit.done_keys == ()


def test_plan_respects_resume_store():
    config = tiny_config(models=("log_reg", "knn"))
    store = ResultStore()
    done = RunRecord(
        dataset="german",
        error_type="mislabels",
        detection="cleanlab",
        repair="flip_labels",
        model="log_reg",
        repetition=0,
        tuning_seed=0,
    )
    store.add(done)
    units = plan_work_units(
        config, store, datasets=("german",), error_types=("mislabels",)
    )
    by_rep = {unit.repetition: unit for unit in units}
    assert by_rep[0].cells == (("knn", 0),)
    assert by_rep[0].done_keys == (done.key,)
    assert by_rep[1].cells == (("log_reg", 0), ("knn", 0))


def test_plan_tracks_partially_completed_cells():
    """A cell missing only some repair variants stays pending, with its
    finished keys recorded so workers skip them."""
    config = tiny_config(n_repetitions=1)
    store = ResultStore()
    keys = expected_cell_keys("german", "missing_values", 0, "log_reg", 0)
    done = RunRecord.from_json(
        {**_payload_for_key(keys[0]), "metrics": {"dirty_test_acc": 0.5}}
    )
    store.add(done)
    (unit,) = plan_work_units(
        config, store, datasets=("german",), error_types=("missing_values",)
    )
    assert unit.cells == (("log_reg", 0),)
    assert unit.done_keys == (keys[0],)


def _payload_for_key(key: str) -> dict:
    dataset, error_type, detection, repair, model, rep, seed = key.split("/")
    return {
        "dataset": dataset,
        "error_type": error_type,
        "detection": detection,
        "repair": repair,
        "model": model,
        "repetition": int(rep.removeprefix("rep")),
        "tuning_seed": int(seed.removeprefix("seed")),
        "metrics": {},
    }


def test_plan_skips_unsupported_error_types():
    # heart does not declare missing_values
    units = plan_work_units(
        tiny_config(), ResultStore(), datasets=("heart",),
        error_types=("missing_values",),
    )
    assert units == []


def test_plan_rejects_unknown_error_type():
    with pytest.raises(ValueError, match="error type"):
        plan_work_units(
            tiny_config(), ResultStore(), datasets=("german",),
            error_types=("typos",),
        )


def test_plan_empty_when_store_complete(tmp_path):
    config = tiny_config()
    store = run_serial(config, tmp_path / "store.json", "mislabels")
    assert (
        plan_work_units(
            config, store, datasets=("german",), error_types=("mislabels",)
        )
        == []
    )


# -- parallel == serial -------------------------------------------------


def test_parallel_matches_serial_byte_identical(tmp_path):
    config = tiny_config()
    run_serial(config, tmp_path / "serial.json", "mislabels")

    parallel = ResultStore(tmp_path / "parallel.json")
    added = run_parallel_study(
        config,
        parallel,
        workers=4,
        datasets=("german",),
        error_types=("mislabels",),
    )
    assert added == 2
    assert (tmp_path / "serial.json").read_bytes() == (
        tmp_path / "parallel.json"
    ).read_bytes()
    # the journal was compacted into the JSON on save
    assert list(tmp_path.glob("*.jsonl")) == []


def test_parallel_matches_serial_missing_values(tmp_path):
    """Multi-version error type: 6 repairs per cell, shared dirty run."""
    config = tiny_config(n_repetitions=1)
    run_serial(config, tmp_path / "serial.json", "missing_values")

    parallel = ResultStore(tmp_path / "parallel.json")
    added = run_parallel_study(
        config,
        parallel,
        workers=2,
        datasets=("german",),
        error_types=("missing_values",),
    )
    assert added == 6
    assert (tmp_path / "serial.json").read_bytes() == (
        tmp_path / "parallel.json"
    ).read_bytes()


def test_parallel_is_noop_on_complete_store(tmp_path):
    config = tiny_config()
    store = run_serial(config, tmp_path / "store.json", "mislabels")
    assert (
        run_parallel_study(
            config, store, workers=2, datasets=("german",),
            error_types=("mislabels",),
        )
        == 0
    )


def test_parallel_supports_in_memory_store():
    config = tiny_config(n_repetitions=1)
    store = ResultStore()
    added = run_parallel_study(
        config, store, workers=1, datasets=("german",), error_types=("mislabels",)
    )
    assert added == 1 and len(store) == 1


# -- journal resume -----------------------------------------------------


def test_parallel_resumes_from_journal_shard(tmp_path):
    """Records journaled by a killed run are replayed at load and their
    cells are not recomputed."""
    config = tiny_config()
    reference = run_serial(config, tmp_path / "reference.json", "mislabels")
    rep0 = [record for record in reference.records() if record.repetition == 0]

    # simulate a worker killed after completing repetition 0: its shard
    # survives, but the compacted study.json was never written
    resumed_path = tmp_path / "resumed" / "study.json"
    resumed_path.parent.mkdir()
    with ResultStore(resumed_path).journal_writer(shard="w999") as journal:
        for record in rep0:
            journal.write(record)

    store = ResultStore(resumed_path)
    assert len(store) == len(rep0)
    units = plan_work_units(
        config, store, datasets=("german",), error_types=("mislabels",)
    )
    assert [unit.repetition for unit in units] == [1]

    added = run_parallel_study(
        config, store, workers=2, datasets=("german",), error_types=("mislabels",)
    )
    assert added == 2 - len(rep0)
    assert resumed_path.read_bytes() == (tmp_path / "reference.json").read_bytes()
    assert list(resumed_path.parent.glob("*.jsonl")) == []


def test_parallel_resumes_partial_cell(tmp_path):
    """Only the missing repair variants of a half-finished cell are
    recomputed; finished records are preserved verbatim."""
    config = tiny_config(n_repetitions=1)
    reference = run_serial(config, tmp_path / "reference.json", "missing_values")
    records = list(reference.records())
    assert len(records) == 6
    half = records[:3]

    resumed_path = tmp_path / "resumed" / "study.json"
    resumed_path.parent.mkdir()
    with ResultStore(resumed_path).journal_writer(shard="w1") as journal:
        for record in half:
            journal.write(record)

    store = ResultStore(resumed_path)
    added = run_parallel_study(
        config, store, workers=2, datasets=("german",),
        error_types=("missing_values",),
    )
    assert added == 3
    assert resumed_path.read_bytes() == (tmp_path / "reference.json").read_bytes()


# -- wiring -------------------------------------------------------------


def test_run_full_study_delegates_to_parallel_executor(monkeypatch):
    calls = {}

    def fake_run_parallel_study(config, store, workers=None, progress=None):
        calls["workers"] = workers
        return 42

    import repro.benchmark.parallel as parallel_module

    monkeypatch.setattr(
        parallel_module, "run_parallel_study", fake_run_parallel_study
    )
    runner = ExperimentRunner(tiny_config(workers=3), ResultStore())
    assert runner.run_full_study() == 42
    assert calls["workers"] == 3


def test_config_rejects_bad_workers():
    with pytest.raises(ValueError, match="workers"):
        StudyConfig(workers=0)
    with pytest.raises(ValueError, match="workers"):
        run_parallel_study(tiny_config(), ResultStore(), workers=0)


def test_workunit_is_picklable():
    import pickle

    unit = WorkUnit(
        dataset="german",
        error_type="mislabels",
        repetition=0,
        cells=(("log_reg", 0),),
        done_keys=("a/b",),
    )
    assert pickle.loads(pickle.dumps(unit)) == unit


def test_parallel_store_payload_is_valid_json(tmp_path):
    config = tiny_config(n_repetitions=1)
    store = ResultStore(tmp_path / "study.json")
    run_parallel_study(
        config, store, workers=2, datasets=("german",), error_types=("mislabels",)
    )
    payload = json.loads((tmp_path / "study.json").read_text())
    assert payload["format"] == "sharded-v1"
    (shard,) = payload["shards"]
    assert shard["dataset"] == "german"
    assert shard["error_type"] == "mislabels"
    assert shard["records"] == 1 == len(shard["keys"])
    record = next(ResultStore(tmp_path / "study.json").iter_records())
    assert record.repair == "flip_labels"


# -- backends -----------------------------------------------------------


def run_backend(tmp_path, backend, name, error_type="mislabels", **opt_overrides):
    from repro.benchmark import ExecutorOptions

    config = tiny_config()
    store = ResultStore(tmp_path / f"{name}.json")
    run_parallel_study(
        config,
        store,
        workers=2,
        datasets=("german",),
        error_types=(error_type,),
        options=ExecutorOptions(backend=backend, **opt_overrides),
    )
    return tmp_path / f"{name}.json"


def test_thread_backend_matches_serial_byte_identical(tmp_path):
    config = tiny_config()
    run_serial(config, tmp_path / "serial.json", "mislabels")
    threaded = run_backend(tmp_path, "thread", "threaded")
    assert threaded.read_bytes() == (tmp_path / "serial.json").read_bytes()
    for shard in sorted((tmp_path / "serial.store").glob("*.jsonl.gz")):
        assert (
            tmp_path / "threaded.store" / shard.name
        ).read_bytes() == shard.read_bytes()
    # thread workers journal per thread; everything is compacted away
    assert list(tmp_path.glob("*.jsonl")) == []


def test_serial_backend_matches_process_pool(tmp_path):
    pooled = run_backend(tmp_path, "process", "pooled")
    serial = run_backend(tmp_path, "serial", "serialised")
    assert pooled.read_bytes() == serial.read_bytes()


def test_explicit_transports_are_byte_identical(tmp_path):
    from repro.benchmark import shared_memory_available

    pickled = run_backend(tmp_path, "process", "pickled", transport="pickle")
    if not shared_memory_available():
        pytest.skip("shared memory unavailable")
    shm = run_backend(tmp_path, "process", "shm", transport="shm")
    assert pickled.read_bytes() == shm.read_bytes()


def test_invalid_backend_and_transport_are_rejected():
    from repro.benchmark import ExecutorOptions

    with pytest.raises(ValueError, match="unknown backend"):
        ExecutorOptions(backend="fibers")
    with pytest.raises(ValueError, match="unknown transport"):
        ExecutorOptions(transport="carrier-pigeon")


def test_cell_deadline_falls_back_off_main_thread(tmp_path):
    """Off the main thread the SIGALRM watchdog degrades to a post-hoc
    monotonic check: the overrun still fails, and the degradation is
    counted in the trace."""
    import threading
    import time

    from repro import obs
    from repro.benchmark import CellTimeoutError
    from repro.benchmark.parallel import _cell_deadline

    trace_path = tmp_path / "trace.jsonl"
    outcome = {}

    def overrun():
        try:
            with _cell_deadline(0.01):
                time.sleep(0.05)
        except BaseException as error:  # noqa: BLE001
            outcome["error"] = error

    with obs.scoped(trace_path):
        worker = threading.Thread(target=overrun)
        worker.start()
        worker.join()
    assert isinstance(outcome.get("error"), CellTimeoutError)
    assert "post-hoc" in str(outcome["error"])
    events = obs.read_trace_events([trace_path])
    counters = [
        event
        for event in events
        if event.get("kind") == "metric"
        and event.get("name") == "cell_deadline_fallback"
    ]
    assert counters, "fallback must be visible as a warning counter"


def test_cell_deadline_on_main_thread_does_not_count_fallback(tmp_path):
    from repro import obs
    from repro.benchmark.parallel import _cell_deadline

    trace_path = tmp_path / "trace.jsonl"
    with obs.scoped(trace_path):
        with _cell_deadline(5.0):
            pass
    events = obs.read_trace_events([trace_path])
    assert not any(
        event.get("name") == "cell_deadline_fallback" for event in events
    )
