"""Edge cases of store migration: the awkward on-disk states a real
deployment can leave behind.

Three families, per the migration contract:

- a legacy seed-era ``study.json`` with *zero* records (written before
  any repetition completed) must migrate to a clean empty sharded
  store,
- a journal shard with a torn trailing line (writer killed mid-append)
  must migrate losslessly — complete lines recovered, the torn tail
  skipped, and :meth:`ResultStore.verify` clean before and after,
- duplicate cell coordinates (the same record key persisted twice)
  must be flagged by ``verify`` so ``store-migrate`` refuses, while
  ``--no-verify`` still converges to a deduplicated, verifiable store.
"""

import json

import pytest

from repro.__main__ import main
from repro.benchmark import ResultStore, RunRecord, write_legacy_store


def make_record(repetition=0, accuracy=0.5):
    return RunRecord(
        dataset="german",
        error_type="mislabels",
        detection="cleanlab",
        repair="flip_labels",
        model="log_reg",
        repetition=repetition,
        tuning_seed=0,
        metrics={"dirty_test_acc": accuracy},
    )


def journal_line(record):
    from repro.benchmark.results import record_checksum

    payload = record.to_json()
    payload["checksum"] = record_checksum(payload)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- legacy zero-record stores --------------------------------------------


def test_migrate_zero_record_legacy_store(tmp_path, capsys):
    path = tmp_path / "study.json"
    write_legacy_store(path, [])
    store = ResultStore(path)
    assert store.is_legacy and len(store) == 0
    assert store.verify() == []
    assert main(["store-migrate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "migrated legacy store" in out
    assert "(0 records, 0 shard(s))" in out
    migrated = ResultStore(path)
    assert not migrated.is_legacy
    assert len(migrated) == 0
    assert migrated.verify() == []
    # idempotent: nothing left to migrate
    assert main(["store-migrate", str(path)]) == 0
    assert "nothing to migrate" in capsys.readouterr().out


# -- torn journal tails ---------------------------------------------------


def test_migrate_recovers_journal_with_torn_tail(tmp_path, capsys):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    store.add(make_record(repetition=0))
    store.save()
    journaled = make_record(repetition=1)
    shard = tmp_path / "study.w1.jsonl"
    shard.write_text(
        journal_line(journaled) + "\n" + '{"dataset": "german", "error_t'
    )
    # the torn trailing line is tolerated by verify (it is exactly what
    # a killed writer leaves) and skipped at replay
    assert ResultStore(path).verify() == []
    assert main(["store-migrate", str(path)]) == 0
    assert "migrated journal shards" in capsys.readouterr().out
    assert not shard.exists()
    migrated = ResultStore(path)
    assert len(migrated) == 2
    assert journaled.key in migrated
    assert migrated.verify() == []
    assert migrated.journal_paths() == []


def test_verify_flags_undecodable_line_that_is_not_the_tail(tmp_path):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    store.add(make_record(repetition=0))
    store.save()
    shard = tmp_path / "study.w1.jsonl"
    shard.write_text(
        "not json at all\n" + journal_line(make_record(repetition=1)) + "\n"
    )
    violations = ResultStore(path).verify()
    assert any("undecodable journal line" in issue for issue in violations)


def test_migrate_refuses_checksum_tampered_journal(tmp_path, capsys):
    path = tmp_path / "study.json"
    store = ResultStore(path)
    store.add(make_record(repetition=0))
    store.save()
    payload = json.loads(journal_line(make_record(repetition=1)))
    payload["metrics"]["dirty_test_acc"] = 0.99  # bit rot after checksum
    (tmp_path / "study.w1.jsonl").write_text(json.dumps(payload) + "\n")
    assert main(["store-migrate", str(path)]) == 1
    assert "not migrating" in capsys.readouterr().out


# -- duplicate cell coordinates -------------------------------------------


def test_migrate_refuses_duplicate_cell_coordinates(tmp_path, capsys):
    path = tmp_path / "study.json"
    record = make_record()
    write_legacy_store(path, [record])
    payload = json.loads(path.read_text())
    payload["records"].append(payload["records"][0])  # identical duplicate
    path.write_text(json.dumps(payload, indent=1))
    violations = ResultStore(path).verify()
    assert any("duplicate key" in issue for issue in violations)
    assert main(["store-migrate", str(path)]) == 1
    assert "duplicate key" in capsys.readouterr().out
    # --no-verify converges: dict-keyed load dedupes, the migrated
    # store verifies clean and holds the record once
    assert main(["store-migrate", str(path), "--no-verify"]) == 0
    migrated = ResultStore(path)
    assert len(migrated) == 1
    assert migrated.verify() == []


def test_verify_flags_conflicting_payloads_for_one_cell(tmp_path):
    path = tmp_path / "study.json"
    write_legacy_store(path, [make_record(accuracy=0.5)])
    payload = json.loads(path.read_text())
    conflicting = json.loads(journal_line(make_record(accuracy=0.7)))
    payload["records"].append(conflicting)
    path.write_text(json.dumps(payload, indent=1))
    violations = ResultStore(path).verify()
    assert any("conflicting payloads" in issue for issue in violations)
    assert any("duplicate key" in issue for issue in violations)


def test_duplicate_key_across_journal_and_store_is_benign(tmp_path):
    """A retried worker re-journals an identical record; replay skips
    it and verify treats the byte-identical copy as benign."""
    path = tmp_path / "study.json"
    store = ResultStore(path)
    record = make_record()
    store.add(record)
    store.save()
    other = make_record(repetition=1)
    shard = tmp_path / "study.w1.jsonl"
    shard.write_text(journal_line(record) + "\n" + journal_line(other) + "\n")
    assert ResultStore(path).verify() == []
    assert main(["store-migrate", str(path)]) == 0
    migrated = ResultStore(path)
    assert len(migrated) == 2
    assert migrated.verify() == []
