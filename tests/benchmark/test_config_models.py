"""Tests for study configuration and the model registry."""

import numpy as np
import pytest

from repro.benchmark import StudyConfig, model_search
from repro.benchmark.models import MODEL_NAMES
from repro.ml import (
    GradientBoostedTreesClassifier,
    KNearestNeighborsClassifier,
    LogisticRegressionClassifier,
)


def test_default_config_is_laptop_scale():
    assert StudyConfig() == StudyConfig.laptop_scale()


def test_paper_scale_matches_section_v():
    config = StudyConfig.paper_scale()
    assert config.n_sample == 15_000
    assert config.n_repetitions == 20
    assert config.n_tuning_seeds == 5
    assert config.runs_per_configuration == 100
    assert config.dataset_sizes["folk"] == 378_817


def test_runs_per_configuration():
    config = StudyConfig(n_repetitions=4, n_tuning_seeds=3)
    assert config.runs_per_configuration == 12


def test_dataset_size_fallback():
    assert StudyConfig().dataset_size("unknown") == 5_000


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        StudyConfig(n_sample=5)
    with pytest.raises(ValueError):
        StudyConfig(test_fraction=1.0)
    with pytest.raises(ValueError):
        StudyConfig(n_repetitions=0)
    with pytest.raises(ValueError):
        StudyConfig(n_tuning_seeds=0)


def test_model_names():
    assert MODEL_NAMES == ("log_reg", "knn", "xgboost")


def test_model_search_estimator_types():
    assert isinstance(
        model_search("log_reg").estimator, LogisticRegressionClassifier
    )
    assert isinstance(model_search("knn").estimator, KNearestNeighborsClassifier)
    assert isinstance(
        model_search("xgboost").estimator, GradientBoostedTreesClassifier
    )


def test_model_search_tuned_parameters_match_paper():
    assert "C" in model_search("log_reg").param_grid
    assert "n_neighbors" in model_search("knn").param_grid
    assert "max_depth" in model_search("xgboost").param_grid


def test_model_search_unknown_name():
    with pytest.raises(ValueError, match="available"):
        model_search("svm")


def test_model_search_fits_and_predicts():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 1, (40, 2)), rng.normal(3, 1, (40, 2))])
    y = np.array([0] * 40 + [1] * 40)
    for name in MODEL_NAMES:
        search = model_search(name, n_cv_folds=3).fit(X, y)
        assert search.predict(X).shape == (80,)
        assert search.best_score_ > 0.8
