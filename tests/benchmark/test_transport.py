"""Unit tests of the shared-memory dataset transport."""

import numpy as np
import pytest

from repro.benchmark.transport import (
    ShmRegistry,
    attach_table,
    live_segment_names,
    publish_table,
    shared_memory_available,
    unlink_segments,
)
from repro.tabular.table import Table

pytestmark = [
    pytest.mark.shm,
    pytest.mark.skipif(
        not shared_memory_available(),
        reason="POSIX shared memory + fork unavailable",
    ),
]


def make_table(n_rows=10):
    rng = np.random.default_rng(0)
    return Table.from_columns(
        {
            "age": rng.normal(40, 10, n_rows),
            "credit": rng.normal(0, 1, n_rows),
            "sex": [("male", "female")[i % 2] for i in range(n_rows)],
            "label": rng.integers(0, 2, n_rows).astype(float),
        }
    )


def make_table_with_missing():
    return Table.from_columns(
        {
            "x": np.array([1.0, np.nan, 3.0]),
            "cat": ["a", None, "b"],
        }
    )


@pytest.mark.shm
def test_publish_attach_roundtrip_is_equal():
    table = make_table()
    ref, segments = publish_table(table)
    try:
        attached, handles = attach_table(ref)
        assert attached == table
    finally:
        unlink_segments(segments)


@pytest.mark.shm
def test_missing_values_survive_the_roundtrip():
    table = make_table_with_missing()
    ref, segments = publish_table(table)
    try:
        attached, handles = attach_table(ref)
        assert np.isnan(attached._column_view("x")[1])
        assert attached.column("cat")[1] is None
        assert attached == table
    finally:
        unlink_segments(segments)


@pytest.mark.shm
def test_numeric_columns_attach_zero_copy():
    """Attached numeric columns are views into the segment buffer —
    no per-column allocation happened."""
    table = make_table()
    ref, segments = publish_table(table)
    try:
        attached, handles = attach_table(ref)
        age = attached._column_view("age")
        assert age.base is not None, "expected a view, got an owning array"
        assert not age.flags.writeable
        # all numeric columns share one block (hence one segment)
        credit = attached._column_view("credit")
        assert age.base is credit.base
    finally:
        unlink_segments(segments)


@pytest.mark.shm
def test_categorical_columns_attach_zero_copy():
    """Attached categorical codes are read-only views into the codes
    segment — no decode/re-encode happened on either side."""
    table = make_table()
    ref, segments = publish_table(table)
    try:
        attached, handles = attach_table(ref)
        codes = attached.categorical("sex").codes
        assert codes.base is not None, "expected a view, got an owning array"
        assert not codes.flags.writeable
        assert codes.dtype == np.int32
        assert attached.categorical("sex").pool == table.categorical("sex").pool
    finally:
        unlink_segments(segments)


@pytest.mark.shm
def test_ref_is_small_and_picklable():
    import pickle

    table = make_table(1000)
    ref, segments = publish_table(table)
    try:
        payload = pickle.dumps(ref)
        # the whole point: the ref costs O(schema), not O(rows)
        assert len(payload) < 2000
        clone = pickle.loads(payload)
        attached, handles = attach_table(clone)
        assert attached == table
    finally:
        unlink_segments(segments)


@pytest.mark.shm
def test_unlink_segments_is_idempotent():
    _ref, segments = publish_table(make_table())
    unlink_segments(segments)
    unlink_segments(segments)  # second pass swallows FileNotFoundError
    assert live_segment_names() == frozenset()


@pytest.mark.shm
def test_registry_unlinks_on_last_release():
    table = make_table()
    with ShmRegistry() as registry:
        ref = registry.lease("german", table)
        same = registry.lease("german", table)
        assert same is ref, "second lease must reuse the published segments"
        assert set(ref.segment_names) <= live_segment_names()
        registry.release("german")
        assert set(ref.segment_names) <= live_segment_names(), (
            "segments must survive while a lease is held"
        )
        registry.release("german")
        assert not set(ref.segment_names) & live_segment_names()
        assert len(registry) == 0


@pytest.mark.shm
def test_registry_close_unlinks_everything_despite_leases():
    registry = ShmRegistry()
    ref = registry.lease("german", make_table())
    registry.lease("german", make_table())  # two leases outstanding
    registry.close()
    assert not set(ref.segment_names) & live_segment_names()


@pytest.mark.shm
def test_release_of_unknown_key_is_a_noop():
    with ShmRegistry() as registry:
        registry.release("never-leased")
