"""Tests for the RQ1 disparity analysis."""

import numpy as np
import pytest

from repro.benchmark import DisparityAnalysis
from repro.benchmark.disparity import DETECTOR_NAMES
from repro.datasets import dataset_definition


@pytest.fixture(scope="module")
def german():
    definition = dataset_definition("german")
    return definition, definition.generate(n_rows=1_000, seed=5)


@pytest.fixture(scope="module")
def adult():
    definition = dataset_definition("adult")
    return definition, definition.generate(n_rows=3_000, seed=5)


def test_single_attribute_covers_all_detectors_and_groups(german):
    definition, table = german
    findings = DisparityAnalysis().single_attribute(definition, table)
    # 5 detectors x 2 sensitive attributes
    assert len(findings) == 10
    assert {finding.detector for finding in findings} == set(DETECTOR_NAMES)
    assert {finding.group_key for finding in findings} == {"age", "sex"}


def test_intersectional_covers_pairs(german):
    definition, table = german
    findings = DisparityAnalysis().intersectional(definition, table)
    assert len(findings) == 5
    assert {finding.group_key for finding in findings} == {"sex_x_age"}


def test_only_significant_filter(adult):
    definition, table = adult
    analysis = DisparityAnalysis()
    all_findings = analysis.single_attribute(definition, table)
    significant = analysis.single_attribute(definition, table, only_significant=True)
    assert len(significant) <= len(all_findings)
    assert all(finding.significant for finding in significant)


def test_fractions_consistent_with_counts(german):
    definition, table = german
    for finding in DisparityAnalysis().single_attribute(definition, table):
        assert finding.privileged_fraction == pytest.approx(
            finding.privileged_flagged / finding.privileged_total
        )
        assert 0.0 <= finding.privileged_fraction <= 1.0
        assert 0.0 <= finding.disadvantaged_fraction <= 1.0


def test_adult_missing_values_burden_disadvantaged_race(adult):
    definition, table = adult
    findings = DisparityAnalysis().single_attribute(definition, table)
    race_missing = next(
        finding
        for finding in findings
        if finding.detector == "missing_values" and finding.group_key == "race"
    )
    assert race_missing.burdens_disadvantaged
    assert race_missing.significant


def test_folk_mislabels_skew_privileged():
    definition = dataset_definition("folk")
    table = definition.generate(n_rows=8_000, seed=0)
    findings = DisparityAnalysis().single_attribute(definition, table)
    sex_mislabels = next(
        finding
        for finding in findings
        if finding.detector == "mislabels" and finding.group_key == "sex"
    )
    # the paper finds predicted label errors concentrate in the
    # privileged group; our generators bake in exactly that skew
    assert not sex_mislabels.burdens_disadvantaged
    assert sex_mislabels.significant


def test_label_error_breakdown_shares_sum_to_one(german):
    definition, table = german
    breakdown = DisparityAnalysis().label_error_breakdown(
        definition, table, definition.group_specs[1]
    )
    assert breakdown["privileged_fp_share"] + breakdown[
        "privileged_fn_share"
    ] == pytest.approx(1.0)
    assert breakdown["disadvantaged_fp_share"] + breakdown[
        "disadvantaged_fn_share"
    ] == pytest.approx(1.0)


def test_deterministic_under_random_state(german):
    definition, table = german
    a = DisparityAnalysis(random_state=3).single_attribute(definition, table)
    b = DisparityAnalysis(random_state=3).single_attribute(definition, table)
    assert [
        (f.detector, f.group_key, f.privileged_flagged, f.disadvantaged_flagged)
        for f in a
    ] == [
        (f.detector, f.group_key, f.privileged_flagged, f.disadvantaged_flagged)
        for f in b
    ]


def test_heart_has_no_missing_value_findings():
    definition = dataset_definition("heart")
    table = definition.generate(n_rows=1_500, seed=2)
    findings = DisparityAnalysis().single_attribute(definition, table)
    missing = [f for f in findings if f.detector == "missing_values"]
    assert all(
        f.privileged_flagged == 0 and f.disadvantaged_flagged == 0 for f in missing
    )
